"""Section 5's research agenda, executable: scrip systems and P2P sharing.

* The Kash-Friedman-Halpern scrip economy: threshold strategies, the
  empirical best-response landscape, and what hoarders and altruists do
  to everyone else.
* The Gnutella free-riding population calibrated to the Adar-Huberman
  statistics the paper quotes.

Run with::

    python examples/scrip_economy.py
"""

from repro.econ.markov import analytic_threshold_utility
from repro.econ.p2p import SharingPopulation, sharing_game_small
from repro.econ.scrip import (
    Altruist,
    Hoarder,
    ScripSystem,
    ThresholdAgent,
    best_response_sweep,
)
from repro.solvers.dominance import iterated_strict_dominance


def main() -> None:
    print("## 1. A healthy scrip economy (12 threshold-4 agents)")
    agents = [ThresholdAgent(4) for _ in range(12)]
    system = ScripSystem(agents, benefit=1.0, cost=0.2)
    result = system.run(20_000, seed=0)
    print(f"   requests satisfied: {result.satisfaction_rate:.1%}")
    print(f"   mean utility: {result.mean_utility():.1f}")
    print(f"   final scrip distribution: {sorted(result.final_scrip.tolist())}")

    print()
    print("## 2. Empirical best responses (cost 0.6, discount 0.999)")
    print("   (one batched sweep: every base x candidate x replication")
    print("   economy simulates simultaneously, with sha256-derived seeds)")
    candidates = [1, 2, 4, 8, 16]
    sweep = best_response_sweep(
        [2, 4, 8], candidates, n_agents=12, rounds=15_000,
        cost=0.6, discount=0.999, seed=4, replications=3,
    )
    for i, base in enumerate(sweep.bases):
        best = sweep.best_response(base)
        cells = ", ".join(
            f"{c}:{m:.0f}±{s:.0f}"
            for c, m, s in zip(
                candidates, sweep.mean_utilities[i], sweep.std_utilities[i]
            )
        )
        print(f"   everyone at k={base}: best response k={best} (U: {cells})")

    print()
    print("## 2b. The exact Markov chain agrees with Monte Carlo")
    analysis = analytic_threshold_utility(4, 3, cost=0.2, initial_scrip=2)
    mc = ScripSystem(
        [ThresholdAgent(3) for _ in range(4)], cost=0.2
    ).run(100_000, seed=0)
    print(
        f"   (n=4, k=3, m=2): {analysis.n_states} reachable allocations; "
        f"analytic U/round {analysis.expected_utility:+.4f} vs "
        f"MC {mc.utilities.mean() / mc.rounds:+.4f}"
    )

    print()
    print("## 3. Hoarders and altruists (the paper's 'standard irrationality')")
    rounds = 25_000
    healthy = ScripSystem(
        [ThresholdAgent(4) for _ in range(12)], cost=0.2
    ).run(rounds, seed=1)
    hoarded = ScripSystem(
        [ThresholdAgent(4) for _ in range(9)] + [Hoarder() for _ in range(3)],
        cost=0.2,
    ).run(rounds, seed=1)
    altruistic = ScripSystem(
        [ThresholdAgent(4) for _ in range(9)] + [Altruist() for _ in range(3)],
        cost=0.2,
    ).run(rounds, seed=1)
    print(
        f"   threshold agents' mean utility — baseline: "
        f"{healthy.mean_utility(range(12)):.1f}, with hoarders: "
        f"{hoarded.mean_utility(range(9)):.1f}, with altruists: "
        f"{altruistic.mean_utility(range(9)):.1f}"
    )
    hoarder_share = hoarded.final_scrip[9:].sum() / hoarded.final_scrip.sum()
    print(
        f"   hoarders end up holding {hoarder_share:.0%} of all scrip; "
        f"altruists served {altruistic.served_for_free} jobs for free"
    )

    print()
    print("## 4. Gnutella: standard utilities say nobody should share")
    game = sharing_game_small(4)
    reduced = iterated_strict_dominance(game)
    print(
        f"   iterated strict dominance leaves: "
        f"{[game.action_labels[i][a] for i, (a,) in enumerate(reduced.kept)]}"
    )

    print()
    print("## 5. ...but heterogeneous utilities reproduce what Gnutella saw")
    outcome = SharingPopulation(n_users=20_000, seed=0).equilibrium()
    print(f"   {outcome.summary()}")
    print(
        "   (paper, quoting Adar-Huberman 2000: almost 70% share no "
        "files; top 1% of hosts serve nearly 50% of responses)"
    )


if __name__ == "__main__":
    main()
