"""Cluster quickstart: a fault-tolerant sweep with a Byzantine worker.

Starts the experiment server with a :class:`ClusterCoordinator` on an
ephemeral port, attaches three workers over the real HTTP protocol —
two honest, one wrapped in the ``repro.dist.faults`` ByzantineRandom
adversary — and submits the paper's E1 robustness sweep with 3-fold
redundancy.  The Byzantine worker's corrupt payloads lose the majority
quorum, it gets quarantined, and the accepted results are byte-identical
(deterministic payload) to a plain serial run.  A warm re-run is then a
full content-addressed cache hit that never touches the fabric.

Run with::

    python examples/cluster_quickstart.py
"""

import tempfile
import threading
import time

from repro.cluster import ClusterCoordinator, run_worker_thread
from repro.dist.faults import ByzantineRandomAdversary
from repro.experiments.results import format_table
from repro.experiments.runner import run_experiments
from repro.service import ResultStore, ServiceClient, start_async_server

SWEEP = "coordination_robustness"


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-cluster-")
    store = ResultStore(cache_dir)
    coordinator = ClusterCoordinator(
        store=store, redundancy=3, unit_size=1, quarantine_after=1
    )
    server, _thread = start_async_server(store=store, coordinator=coordinator)
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    client = ServiceClient(url)
    print(f"## coordinator at {url} (cache: {cache_dir})")

    print()
    print("## 1. Three workers join: two honest, one Byzantine")
    stop = threading.Event()
    workers = [
        run_worker_thread(
            ServiceClient(url),
            name="byzantine",
            fault=ByzantineRandomAdversary({0}, seed=0),
            stop=stop,
        ),
    ]

    print()
    print("## 2. The E1 sweep, 3-fold redundant with majority quorum")
    start = time.perf_counter()
    submitted = client.submit_sweep(
        scenarios=[SWEEP], executor="cluster", redundancy=3
    )
    # Let the Byzantine worker cast its (corrupt) first vote, then let
    # the honest majority take over.
    while coordinator.stats()["votes_received"] < 1:
        time.sleep(0.01)
    workers += [
        run_worker_thread(ServiceClient(url), name="honest-1", stop=stop),
        run_worker_thread(ServiceClient(url), name="honest-2", stop=stop),
    ]
    status = client.wait_for_job(submitted["job_id"], timeout=120)
    assert status["status"] == "done", status
    job, results = client.results(submitted["job_id"])
    cold_s = time.perf_counter() - start
    serial = run_experiments(scenarios=[SWEEP])
    identical = results.payload_bytes() == serial.payload_bytes()
    print(
        f"job {job['job_id']}: {len(results)} cases in {cold_s * 1000:.0f} ms; "
        f"cluster payload == serial payload: {identical}"
    )
    assert identical, "quorum-accepted results must match the serial run"

    print()
    print("## 3. The Byzantine worker was outvoted and quarantined")
    print(
        format_table(
            "worker registry",
            ["worker", "completed", "strikes", "quarantined"],
            [
                [w["name"], w["completed"], w["strikes"], w["quarantined"]]
                for w in client.cluster()["workers"]
            ],
        )
    )
    registry = {w["name"]: w for w in client.cluster()["workers"]}
    assert registry["byzantine"]["quarantined"], "expected a quarantine"
    stats = client.store_stats()
    print(
        f"store: {stats['quorum_puts']} quorum-verified writes, "
        f"{stats['disk_entries']} blobs, {stats['disk_bytes']} bytes"
    )

    print()
    print("## 4. Warm re-run: pure cache, the fabric is never consulted")
    start = time.perf_counter()
    job2, warm = client.run_sweep(
        scenarios=[SWEEP], executor="cluster", redundancy=3, timeout=120
    )
    warm_s = time.perf_counter() - start
    print(
        f"job {job2['job_id']}: {job2['cache_hits']}/{len(warm)} cache hits, "
        f"{warm_s * 1000:.1f} ms ({cold_s / warm_s:.0f}x faster than cold)"
    )
    assert job2["cache_hits"] == len(warm)

    stop.set()
    for _worker, thread in workers:
        thread.join(timeout=10)
    server.shutdown()
    server.server_close()
    print()
    print("cluster stopped.")


if __name__ == "__main__":
    main()
