"""Quickstart: games, solvers, and the paper's robustness concepts.

Run with::

    python examples/quickstart.py
"""

from repro.core.robust import robustness_report
from repro.games.classics import (
    bargaining_game,
    coordination_01_game,
    prisoners_dilemma,
    roshambo,
)
from repro.games.normal_form import profile_as_mixed
from repro.solvers import (
    lemke_howson,
    support_enumeration,
    zero_sum_equilibrium,
)


def section(title: str) -> None:
    print()
    print(f"## {title}")


def main() -> None:
    # ------------------------------------------------------------------
    section("1. Build a game and find its Nash equilibria")
    pd = prisoners_dilemma()
    print(f"game: {pd!r}")
    print(f"pure Nash equilibria: {pd.pure_nash_equilibria()}")
    for profile in support_enumeration(pd):
        labels = [
            pd.action_labels[i][int(vec.argmax())]
            for i, vec in enumerate(profile)
        ]
        print(f"support enumeration finds: {labels}")

    # ------------------------------------------------------------------
    section("2. Mixed equilibria: Lemke-Howson and the zero-sum LP")
    rps = roshambo()
    profile, value = zero_sum_equilibrium(rps)
    print(f"roshambo value: {value:+.4f}; row mixture: {profile[0].round(3)}")
    lh = lemke_howson(rps)
    print(f"Lemke-Howson agrees: {rps.is_nash(lh)}")

    # ------------------------------------------------------------------
    section("3. Beyond Nash: the 0/1 coordination game (Section 2)")
    game = coordination_01_game(4)
    all_zero = profile_as_mixed((0, 0, 0, 0), game.num_actions)
    print(robustness_report(game, all_zero).describe())
    print(
        "-> Nash, but any *pair* can deviate to 1 and double their payoff: "
        "not 2-resilient."
    )

    # ------------------------------------------------------------------
    section("4. Fragility: the bargaining game (Section 2)")
    bargain = bargaining_game(4)
    all_stay = profile_as_mixed((0, 0, 0, 0), bargain.num_actions)
    print(robustness_report(bargain, all_stay).describe())
    print(
        "-> resilient against every coalition, Pareto optimal, and yet a "
        "single unexpected deviator zeroes out everyone who stays: "
        "not 1-immune."
    )

    # ------------------------------------------------------------------
    section("5. Sweep both examples at once via the experiment registry")
    from repro.experiments import run_experiments

    results = run_experiments(families=["robustness"])
    for r in results:
        keys = ("max_k_strong", "max_k", "max_t")
        shown = {k: r.metrics[k] for k in keys if k in r.metrics}
        print(f"{r.scenario}(n={r.params['n']}): {shown}")
    print(
        "-> the same registry drives benchmarks/ and "
        "`python -m repro.experiments`; see examples/run_experiments.py."
    )


if __name__ == "__main__":
    main()
