"""The Axelrod FRPD tournament the paper cites ("tit-for-tat does
exceedingly well"), plus the ecological variant.

Run with::

    python examples/axelrod_tournament.py
"""

from repro.dynamics.evolution import evolutionary_tournament
from repro.dynamics.tournament import round_robin_tournament
from repro.machines.strategies import strategy_zoo


def main() -> None:
    print("## 1. Round-robin tournament (200 rounds, delta = 0.995)")
    result = round_robin_tournament(strategy_zoo(), rounds=200, delta=0.995)
    print(result.table())
    print(f"\n   tit-for-tat placed #{result.rank_of('tit_for_tat')}")

    print()
    print("## 2. With 3% execution noise (forgiveness matters)")
    noisy = round_robin_tournament(
        strategy_zoo(), rounds=200, delta=0.995, noise=0.03,
        repetitions=3, seed=7,
    )
    print(noisy.table())

    print()
    print("## 3. Ecological tournament (replicator dynamics)")
    evo = evolutionary_tournament(strategy_zoo()[:6], rounds=150, iterations=4000)
    for name, share in sorted(
        zip(evo.names, evo.final), key=lambda p: -p[1]
    ):
        bar = "#" * int(round(share * 40))
        print(f"   {name:<22} {share:6.1%} {bar}")
    print(
        "\n   -> unconditional defectors wash out; reciprocators inherit "
        "the population."
    )


if __name__ == "__main__":
    main()
