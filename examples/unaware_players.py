"""Section 4 end to end: games with awareness (Figures 1-3).

Shows (1) why Nash equilibrium is the wrong concept when a player is
unaware of a move, (2) the full {Γm, ΓA, ΓB} structure with uncertain
awareness and its p-dependent generalized Nash equilibria, and (3) a
virtual-move game for awareness of unawareness.

Run with::

    python examples/unaware_players.py
"""

from repro.core.awareness import canonical_representation
from repro.core.awareness_examples import (
    figure1_unaware_game,
    figure_gamma_games,
    virtual_move_game,
)
from repro.games.classics import figure1_game


def describe_move(dist):
    return max(dist, key=dist.get)


def main() -> None:
    print("## 1. Figure 1, classical analysis")
    game = figure1_game()
    profile, values = game.backward_induction()
    print(
        f"   subgame-perfect equilibrium: A plays "
        f"{describe_move(profile[0]['A'])}, B plays "
        f"{describe_move(profile[1]['B'])}; payoffs {tuple(values)}"
    )

    print()
    print("## 2. Figure 1 when A is unaware of down_B")
    gw = figure1_unaware_game()
    for i, gne in enumerate(gw.all_pure_generalized_nash(), start=1):
        a_move = describe_move(gne[(0, "gamma_b")]["A.3"])
        b_move = describe_move(gne[(1, "modeler")]["B"])
        print(f"   GNE #{i}: A plays {a_move}; aware B would play {b_move}")
    print(
        "   -> every generalized Nash equilibrium has the unaware A "
        "playing down_A, as the paper argues; Nash equilibrium "
        "(across_A, down_B) is unattainable because A cannot even "
        "contemplate down_B."
    )

    print()
    print("## 3. Figures 2-3: A uncertain whether B is aware (prob p)")
    for p in (0.0, 0.25, 0.5, 0.75, 1.0):
        gw = figure_gamma_games(p)
        across = [
            gne
            for gne in gw.all_pure_generalized_nash()
            if gne[(0, "gamma_a")]["A.1"]["across_A"] > 0.5
        ]
        value_across = 2 * (1 - p)
        print(
            f"   p={p:.2f}: across_A worth {value_across:.2f} vs down_A "
            f"worth 1.00 -> GNEs with A across: {len(across)}"
        )
    print("   -> the across_A equilibrium exists exactly for p <= 1/2.")

    print()
    print("## 4. Awareness of unawareness: a virtual move for B")
    for believed, label in ((0.5, "pessimistic"), (1.5, "optimistic")):
        gw = virtual_move_game(believed_virtual_payoffs=(believed, 1.5))
        across = [
            gne
            for gne in gw.all_pure_generalized_nash()
            if gne[(0, "subjective")]["A.v"]["across_A"] == 1.0
        ]
        print(
            f"   A's {label} evaluation of the unknown move "
            f"({believed} vs down_A's 1.0): GNEs with A across = {len(across)}"
        )
    print(
        "   -> like a chess program's board evaluation, A's believed "
        "payoff for the inconceivable move decides her play."
    )

    print()
    print("## 5. Sanity: canonical representation preserves Nash")
    gw = canonical_representation(game)
    profile = {
        (0, "G"): {"A": {"across_A": 1.0, "down_A": 0.0}},
        (1, "G"): {"B": {"across_B": 0.0, "down_B": 1.0}},
    }
    print(
        "   (across_A, down_B) is a GNE of the canonical representation: "
        f"{gw.is_generalized_nash(profile)}"
    )


if __name__ == "__main__":
    main()
