"""Experiments quickstart: drive the scenario registry end to end.

The same pipeline the benchmarks use — list scenarios, run a family as a
batched (optionally parallel) sweep, inspect the typed results, and emit
JSON/CSV artifacts.

Run with::

    python examples/run_experiments.py
"""

import os
import tempfile

from repro.experiments import (
    all_scenarios,
    format_table,
    run_experiments,
    smoke_cases,
)


def main() -> None:
    print("## 1. What's registered?")
    rows = [
        (spec.family, spec.name, spec.n_cases) for spec in all_scenarios()
    ]
    print(format_table("scenario registry", ["family", "scenario", "cases"], rows))

    print()
    print("## 2. Run one family (the Section 2 robustness sweeps)")
    results = run_experiments(families=["robustness"])
    print(
        format_table(
            "robustness family",
            ["scenario", "n", "key metrics"],
            [
                (
                    r.scenario,
                    r.params["n"],
                    ", ".join(
                        f"{k}={v}"
                        for k, v in sorted(r.metrics.items())
                        if not k.startswith("witness")
                    ),
                )
                for r in results
            ],
        )
    )

    print()
    print("## 3. The same sweep, fanned out over worker processes")
    parallel = run_experiments(families=["robustness"], max_workers=2)
    match = all(
        a.metrics == b.metrics for a, b in zip(results, parallel)
    )
    print(f"   parallel results identical to serial: {match}")

    print()
    print("## 4. Emit artifacts")
    with tempfile.TemporaryDirectory() as tmp:
        json_path = os.path.join(tmp, "robustness.json")
        csv_path = os.path.join(tmp, "robustness.csv")
        results.to_json(json_path)
        results.to_csv(csv_path)
        print(f"   JSON: {os.path.getsize(json_path)} bytes")
        print(f"   CSV header: {open(csv_path).readline().strip()}")

    print()
    print("## 5. The CI smoke probe: one case per family")
    smoke = smoke_cases()
    for r in smoke:
        print(f"   {r.family:<11} {r.scenario:<26} {r.elapsed:.3f}s")


if __name__ == "__main__":
    main()
