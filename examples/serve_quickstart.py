"""Service quickstart: run the experiment server and query it in-process.

Starts the ``repro.service`` asyncio HTTP server on an ephemeral port
with a temporary content-addressed result cache, submits the paper's E1
robustness sweep through the :class:`~repro.service.client.ServiceClient`
twice (cold, then fully cached), fetches one result blob by its content
address, and solves a classic game through ``/v1/solve``.

Run with::

    python examples/serve_quickstart.py
"""

import tempfile
import time

from repro.experiments.results import format_table
from repro.service import ResultStore, ServiceClient, start_async_server


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-service-")
    store = ResultStore(cache_dir)
    server, _thread = start_async_server(store=store)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    print(f"## serving http://{host}:{port} (cache: {cache_dir})")

    print()
    print("## 1. The E1 robustness sweep, submitted over HTTP (cold cache)")
    start = time.perf_counter()
    job, results = client.run_sweep(scenarios=["coordination_robustness"])
    cold_s = time.perf_counter() - start
    print(
        format_table(
            "E1 via the service",
            ["n", "max_k_strong", "max_t", "elapsed"],
            [
                [r.params["n"], r.metrics["max_k_strong"], r.metrics["max_t"], f"{r.elapsed:.4f}s"]
                for r in results
            ],
        )
    )
    print(
        f"job {job['job_id']}: {job['cache_misses']} computed, "
        f"{job['cache_hits']} cached, {cold_s * 1000:.1f} ms end to end"
    )

    print()
    print("## 2. The same sweep again — every case content-addressed")
    start = time.perf_counter()
    job, warm = client.run_sweep(scenarios=["coordination_robustness"])
    warm_s = time.perf_counter() - start
    print(
        f"job {job['job_id']}: {job['cache_hits']}/{len(warm)} cache hits, "
        f"{warm_s * 1000:.1f} ms ({cold_s / warm_s:.1f}x faster than cold)"
    )
    assert warm.to_json_obj() == results.to_json_obj(), "warm replay must be identical"

    print()
    print("## 3. Fetch one case by its sha256 content address")
    key = store.key_for("coordination_robustness", {"n": 5}, 0, 0)
    blob = client.fetch(key)
    print(f"GET /v1/results/{key[:16]}…  ->  n=5 metrics: {blob['metrics']}")

    print()
    print("## 4. Synchronous small-game solving via POST /v1/solve")
    solution = client.solve(classic="matching_pennies", method="zerosum")
    print(
        f"matching pennies: value={solution['value']:.3f}, "
        f"row strategy={solution['strategies'][0]}"
    )

    server.shutdown()
    server.server_close()
    server.manager.shutdown()
    print()
    print("server stopped.")


if __name__ == "__main__":
    main()
