"""Section 2 end to end: Byzantine agreement, mediators, and cheap talk.

The pipeline this example walks through:

1. Byzantine agreement as a Bayesian game (the general's preference is
   its type).
2. The trivial mediator solution and its honesty equilibrium in Γd.
3. Replacing the mediator with cheap talk: the EIG protocol when
   n > 3t, and the SMPC-backed recommendation protocol.
4. The impossibility side: a concrete adversary for n = 3, t = 1.
5. The ADGH feasibility thresholds for general (k, t).

Run with::

    python examples/robust_mediators.py
"""

import numpy as np

from repro.core.feasibility import Resources, mediator_implementability
from repro.dist.agreement import (
    run_eig_agreement,
    run_mediator_agreement,
    search_for_disagreement,
)
from repro.dist.simulator import ByzantineRandomAdversary
from repro.games.classics import byzantine_agreement_game
from repro.mediators.base import DeterministicMediator, MediatedGame
from repro.mediators.cheap_talk import CheapTalkSimulation


def main() -> None:
    n, t = 5, 1

    print("## 1. Byzantine agreement as a Bayesian game")
    game = byzantine_agreement_game(n)
    print(f"   {game!r}")

    print()
    print("## 2. The trivial mediator (general -> mediator -> everyone)")
    mediator = DeterministicMediator(
        game.num_types, lambda types: tuple([types[0]] * n)
    )
    mediated = MediatedGame(game, mediator)
    print(f"   honest utilities: {mediated.honest_utilities()}")
    print(f"   honesty is an equilibrium of Γd: {mediated.is_honest_equilibrium()}")
    outcome = run_mediator_agreement(n, general_value=1)
    print(f"   protocol outputs: {outcome.outputs} (correct: {outcome.correct})")

    print()
    print(f"## 3. Cheap talk instead of the mediator (n={n} > 3t={3 * t})")
    adversary = ByzantineRandomAdversary({n - 1}, seed=0)
    eig = run_eig_agreement(n, t, general_value=1, adversary=adversary)
    print(
        f"   EIG with a Byzantine node: outputs {eig.outputs} "
        f"(correct: {eig.correct}, rounds: {eig.rounds})"
    )
    sim = CheapTalkSimulation(game, mediator, t=t, coin_resolution=4)
    run = sim.run_once(
        types=(1,) + (0,) * (n - 1),
        corrupted={n - 1},
        rng=np.random.default_rng(1),
    )
    print(
        f"   SMPC recommendation protocol with 1 corrupted party: "
        f"played {run.played} (recommended {run.recommended})"
    )
    print(
        "   induced action distribution matches the mediator: "
        f"{sim.implements_mediator(n_samples=30)}"
    )

    print()
    print("## 4. The impossibility side: n = 3, t = 1")
    violation = search_for_disagreement(3, 1, random_seeds=10)
    assert violation is not None
    print(
        f"   adversarial search found a violation: honest outputs "
        f"{violation.outputs}, general value {violation.general_value} "
        f"(agreement: {violation.agreement}, validity: {violation.validity})"
    )

    print()
    print("## 5. The ADGH threshold catalogue (k=1, t=1)")
    ladder = [
        ("no assumptions", Resources()),
        ("punishment + known utilities",
         Resources(punishment_strategy=True, utilities_known=True)),
        ("broadcast", Resources(broadcast=True)),
        ("crypto + bounded + PKI",
         Resources(cryptography=True, polynomially_bounded=True, pki=True)),
    ]
    for n_query in (7, 6, 5, 4, 2):
        verdicts = []
        for label, resources in ladder:
            v = mediator_implementability(n_query, 1, 1, resources)
            verdicts.append(
                "yes" if v.implementable and not v.epsilon_only
                else ("ε" if v.implementable else "no")
            )
        print(f"   n={n_query}: " + ", ".join(
            f"{label}: {verdict}" for (label, _), verdict in zip(ladder, verdicts)
        ))


if __name__ == "__main__":
    main()
