"""Section 3 end to end: Nash equilibrium once computation is priced.

Walks through the paper's three examples:

* Example 3.1 — the primality game: "give the right answer" stops being
  the equilibrium once testing costs more than the $10 reward.
* Example 3.2 — finitely repeated prisoner's dilemma: tit-for-tat is a
  computational Nash equilibrium once round counting costs memory.
* Example 3.3 — roshambo: pricing randomization destroys equilibrium
  existence altogether.

Run with::

    python examples/costly_computation.py
"""

from repro.core.computational import (
    computational_nash_equilibria,
    frpd_machine_game,
    is_computational_nash,
    primality_machine_game,
    roshambo_machine_game,
)
from repro.machines.vm import run_program, trial_division_program


def main() -> None:
    print("## Example 3.1: the primality game")
    program = trial_division_program()
    for x in (251, 65_521, 268_435_399):
        result = run_program(program, {"x": x})
        print(
            f"   trial division on {x}: answer "
            f"{'prime' if result.output else 'composite'} "
            f"in {result.steps} VM steps"
        )
    for label, numbers, price in [
        ("small (8-bit), price 0.01", [251, 221, 193, 187], 0.01),
        ("medium (28-bit), price 0.01",
         [268_435_399, 268_435_397, 268_435_459, 268_435_461], 0.01),
        ("large (40-bit), price 0.03",
         [10**12 + 39, 10**12 + 61, 10**12 + 1, 10**12 + 3], 0.03),
    ]:
        game = primality_machine_game(numbers, step_price=price)
        eqs = computational_nash_equilibria(game)
        names = sorted({p[0].name for p in eqs})
        print(f"   {label}: equilibrium machine(s) = {names}")
    print(
        "   -> the equilibrium ladder: exact trial division, then the "
        "polynomial Fermat tester, then playing safe once even that "
        "costs more than the $10 reward."
    )

    print()
    print("## Example 3.2: FRPD with memory costs")
    for n_rounds in (3, 10, 40):
        game = frpd_machine_game(n_rounds, delta=0.9, memory_price=0.01)
        machines = game.machine_sets[0]
        tft = next(m for m in machines if m.name == "tit_for_tat")
        eq = is_computational_nash(game, [tft, tft])
        gain = 2 * 0.9**n_rounds
        print(
            f"   N={n_rounds:>3}: discounted last-round defection gain "
            f"{gain:.4f}; (TFT, TFT) equilibrium: {eq}"
        )
    print(
        "   -> for long games the $2 defection bonus, discounted, is not "
        "worth the memory needed to count rounds (the paper's claim)."
    )

    game = frpd_machine_game(
        n_rounds=12, delta=0.9, memory_price=0.05, charge_player=0
    )
    machines = game.machine_sets[0]
    tft = next(m for m in machines if m.name == "tit_for_tat")
    counter = next(m for m in machines if m.name.startswith("tft_defect"))
    print(
        "   asymmetric variant (only player 0 pays for memory): "
        f"(TFT, defect-at-last) equilibrium: "
        f"{is_computational_nash(game, [tft, counter])}"
    )

    print()
    print("## Example 3.3: roshambo with costly randomization")
    priced = roshambo_machine_game(deterministic_cost=1.0, randomization_cost=2.0)
    free = roshambo_machine_game(deterministic_cost=1.0, randomization_cost=1.0)
    print(
        f"   randomization costs extra: equilibria = "
        f"{computational_nash_equilibria(priced)!r}"
    )
    eqs = computational_nash_equilibria(free)
    print(
        f"   randomization at par: equilibria = "
        f"{[(a.name, b.name) for a, b in eqs]}"
    )
    print(
        "   -> with standard games Nash equilibrium always exists; with "
        "machine games it need not (the paper's Example 3.3)."
    )


if __name__ == "__main__":
    main()
