"""Scenario registry: ``@scenario``-decorated, parameterized generators.

A *scenario* is a function ``fn(seed=..., **params) -> dict`` returning a
flat metrics mapping.  Registering it attaches a parameter grid — either
an explicit list of param dicts or a dict of per-key value lists whose
cartesian product is expanded — and a family name used for grouping
(``games``, ``robustness``, ``solvers``, ``mediators``, ``scrip``,
``dist``).  The runner (:mod:`repro.experiments.runner`) executes cases;
this module only stores and enumerates them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

__all__ = [
    "ScenarioSpec",
    "scenario",
    "get_scenario",
    "all_scenarios",
    "families",
    "unregister",
]

ParamGrid = Union[Dict[str, Sequence[Any]], Sequence[Dict[str, Any]]]

_REGISTRY: Dict[str, "ScenarioSpec"] = {}


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: callable, family, and parameter grid."""

    name: str
    family: str
    fn: Callable[..., Dict[str, Any]]
    cases: Sequence[Dict[str, Any]] = field(default_factory=tuple)
    description: str = ""

    def iter_cases(self) -> Iterator[Dict[str, Any]]:
        """Yield each parameter assignment of the grid (copies)."""
        for case in self.cases:
            yield dict(case)

    @property
    def n_cases(self) -> int:
        """Number of parameter assignments in the grid."""
        return len(self.cases)


def _expand_grid(params: Optional[ParamGrid]) -> List[Dict[str, Any]]:
    """Normalize a grid spec into an explicit list of param dicts."""
    if params is None:
        return [{}]
    if isinstance(params, dict):
        keys = list(params.keys())
        combos = itertools.product(*(params[k] for k in keys))
        return [dict(zip(keys, values)) for values in combos]
    out = []
    for case in params:
        if not isinstance(case, dict):
            raise TypeError("explicit scenario cases must be dicts")
        out.append(dict(case))
    return out


def scenario(
    family: str,
    name: Optional[str] = None,
    params: Optional[ParamGrid] = None,
):
    """Decorator registering a function as a parameterized scenario.

    ``params`` is either a dict of per-key value lists (expanded as a
    cartesian product) or an explicit sequence of param dicts.  The
    decorated function must accept every grid key plus a ``seed`` keyword
    and return a flat ``dict`` of metrics.
    """

    def register(fn: Callable[..., Dict[str, Any]]) -> Callable[..., Dict[str, Any]]:
        """Record the decorated function in the module registry."""
        scenario_name = name or fn.__name__
        if scenario_name in _REGISTRY:
            raise ValueError(f"scenario {scenario_name!r} already registered")
        doc = (fn.__doc__ or "").strip()
        _REGISTRY[scenario_name] = ScenarioSpec(
            name=scenario_name,
            family=family,
            fn=fn,
            cases=tuple(_expand_grid(params)),
            description=doc.splitlines()[0] if doc else "",
        )
        return fn

    return register


def _ensure_builtins() -> None:
    """Import the built-in scenario definitions exactly once."""
    # Imported lazily to avoid a registry<->scenarios import cycle.
    import repro.experiments.scenarios  # noqa: F401


def get_scenario(name: str) -> ScenarioSpec:
    """Look up one scenario by name (raises ``KeyError`` with candidates)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown scenario {name!r}; registered: {known}"
        ) from None


def all_scenarios(family: Optional[str] = None) -> List[ScenarioSpec]:
    """Every registered scenario, optionally restricted to one family."""
    _ensure_builtins()
    specs = [
        spec
        for spec in _REGISTRY.values()
        if family is None or spec.family == family
    ]
    return sorted(specs, key=lambda s: (s.family, s.name))


def families() -> List[str]:
    """The sorted list of registered scenario families."""
    _ensure_builtins()
    return sorted({spec.family for spec in _REGISTRY.values()})


def unregister(name: str) -> None:
    """Remove one registration (test isolation helper; missing names ok)."""
    _REGISTRY.pop(name, None)
