"""Batched scenario runner with optional process-pool parallelism.

Each case is one ``(scenario, params)`` pair plus a deterministic seed
derived by hashing ``(base_seed, scenario, params)`` — the same case
always sees the same seed, no matter how the sweep is sliced across
workers, so results are reproducible under any parallelism level.
Workers are plain ``concurrent.futures.ProcessPoolExecutor`` processes.
A case carries the scenario *function* itself: pickle ships it by
qualified name, so a spawn-started worker imports the defining module —
including user modules whose ``@scenario`` registrations never ran in
the worker — instead of re-resolving the name from worker-local registry
state.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.registry import all_scenarios, get_scenario
from repro.experiments.results import ExperimentResult, ResultSet

__all__ = ["case_seed", "run_experiments", "smoke_cases"]

Case = Tuple[
    str, str, Callable[..., Dict[str, Any]], Dict[str, Any], int, int
]


def case_seed(base_seed: int, scenario_name: str, params: Dict[str, Any]) -> int:
    """Deterministic 63-bit seed for one case, stable across processes.

    Uses SHA-256 over a canonical JSON rendering (sorted keys) so the
    derivation is independent of dict ordering, platform hash
    randomization, and worker count.
    """
    payload = json.dumps(
        [base_seed, scenario_name, params], sort_keys=True, default=str
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _run_case(case: Case) -> ExperimentResult:
    """Execute one case (also the process-pool entry point)."""
    name, family, fn, params, seed, replication = case
    start = time.perf_counter()
    metrics = fn(seed=seed, **params)
    elapsed = time.perf_counter() - start
    if not isinstance(metrics, dict):
        raise TypeError(
            f"scenario {name!r} returned {type(metrics).__name__}, expected dict"
        )
    return ExperimentResult(
        scenario=name,
        family=family,
        params=dict(params),
        seed=seed,
        metrics=metrics,
        elapsed=elapsed,
        replication=replication,
    )


def _collect_cases(
    scenarios: Optional[Sequence[str]],
    families: Optional[Sequence[str]],
    base_seed: int,
    limit_per_scenario: Optional[int],
    replications: int = 1,
) -> List[Case]:
    """Expand the requested scenarios/families into concrete seeded cases."""
    specs = []
    if scenarios:
        specs.extend(get_scenario(name) for name in scenarios)
    if families:
        for family in families:
            specs.extend(all_scenarios(family))
    if not scenarios and not families:
        specs = all_scenarios()
    seen = set()
    cases: List[Case] = []
    for spec in specs:
        if spec.name in seen:
            continue
        seen.add(spec.name)
        for i, params in enumerate(spec.iter_cases()):
            if limit_per_scenario is not None and i >= limit_per_scenario:
                break
            for replication in range(replications):
                cases.append(
                    _make_case(spec, params, base_seed, replication)
                )
    return cases


def _make_case(
    spec, params: Dict[str, Any], base_seed: int, replication: int = 0
) -> Case:
    """Bundle one seeded, self-contained case from a registry spec.

    Replication 0 derives its seed from the params alone (identical to
    single-run sweeps, so adding replications never reshuffles existing
    results); higher replications mix a ``__replication__`` key into
    the hashed payload for an independent stream per repeat.
    """
    seed_params = (
        params
        if replication == 0
        else {**params, "__replication__": replication}
    )
    return (
        spec.name,
        spec.family,
        spec.fn,
        params,
        case_seed(base_seed, spec.name, seed_params),
        replication,
    )


def run_experiments(
    scenarios: Optional[Sequence[str]] = None,
    families: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    max_workers: Optional[int] = None,
    limit_per_scenario: Optional[int] = None,
    replications: int = 1,
) -> ResultSet:
    """Run a sweep and return its :class:`ResultSet`.

    ``scenarios`` and/or ``families`` select what runs (both empty means
    everything registered).  ``max_workers`` > 1 fans cases out over a
    process pool; the default (``None`` or 1) runs serially in-process,
    which is fastest for the small grids and keeps tracebacks direct.
    ``replications`` repeats every case under independent derived seeds
    (replication 0 reproduces the single-run sweep exactly), which is
    what gives grid metrics error bars.  Results are always returned in
    deterministic case order regardless of worker scheduling.
    """
    if replications < 1:
        raise ValueError("need at least one replication")
    cases = _collect_cases(
        scenarios, families, base_seed, limit_per_scenario, replications
    )
    results = ResultSet()
    if max_workers is not None and max_workers > 1 and len(cases) > 1:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            for result in pool.map(_run_case, cases):
                results.append(result)
    else:
        for case in cases:
            results.append(_run_case(case))
    return results


def smoke_cases(base_seed: int = 0) -> ResultSet:
    """Run the first case of one scenario per family (CI regression probe).

    Cheap by construction: one representative case per registry family,
    run serially, so a broken scenario surfaces before merge without
    paying for the full grids.
    """
    results = ResultSet()
    picked: List[Case] = []
    seen_families = set()
    for spec in all_scenarios():
        if spec.family in seen_families or spec.n_cases == 0:
            continue
        seen_families.add(spec.family)
        params = next(spec.iter_cases())
        picked.append(_make_case(spec, params, base_seed))
    for case in picked:
        results.append(_run_case(case))
    return results
