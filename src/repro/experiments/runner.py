"""Batched scenario runner with optional process-pool parallelism.

Each case is one ``(scenario, params)`` pair plus a deterministic seed
derived by hashing ``(base_seed, scenario, params)`` — the same case
always sees the same seed, no matter how the sweep is sliced across
workers, so results are reproducible under any parallelism level.
Workers are plain ``concurrent.futures.ProcessPoolExecutor`` processes.
A case carries the scenario *function* itself: pickle ships it by
qualified name, so a spawn-started worker imports the defining module —
including user modules whose ``@scenario`` registrations never ran in
the worker — instead of re-resolving the name from worker-local registry
state.

Because every case is a pure function of its seed derivation inputs,
results are perfectly cacheable by content address: pass a
:class:`repro.service.store.ResultStore` as ``store=`` and cache-hit
cases skip the executor entirely (they are marked ``cached=True`` and
counted in the wall-time table), while misses are computed and written
back for the next run.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.registry import all_scenarios, get_scenario
from repro.experiments.results import ExperimentResult, ResultSet, _jsonable
from repro.obs.metrics import default_registry

__all__ = ["case_seed", "run_experiments", "smoke_cases"]

Case = Tuple[
    str, str, Callable[..., Dict[str, Any]], Dict[str, Any], int, int
]

ProgressCallback = Callable[[ExperimentResult], None]


def case_seed(base_seed: int, scenario_name: str, params: Dict[str, Any]) -> int:
    """Deterministic 63-bit seed for one case, stable across processes.

    Uses SHA-256 over a canonical JSON rendering (sorted keys) so the
    derivation is independent of dict ordering, platform hash
    randomization, and worker count.
    """
    payload = json.dumps(
        [base_seed, scenario_name, params], sort_keys=True, default=str
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _build_result(
    case: Case, metrics: Dict[str, Any], elapsed: float, cached: bool = False
) -> ExperimentResult:
    """Assemble the result row for one case (identity from the case tuple).

    The single place computed rows are constructed: the serial path and
    the process-pool path both flow through here, so the row schema
    cannot drift between execution modes.  Params and metrics are
    JSON-coerced here (tuples become lists, NumPy scalars become Python
    ones) so a freshly computed row compares equal to the same row
    replayed from a store blob via :meth:`ExperimentResult.from_dict`.
    """
    name, family, _fn, params, seed, replication = case
    if not isinstance(metrics, dict):
        raise TypeError(
            f"scenario {name!r} returned {type(metrics).__name__}, expected dict"
        )
    return ExperimentResult(
        scenario=name,
        family=family,
        params=_jsonable(dict(params)),
        seed=seed,
        metrics=_jsonable(metrics),
        elapsed=elapsed,
        replication=replication,
        cached=cached,
    )


def _run_case(case: Case) -> ExperimentResult:
    """Execute one case (also the process-pool entry point)."""
    fn, params, seed = case[2], case[3], case[4]
    start = time.perf_counter()
    metrics = fn(seed=seed, **params)
    elapsed = time.perf_counter() - start
    return _build_result(case, metrics, elapsed)


def _collect_cases(
    scenarios: Optional[Sequence[str]],
    families: Optional[Sequence[str]],
    base_seed: int,
    limit_per_scenario: Optional[int],
    replications: int = 1,
) -> List[Case]:
    """Expand the requested scenarios/families into concrete seeded cases."""
    specs = []
    if scenarios:
        specs.extend(get_scenario(name) for name in scenarios)
    if families:
        for family in families:
            specs.extend(all_scenarios(family))
    if not scenarios and not families:
        specs = all_scenarios()
    seen = set()
    cases: List[Case] = []
    for spec in specs:
        if spec.name in seen:
            continue
        seen.add(spec.name)
        for i, params in enumerate(spec.iter_cases()):
            if limit_per_scenario is not None and i >= limit_per_scenario:
                break
            for replication in range(replications):
                cases.append(
                    _make_case(spec, params, base_seed, replication)
                )
    return cases


def _smoke_case_list(base_seed: int = 0) -> List[Case]:
    """First case of one scenario per family (the CI regression probe set)."""
    picked: List[Case] = []
    seen_families = set()
    for spec in all_scenarios():
        if spec.family in seen_families or spec.n_cases == 0:
            continue
        seen_families.add(spec.family)
        params = next(spec.iter_cases())
        picked.append(_make_case(spec, params, base_seed))
    return picked


def _make_case(
    spec, params: Dict[str, Any], base_seed: int, replication: int = 0
) -> Case:
    """Bundle one seeded, self-contained case from a registry spec.

    Replication 0 derives its seed from the params alone (identical to
    single-run sweeps, so adding replications never reshuffles existing
    results); higher replications mix a ``__replication__`` key into
    the hashed payload for an independent stream per repeat.
    """
    seed_params = (
        params
        if replication == 0
        else {**params, "__replication__": replication}
    )
    return (
        spec.name,
        spec.family,
        spec.fn,
        params,
        case_seed(base_seed, spec.name, seed_params),
        replication,
    )


def _execute_cases(
    cases: Sequence[Case],
    base_seed: int = 0,
    max_workers: Optional[int] = None,
    executor: Optional[Executor] = None,
    executor_factory: Optional[
        Callable[[int], Optional[Executor]]
    ] = None,
    store: Optional[Any] = None,
    progress: Optional[ProgressCallback] = None,
) -> ResultSet:
    """Execute cases in deterministic order, consulting ``store`` first.

    ``store`` is any object with the :class:`repro.service.store.ResultStore`
    surface (``key_for``/``get``/``put``); hits are rebuilt from their
    stored dicts without touching the executor, and misses are written
    back after computing.  ``executor`` is either a caller-owned
    ``concurrent.futures`` pool (the service's persistent one) or a
    *case executor* — any object with an ``execute_cases(cases,
    base_seed=..., progress=...)`` method, such as a
    :class:`repro.cluster.coordinator.ClusterCoordinator` (or its
    redundancy-bound :class:`~repro.cluster.coordinator.ClusterExecutor`)
    — which receives the post-cache pending cases wholesale and returns
    their results in order.  ``executor_factory`` defers the pool choice
    until after the store pass, receiving the post-cache *miss* count —
    a fully-cached sweep never starts worker processes; otherwise
    ``max_workers > 1`` spins up a temporary ``ProcessPoolExecutor``.
    ``progress`` is invoked once per finished case, in completion order,
    from the calling thread.
    """
    slots: List[Optional[ExperimentResult]] = [None] * len(cases)
    pending: List[Tuple[int, Case]] = []
    registry = default_registry()
    m_hits = registry.counter(
        "repro_runner_cache_hits_total",
        "Cases satisfied from the result store without recomputing.",
    )
    m_misses = registry.counter(
        "repro_runner_cache_misses_total",
        "Cases the runner had to (re)compute.",
    )
    for i, case in enumerate(cases):
        name, _family, _fn, params, _seed, replication = case
        blob = None
        if store is not None:
            key = store.key_for(name, params, base_seed, replication)
            blob = store.get(key)
        if blob is not None:
            m_hits.inc()
            slots[i] = ExperimentResult.from_dict(blob, cached=True)
            if progress is not None:
                progress(slots[i])
        else:
            m_misses.inc()
            pending.append((i, case))

    def finish(
        i: int,
        result: ExperimentResult,
        write_back: bool = True,
        report: bool = True,
    ) -> None:
        """Record one computed result: slot, store write-back, progress."""
        slots[i] = result
        if store is not None and write_back:
            name, _family, _fn, params, _seed, replication = cases[i]
            key = store.key_for(name, params, base_seed, replication)
            store.put(key, result.to_dict())
        if report and progress is not None:
            progress(result)

    if executor is None and executor_factory is not None and pending:
        executor = executor_factory(len(pending))
    own_pool = (
        executor is None
        and max_workers is not None
        and max_workers > 1
        and len(pending) > 1
    )
    if own_pool:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            for (i, _case), result in zip(
                pending, pool.map(_run_case, [c for _i, c in pending])
            ):
                finish(i, result)
    elif (
        executor is not None
        and hasattr(executor, "execute_cases")
        and len(pending) > 0
    ):
        # The executor reports per-case progress itself (live, as units
        # finish), so finish() must not report a second time; and a case
        # executor writing through this very store has already persisted
        # the rows (quorum-verified), so don't write each blob twice.
        computed = executor.execute_cases(
            [c for _i, c in pending], base_seed=base_seed, progress=progress
        )
        write_back = store is None or getattr(executor, "store", None) is not store
        for (i, _case), result in zip(pending, computed):
            finish(i, result, write_back=write_back, report=False)
    elif executor is not None and len(pending) > 0:
        futures = [(i, executor.submit(_run_case, c)) for i, c in pending]
        for i, future in futures:
            finish(i, future.result())
    else:
        for i, case in pending:
            finish(i, _run_case(case))
    return ResultSet([r for r in slots if r is not None])


def run_experiments(
    scenarios: Optional[Sequence[str]] = None,
    families: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    max_workers: Optional[int] = None,
    limit_per_scenario: Optional[int] = None,
    replications: int = 1,
    store: Optional[Any] = None,
    executor: Optional[Executor] = None,
    progress: Optional[ProgressCallback] = None,
) -> ResultSet:
    """Run a sweep and return its :class:`ResultSet`.

    ``scenarios`` and/or ``families`` select what runs (both empty means
    everything registered).  ``max_workers`` > 1 fans cases out over a
    process pool; the default (``None`` or 1) runs serially in-process,
    which is fastest for the small grids and keeps tracebacks direct.
    ``replications`` repeats every case under independent derived seeds
    (replication 0 reproduces the single-run sweep exactly), which is
    what gives grid metrics error bars.  ``store`` short-circuits cached
    cases through a content-addressed result store (see
    :mod:`repro.service.store`) and persists fresh ones; ``executor``
    lets a caller-owned pool be reused across sweeps — or, given any
    object with an ``execute_cases`` method (e.g. a
    :class:`repro.cluster.coordinator.ClusterCoordinator`), fans the
    pending cases out to a whole compute fabric; ``progress`` is
    called once per finished case.  Results are always returned in
    deterministic case order regardless of worker scheduling.
    """
    if replications < 1:
        raise ValueError("need at least one replication")
    cases = _collect_cases(
        scenarios, families, base_seed, limit_per_scenario, replications
    )
    return _execute_cases(
        cases,
        base_seed=base_seed,
        max_workers=max_workers,
        executor=executor,
        store=store,
        progress=progress,
    )


def smoke_cases(base_seed: int = 0, store: Optional[Any] = None) -> ResultSet:
    """Run the first case of one scenario per family (CI regression probe).

    Cheap by construction: one representative case per registry family,
    run serially, so a broken scenario surfaces before merge without
    paying for the full grids.  ``store`` is consulted and populated the
    same way :func:`run_experiments` does it.
    """
    return _execute_cases(
        _smoke_case_list(base_seed), base_seed=base_seed, store=store
    )
