"""Unified experiment infrastructure for the reproduction.

The paper's contributions live in many subsystems — robustness checks
(Section 2), mediator protocols (Section 2), machine games (Section 3),
scrip economies (Section 3's motivation), and Byzantine agreement
(Sections 2 and 5).  Before this package, every benchmark and example
hand-rolled its own driver over those subsystems.  Here they share one
pipeline:

* :mod:`repro.experiments.registry` — ``@scenario``-decorated,
  parameterized generators grouped into families (``games``,
  ``robustness``, ``solvers``, ``mediators``, ``scrip``, ``dist``).
* :mod:`repro.experiments.runner` — a batched runner with optional
  ``concurrent.futures`` process-pool parallelism and deterministic
  per-case seeding.
* :mod:`repro.experiments.results` — a results model with JSON/CSV
  emission and plain-text tables.

``python -m repro.experiments --list`` shows every registered scenario;
the benchmarks under ``benchmarks/`` and the examples under
``examples/`` drive their sweeps through this package.
"""

from repro.experiments.registry import (
    ScenarioSpec,
    all_scenarios,
    families,
    get_scenario,
    scenario,
)
from repro.experiments.results import ExperimentResult, ResultSet, format_table
from repro.experiments.runner import run_experiments, smoke_cases

__all__ = [
    "ExperimentResult",
    "ResultSet",
    "ScenarioSpec",
    "all_scenarios",
    "families",
    "format_table",
    "get_scenario",
    "run_experiments",
    "scenario",
    "smoke_cases",
]
