"""Results model for experiment sweeps: records, aggregation, and emission.

One :class:`ExperimentResult` per executed (scenario, params, seed) case;
a :class:`ResultSet` aggregates a sweep and serializes it to JSON or CSV
so downstream analysis never re-parses ad-hoc stdout logs.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["ExperimentResult", "ResultSet", "format_table"]


def _jsonable(value: Any) -> Any:
    """Coerce NumPy scalars/arrays (and tuples) into JSON-serializable types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


@dataclass
class ExperimentResult:
    """Outcome of one scenario case: identity, inputs, and metrics.

    ``replication`` distinguishes repeated runs of the same parameter
    assignment under independent seeds (see the runner's
    ``replications`` option); single-run sweeps leave it at 0.

    ``cached`` marks results served from a
    :class:`repro.service.store.ResultStore` instead of being computed
    this run.  It is in-memory bookkeeping only — excluded from equality
    and from :meth:`to_dict` — so a cache hit serializes byte-identically
    to the cold computation it replays.
    """

    scenario: str
    family: str
    params: Dict[str, Any]
    seed: int
    metrics: Dict[str, Any]
    elapsed: float
    replication: int = 0
    cached: bool = field(default=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict rendering with NumPy values coerced to JSON types."""
        return {
            "scenario": self.scenario,
            "family": self.family,
            "params": _jsonable(self.params),
            "seed": int(self.seed),
            "replication": int(self.replication),
            "metrics": _jsonable(self.metrics),
            "elapsed": float(self.elapsed),
        }

    def payload_dict(self) -> Dict[str, Any]:
        """Deterministic row content: :meth:`to_dict` minus ``elapsed``.

        ``elapsed`` is wall-clock metadata — it differs between two runs
        of the very same case — so every byte-identity claim (quorum
        voting across cluster workers, serial-vs-cluster comparisons)
        is made over this payload, never over the full dict.
        """
        payload = self.to_dict()
        del payload["elapsed"]
        return payload

    @classmethod
    def from_dict(cls, obj: Dict[str, Any], cached: bool = False) -> "ExperimentResult":
        """Rebuild a result from its :meth:`to_dict` rendering."""
        return cls(
            scenario=obj["scenario"],
            family=obj["family"],
            params=dict(obj["params"]),
            seed=int(obj["seed"]),
            metrics=dict(obj["metrics"]),
            elapsed=float(obj["elapsed"]),
            replication=int(obj.get("replication", 0)),
            cached=cached,
        )


@dataclass
class ResultSet:
    """An ordered collection of experiment results with emit helpers."""

    results: List[ExperimentResult] = field(default_factory=list)

    def __len__(self) -> int:
        """Number of recorded cases."""
        return len(self.results)

    def __iter__(self):
        """Iterate over the recorded :class:`ExperimentResult` objects."""
        return iter(self.results)

    def append(self, result: ExperimentResult) -> None:
        """Record one more case."""
        self.results.append(result)

    def filter(
        self,
        family: Optional[str] = None,
        scenario: Optional[str] = None,
    ) -> "ResultSet":
        """Sub-set by family and/or scenario name."""
        kept = [
            r
            for r in self.results
            if (family is None or r.family == family)
            and (scenario is None or r.scenario == scenario)
        ]
        return ResultSet(kept)

    def metric(self, key: str) -> List[Any]:
        """The named metric across all cases (missing key -> None)."""
        return [r.metrics.get(key) for r in self.results]

    def to_json_obj(self) -> List[Dict[str, Any]]:
        """JSON-ready rendering: one :meth:`ExperimentResult.to_dict` per case.

        The inverse of :meth:`from_json_obj`; the service's result store
        and HTTP layer ship result sets through this pair, so it never
        touches the filesystem.
        """
        return [r.to_dict() for r in self.results]

    @classmethod
    def from_json_obj(cls, obj: Iterable[Dict[str, Any]]) -> "ResultSet":
        """Rebuild a result set from a :meth:`to_json_obj` rendering."""
        return cls([ExperimentResult.from_dict(row) for row in obj])

    def payload_bytes(self) -> bytes:
        """Canonical bytes of the sweep's deterministic content.

        Canonical JSON (sorted keys, compact separators) over every
        row's :meth:`ExperimentResult.payload_dict`, in order.  Two runs
        of the same seeded sweep — serial, process-pool, or cluster —
        must agree on these bytes exactly; this is what the cluster
        determinism tests and the quorum fabric compare.
        """
        rows = [r.payload_dict() for r in self.results]
        return json.dumps(
            rows, sort_keys=True, separators=(",", ":"), default=str
        ).encode("utf-8")

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """Serialize to JSON; also writes ``path`` when given."""
        text = json.dumps(self.to_json_obj(), indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text

    def to_csv(self, path: Optional[str] = None) -> str:
        """Serialize to CSV (one row per case, flat param/metric columns).

        Param columns are prefixed ``param_`` and metric columns
        ``metric_``; the column set is the union over all cases.
        """
        param_keys: List[str] = []
        metric_keys: List[str] = []
        for r in self.results:
            for k in r.params:
                if k not in param_keys:
                    param_keys.append(k)
            for k in r.metrics:
                if k not in metric_keys:
                    metric_keys.append(k)
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            ["scenario", "family", "seed", "replication", "elapsed"]
            + [f"param_{k}" for k in param_keys]
            + [f"metric_{k}" for k in metric_keys]
        )
        for r in self.results:
            writer.writerow(
                [r.scenario, r.family, r.seed, r.replication, f"{r.elapsed:.6f}"]
                + [_jsonable(r.params.get(k, "")) for k in param_keys]
                + [_jsonable(r.metrics.get(k, "")) for k in metric_keys]
            )
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text

    @property
    def cache_hits(self) -> int:
        """Number of cases served from a result store this run."""
        return sum(1 for r in self.results if r.cached)

    @property
    def cache_misses(self) -> int:
        """Number of cases actually computed this run."""
        return sum(1 for r in self.results if not r.cached)

    def timing_summary(self) -> List[List[Any]]:
        """Per-scenario wall-time rows: cases, cache hits, total/mean seconds.

        Ordered by first appearance, so CLI output lines up with the
        per-scenario result tables above it.  The ``hits`` column counts
        cases served from a result store; their recorded ``elapsed`` is
        the original computation's, so totals stay comparable across
        cold and warm runs.
        """
        order: List[str] = []
        grouped: Dict[str, List[ExperimentResult]] = {}
        for r in self.results:
            if r.scenario not in grouped:
                grouped[r.scenario] = []
                order.append(r.scenario)
            grouped[r.scenario].append(r)
        return [
            [
                name,
                len(grouped[name]),
                sum(1 for r in grouped[name] if r.cached),
                f"{sum(r.elapsed for r in grouped[name]):.3f}",
                f"{1000.0 * sum(r.elapsed for r in grouped[name]) / len(grouped[name]):.1f}",
            ]
            for name in order
        ]

    def rows(self, columns: Sequence[str]) -> List[List[Any]]:
        """Tabular projection: each named column is a param or metric key."""
        out = []
        for r in self.results:
            row: List[Any] = []
            for col in columns:
                if col == "scenario":
                    row.append(r.scenario)
                elif col == "seed":
                    row.append(r.seed)
                elif col in r.params:
                    row.append(r.params[col])
                else:
                    row.append(r.metrics.get(col))
            out.append(row)
        return out


def format_table(
    title: str, header: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    """Render one results table as aligned plain text."""
    str_rows = [tuple(str(c) for c in row) for row in rows]
    header = tuple(str(c) for c in header)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in str_rows))
        if str_rows
        else len(header[i])
        for i in range(len(header))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    out = [f"=== {title} ===", line, "-" * len(line)]
    for row in str_rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
