"""Command-line entry point: ``python -m repro.experiments``.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments --family robustness
    python -m repro.experiments --scenario scrip_threshold_economy --workers 4
    python -m repro.experiments --smoke --json smoke.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import all_scenarios
from repro.experiments.results import ResultSet, format_table
from repro.experiments.runner import run_experiments, smoke_cases


def _print_listing() -> None:
    """Print every registered scenario with its family and grid size."""
    rows = [
        (spec.family, spec.name, spec.n_cases, spec.description)
        for spec in all_scenarios()
    ]
    print(
        format_table(
            "registered scenarios",
            ["family", "scenario", "cases", "description"],
            rows,
        )
    )


def _print_results(results: ResultSet) -> None:
    """Print one aligned table per scenario in the result set."""
    by_scenario: dict = {}
    for result in results:
        by_scenario.setdefault(result.scenario, []).append(result)
    for name, group in by_scenario.items():
        param_keys = sorted({k for r in group for k in r.params})
        metric_keys = sorted({k for r in group for k in r.metrics})
        if any(r.replication for r in group):
            param_keys = ["replication"] + param_keys
            rows = [
                [r.replication]
                + [r.params.get(k, "") for k in param_keys[1:]]
                + [r.metrics.get(k, "") for k in metric_keys]
                + [f"{r.elapsed:.4f}s"]
                for r in group
            ]
        else:
            rows = [
                [r.params.get(k, "") for k in param_keys]
                + [r.metrics.get(k, "") for k in metric_keys]
                + [f"{r.elapsed:.4f}s"]
                for r in group
            ]
        header = param_keys + metric_keys + ["elapsed"]
        print(format_table(f"{group[0].family} / {name}", header, rows))
        print()


def _print_timing(results: ResultSet) -> None:
    """Print the per-scenario wall-time summary of a finished sweep."""
    rows = results.timing_summary()
    if rows:
        print(
            format_table(
                "wall time by scenario",
                ["scenario", "cases", "cache hits", "total s", "mean ms"],
                rows,
            )
        )


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the requested sweep, and emit results."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run registered experiment scenarios.",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=[],
        help="scenario name to run (repeatable)",
    )
    parser.add_argument(
        "--family",
        action="append",
        default=[],
        help="run every scenario in this family (repeatable)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run one representative case per family",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size (1 = serial, the default)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="cap the number of cases per scenario",
    )
    parser.add_argument(
        "--replications",
        type=int,
        default=1,
        help="independent seeded repeats of every case (error bars)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "content-addressed result cache directory; cases already "
            "stored there are served without recomputation"
        ),
    )
    parser.add_argument("--json", default=None, help="write results JSON here")
    parser.add_argument("--csv", default=None, help="write results CSV here")
    args = parser.parse_args(argv)

    if args.list:
        _print_listing()
        return 0

    store = None
    if args.cache_dir:
        from repro.service.store import ResultStore

        store = ResultStore(args.cache_dir)

    try:
        if args.smoke:
            results = smoke_cases(base_seed=args.seed, store=store)
        else:
            results = run_experiments(
                scenarios=args.scenario or None,
                families=args.family or None,
                base_seed=args.seed,
                max_workers=args.workers,
                limit_per_scenario=args.limit,
                replications=args.replications,
                store=store,
            )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    _print_results(results)
    _print_timing(results)
    print(f"{len(results)} cases run.")
    if store is not None:
        print(
            f"cache: {results.cache_hits} hits, "
            f"{results.cache_misses} misses ({args.cache_dir})"
        )
    if args.json:
        results.to_json(args.json)
        print(f"JSON written to {args.json}")
    if args.csv:
        results.to_csv(args.csv)
        print(f"CSV written to {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
