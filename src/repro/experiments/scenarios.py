"""Built-in scenario definitions, one family per paper subsystem.

Families and their paper anchors:

* ``robustness`` — Section 2's worked examples E1/E2 ((k,t)-robustness).
* ``games`` — the solver substrate over random and classic games.
* ``solvers`` — cross-validation and batched learning-dynamics replay.
* ``mediators`` — Section 2's mediated game Γd and its honesty check.
* ``scrip`` — Section 3's motivating scrip economy (Kash–Friedman–Halpern).
* ``dist`` — Sections 2/5: Byzantine agreement protocols under faults.
* ``verify`` — exhaustive bounded model checking of the ``dist``
  protocols (:mod:`repro.verify`), with replayable counterexamples.

Every scenario takes ``seed`` plus its grid parameters and returns a flat
metrics dict, so any case can run in a worker process and serialize to
JSON/CSV untouched.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.experiments.registry import scenario

__all__: list = []  # scenarios register by side effect; nothing to re-export


def _classic_game(name: str):
    """Resolve a classic game constructor by registry-friendly name."""
    from repro.games import classics

    constructors = {
        "prisoners_dilemma": classics.prisoners_dilemma,
        "matching_pennies": classics.matching_pennies,
        "chicken": classics.chicken,
        "stag_hunt": classics.stag_hunt,
        "battle_of_the_sexes": classics.battle_of_the_sexes,
        "roshambo": classics.roshambo,
    }
    return constructors[name]()


# ----------------------------------------------------------------------
# Family: robustness (Section 2, Examples E1/E2)
# ----------------------------------------------------------------------


@scenario(family="robustness", params={"n": [2, 3, 4, 5]})
def coordination_robustness(n: int, seed: int) -> Dict[str, Any]:
    """E1: the 0/1 coordination game's all-0 profile is Nash but not 2-resilient."""
    from repro.core.robust import resilience_violations, robustness_report
    from repro.games.classics import coordination_01_game
    from repro.games.normal_form import profile_as_mixed

    game = coordination_01_game(n)
    profile = profile_as_mixed((0,) * n, game.num_actions)
    report = robustness_report(game, profile)
    violation = resilience_violations(game, profile, 2)[0]
    return {
        "is_nash": bool(report.is_nash),
        "max_k_strong": int(report.max_k_strong),
        "max_k_weak": int(report.max_k_weak),
        "max_t": int(report.max_t),
        "witness_coalition": tuple(violation.coalition),
        "witness_gains": tuple(violation.gains),
    }


@scenario(family="robustness", params={"n": [2, 3, 4, 5]})
def bargaining_robustness(n: int, seed: int) -> Dict[str, Any]:
    """E2: the bargaining game's all-stay profile is k-resilient for all k, 0-immune."""
    from repro.core.robust import (
        immunity_violations,
        max_immunity,
        max_resilience,
    )
    from repro.games.classics import bargaining_game
    from repro.games.normal_form import profile_as_mixed

    game = bargaining_game(n)
    profile = profile_as_mixed((0,) * n, game.num_actions)
    violation = immunity_violations(game, profile, 1)[0]
    return {
        "max_k": int(max_resilience(game, profile)),
        "max_t": int(max_immunity(game, profile)),
        "pareto_optimal": bool(game.is_pareto_optimal_pure((0,) * n)),
        "witness_deviator": int(violation.deviators[0]),
        "witness_victim": int(violation.victim),
        "witness_loss": float(violation.loss),
    }


# ----------------------------------------------------------------------
# Family: games (substrate audit over random instances)
# ----------------------------------------------------------------------


@scenario(family="games", params={"size": [2, 3, 4, 6, 8]})
def random_game_audit(size: int, seed: int) -> Dict[str, Any]:
    """Pure-equilibrium and dominance structure of a random bimatrix game."""
    from repro.games.normal_form import NormalFormGame

    rng = np.random.default_rng(seed)
    game = NormalFormGame.from_bimatrix(
        rng.integers(-5, 6, size=(size, size)).astype(float),
        rng.integers(-5, 6, size=(size, size)).astype(float),
    )
    pure = game.pure_nash_equilibria()
    dominated = [game.dominated_actions(i) for i in range(2)]
    return {
        "n_pure_nash": len(pure),
        "n_dominated_row": len(dominated[0]),
        "n_dominated_col": len(dominated[1]),
        "zero_sum": bool(game.is_zero_sum()),
    }


# ----------------------------------------------------------------------
# Family: solvers (cross-validation + batched dynamics replay)
# ----------------------------------------------------------------------


@scenario(
    family="solvers",
    params={
        "game": [
            "prisoners_dilemma",
            "matching_pennies",
            "chicken",
            "stag_hunt",
            "battle_of_the_sexes",
            "roshambo",
        ]
    },
)
def solver_cross_validation(game: str, seed: int) -> Dict[str, Any]:
    """E14: independent 2-player solvers agree on the classic games."""
    from repro.solvers import (
        fictitious_play,
        lemke_howson,
        support_enumeration,
    )

    instance = _classic_game(game)
    equilibria = support_enumeration(instance)
    try:
        lh_profile = lemke_howson(instance)
        lh_ok = instance.is_nash(lh_profile, tol=1e-6)
    except RuntimeError:
        lh_ok = True  # ray termination: inconclusive, not a disagreement
    fp = fictitious_play(instance, iterations=3000)
    return {
        "n_support_equilibria": len(equilibria),
        "lemke_howson_ok": bool(lh_ok),
        "fp_regret": float(fp.regret),
    }


@scenario(
    family="solvers",
    params={"game": ["stag_hunt", "chicken"], "n_runs": [32]},
)
def fp_basin_sweep(game: str, n_runs: int, seed: int) -> Dict[str, Any]:
    """Batched fictitious play from random starts: which equilibria attract?"""
    from repro.solvers import fictitious_play_batch

    instance = _classic_game(game)
    rng = np.random.default_rng(seed)
    starts = np.stack(
        [rng.integers(m, size=n_runs) for m in instance.num_actions], axis=1
    )
    results = fictitious_play_batch(
        instance, n_runs, iterations=500, initial_actions=starts
    )
    regrets = np.array([r.regret for r in results])
    terminal = {}
    for r in results:
        key = tuple(r.last_actions)
        terminal[key] = terminal.get(key, 0) + 1
    return {
        "mean_regret": float(regrets.mean()),
        "max_regret": float(regrets.max()),
        "n_terminal_profiles": len(terminal),
        "modal_terminal": max(terminal, key=terminal.get),
    }


@scenario(
    family="solvers",
    params={"game": ["stag_hunt", "chicken"], "n_runs": [64]},
)
def replicator_basin_sweep(game: str, n_runs: int, seed: int) -> Dict[str, Any]:
    """Batched replicator replay over Dirichlet starts (basins of attraction)."""
    from repro.solvers import replicator_dynamics_batch

    instance = _classic_game(game)
    m = instance.num_actions[0]
    rng = np.random.default_rng(seed)
    initials = rng.dirichlet(np.ones(m), size=n_runs)
    batch = replicator_dynamics_batch(instance, initials, iterations=5000)
    modal_action = np.bincount(
        np.argmax(batch.finals, axis=1), minlength=m
    )
    return {
        "converged_fraction": float(batch.converged.mean()),
        "mean_iterations": float(batch.iterations.mean()),
        "basin_counts": tuple(int(c) for c in modal_action),
    }


# ----------------------------------------------------------------------
# Family: mediators (Section 2, the mediated game Γd)
# ----------------------------------------------------------------------


@scenario(family="mediators", params={"n": [3, 4, 5]})
def mediator_honesty(n: int, seed: int) -> Dict[str, Any]:
    """Honesty is an equilibrium of Γd with the trivial BA mediator."""
    from repro.games.classics import byzantine_agreement_game
    from repro.mediators.base import MediatedGame, byzantine_agreement_mediator

    game = byzantine_agreement_game(n)
    mediated = MediatedGame(game, byzantine_agreement_mediator(n))
    utilities = mediated.honest_utilities()
    return {
        "honest_equilibrium": bool(mediated.is_honest_equilibrium()),
        "honest_utility_min": float(utilities.min()),
        "honest_utility_max": float(utilities.max()),
    }


# ----------------------------------------------------------------------
# Family: scrip (Section 3's motivating economy)
# ----------------------------------------------------------------------


@scenario(
    family="scrip",
    params={"n_agents": [8, 12], "threshold": [3, 5], "rounds": [4000]},
)
def scrip_threshold_economy(
    n_agents: int, threshold: int, rounds: int, seed: int
) -> Dict[str, Any]:
    """A homogeneous threshold-agent scrip economy's service level."""
    from repro.econ.scrip import ScripSystem, ThresholdAgent

    system = ScripSystem(
        [ThresholdAgent(threshold) for _ in range(n_agents)],
        benefit=1.0,
        cost=0.2,
    )
    result = system.run(rounds, seed=seed)
    return {
        "satisfaction_rate": float(result.satisfaction_rate),
        "mean_utility": float(result.mean_utility()),
        "requests_made": int(result.requests_made),
        "scrip_std": float(result.final_scrip.std()),
    }


@scenario(
    family="scrip",
    params={"base_threshold": [2, 4, 8], "replications": [5]},
)
def scrip_best_response_grid(
    base_threshold: int, replications: int, seed: int
) -> Dict[str, Any]:
    """Replicated empirical best responses with error bars (batched sweep)."""
    from repro.econ.scrip import best_response_sweep

    candidates = [1, 2, 4, 8, 16]
    sweep = best_response_sweep(
        [base_threshold],
        candidates,
        n_agents=12,
        rounds=8_000,
        cost=0.6,
        discount=0.999,
        seed=seed,
        replications=replications,
    )
    means = sweep.mean_utilities[0]
    stds = sweep.std_utilities[0]
    best = sweep.best_response(base_threshold)
    base_col = candidates.index(base_threshold)
    metrics: Dict[str, Any] = {
        "best_response": int(best),
        "gap": float(means.max() - means[base_col]),
        "gap_noise": float(stds[base_col]),
    }
    for candidate, mean, std in zip(candidates, means, stds):
        metrics[f"u{candidate}"] = float(mean)
        metrics[f"u{candidate}_std"] = float(std)
    return metrics


@scenario(
    family="scrip",
    params=[
        {"n_agents": 3, "threshold": 2, "initial_scrip": 1},
        {"n_agents": 4, "threshold": 3, "initial_scrip": 2},
        {"n_agents": 5, "threshold": 3, "initial_scrip": 2},
        {"n_agents": 4, "threshold": 2, "initial_scrip": 3},
    ],
)
def scrip_analytic_vs_mc(
    n_agents: int, threshold: int, initial_scrip: int, seed: int
) -> Dict[str, Any]:
    """Exact Markov-chain utility vs long-horizon Monte Carlo (cross-check)."""
    from repro.econ.markov import analytic_threshold_utility
    from repro.econ.scrip import ScripSystem, ThresholdAgent

    analysis = analytic_threshold_utility(
        n_agents, threshold, benefit=1.0, cost=0.2, initial_scrip=initial_scrip
    )
    mc = ScripSystem(
        [ThresholdAgent(threshold) for _ in range(n_agents)],
        benefit=1.0,
        cost=0.2,
        initial_scrip=initial_scrip,
    ).run(120_000, seed=seed)
    mc_utility = float(mc.utilities.mean() / mc.rounds)
    return {
        "n_states": int(analysis.n_states),
        "analytic_utility": float(analysis.expected_utility),
        "mc_utility": mc_utility,
        "abs_error": float(abs(analysis.expected_utility - mc_utility)),
        "analytic_satisfaction": float(analysis.satisfaction_rate),
        "mc_satisfaction": float(mc.satisfaction_rate),
        "frozen": bool(analysis.frozen),
    }


@scenario(
    family="scrip",
    params={
        "n_agents": [12, 120],
        "composition": ["healthy", "hoarders", "altruists"],
    },
)
def scrip_population_mix(
    n_agents: int, composition: str, seed: int
) -> Dict[str, Any]:
    """Hoarder/altruist welfare shifts, up to 10x the classic population."""
    from repro.econ.scrip import (
        Altruist,
        Hoarder,
        ScripSystem,
        ThresholdAgent,
    )

    n_irrational = 0 if composition == "healthy" else n_agents // 4
    irrational = Hoarder if composition == "hoarders" else Altruist
    agents = [
        ThresholdAgent(4) for _ in range(n_agents - n_irrational)
    ] + [irrational() for _ in range(n_irrational)]
    result = ScripSystem(agents, cost=0.2).run(1_000 * n_agents, seed=seed)
    threshold_ids = range(n_agents - n_irrational)
    irrational_scrip = (
        float(result.final_scrip[n_agents - n_irrational:].sum())
        if n_irrational
        else 0.0
    )
    return {
        "threshold_mean_utility": float(result.mean_utility(threshold_ids))
        / result.rounds,
        "satisfaction_rate": float(result.satisfaction_rate),
        "served_for_free": int(result.served_for_free),
        "irrational_scrip_share": irrational_scrip
        / max(float(result.final_scrip.sum()), 1.0),
    }


@scenario(
    family="scrip",
    params={"initial_scrip": [1, 2, 3, 4, 6, 8]},
)
def scrip_money_supply(initial_scrip: int, seed: int) -> Dict[str, Any]:
    """E17: KFH 'crashes' — too much scrip and nobody ever works."""
    from repro.econ.scrip import ScripSystem, ThresholdAgent

    system = ScripSystem(
        [ThresholdAgent(4) for _ in range(12)],
        cost=0.2,
        initial_scrip=initial_scrip,
    )
    result = system.run(20_000, seed=seed)
    crashed = result.requests_made > 0 and result.requests_satisfied == 0
    return {
        "satisfaction_rate": float(result.satisfaction_rate),
        "total_welfare": float(result.utilities.sum()),
        "crashed": bool(crashed),
    }


# ----------------------------------------------------------------------
# Family: dist (Sections 2/5: agreement under Byzantine faults)
# ----------------------------------------------------------------------


@scenario(
    family="dist",
    params=[
        {"n": 4, "t": 1},
        {"n": 5, "t": 1},
        {"n": 7, "t": 2},
        {"n": 3, "t": 1},
        {"n": 6, "t": 2},
    ],
)
def eig_reliability(n: int, t: int, seed: int) -> Dict[str, Any]:
    """EIG correctness over a fixed random-adversary grid, plus the
    adversarial search for a spec violation when n <= 3t.

    The adversary sweep is exhaustive over a fixed seed range (the same
    grid for every run) so the reproduced table matches the paper's
    threshold claim deterministically; the per-case ``seed`` is unused.
    """
    from repro.dist.agreement import run_eig_agreement, search_for_disagreement
    from repro.dist.simulator import ByzantineRandomAdversary

    correct = 0
    trials = 0
    for adversary_seed in range(10):
        for general_value in (0, 1):
            faulty = set(range(n - t, n))
            adversary = ByzantineRandomAdversary(faulty, seed=adversary_seed)
            outcome = run_eig_agreement(n, t, general_value, adversary)
            correct += outcome.correct
            trials += 1
    violation = (
        search_for_disagreement(n, t, "eig", random_seeds=5)
        if n <= 3 * t
        else None
    )
    return {
        "regime": "n > 3t" if n > 3 * t else "n <= 3t",
        "correct": int(correct),
        "trials": int(trials),
        "violation_found": violation is not None,
    }


@scenario(
    family="dist",
    params=[
        {"protocol": "eig", "n": 4, "t": 1},
        {"protocol": "eig", "n": 7, "t": 2},
        {"protocol": "phase_king", "n": 5, "t": 1},
        {"protocol": "phase_king", "n": 9, "t": 2},
        {"protocol": "mediator", "n": 4, "t": 1},
    ],
)
def byzantine_agreement_run(
    protocol: str, n: int, t: int, seed: int
) -> Dict[str, Any]:
    """One Byzantine agreement execution with t random-Byzantine faults."""
    from repro.dist.agreement import (
        run_eig_agreement,
        run_mediator_agreement,
        run_phase_king_agreement,
    )
    from repro.dist.simulator import ByzantineRandomAdversary

    rng = np.random.default_rng(seed)
    faulty = set(
        int(i) for i in rng.choice(np.arange(1, n), size=t, replace=False)
    )
    adversary = ByzantineRandomAdversary(faulty, seed=seed)
    general_value = int(rng.integers(2))
    runners = {
        "eig": run_eig_agreement,
        "phase_king": run_phase_king_agreement,
        "mediator": run_mediator_agreement,
    }
    if protocol == "mediator":
        outcome = run_mediator_agreement(
            n, t, adversary=adversary, general_value=general_value
        )
    else:
        outcome = runners[protocol](
            n, t, general_value, adversary=adversary
        )
    return {
        "correct": bool(outcome.correct),
        "agreement": bool(outcome.agreement),
        "validity": bool(outcome.validity),
        "rounds": int(outcome.rounds),
        "faulty": tuple(sorted(faulty)),
    }


# ----------------------------------------------------------------------
# Family: verify (bounded model checking over the dist simulator)
# ----------------------------------------------------------------------


@scenario(
    family="verify",
    params=[
        {"protocol": "eig", "n": 3, "t": 1, "bound": 2, "coalitions": "family"},
        {"protocol": "eig", "n": 4, "t": 1, "bound": 3, "coalitions": "all"},
        {
            "protocol": "phase_king",
            "n": 4,
            "t": 1,
            "bound": 3,
            "coalitions": "family",
        },
        {
            "protocol": "phase_king",
            "n": 4,
            "t": 1,
            "bound": 2,
            "coalitions": "all",
        },
    ],
)
def bounded_model_check(
    protocol: str, n: int, t: int, bound: int, coalitions: str, seed: int
) -> Dict[str, Any]:
    """Exhaustive bounded verification of one agreement protocol.

    The grid covers both verdicts the checker can reach: the classic
    ``n <= 3t`` impossibility rediscovered as a minimal counterexample
    (eig at (3, 1)), certification in the possible regime (eig and
    phase king at (4, 1) under the ``search_for_disagreement``
    placements), and the all-coalitions run that breaks phase king at
    ``n = 4t`` via a faulty final-phase king — a genuine attack the
    hand-picked placement family misses.  Deterministic; ``seed`` is
    unused.
    """
    from repro.verify import check_model

    result = check_model(protocol, n, t, bound=bound, coalitions=coalitions)
    trace = result.counterexample
    return {
        "ok": bool(result.ok),
        "states": int(result.states_explored),
        "transitions": int(result.transitions),
        "terminal_states": int(result.terminal_states),
        "violation_found": trace is not None,
        "violated_invariant": trace.invariant if trace else "",
        "min_events": len(trace.events) if trace else 0,
        "replay_reproduces": bool(trace.replay_violates()) if trace else True,
    }
