"""repro — Beyond Nash Equilibrium: Solution Concepts for the 21st Century.

A from-scratch reproduction of Halpern (PODC 2008): robust/resilient
equilibria with mediators and cheap talk, computational (machine-game)
equilibria, and awareness equilibria — together with every substrate they
need (game representations, Nash solvers, a synchronous distributed
simulator, Byzantine agreement, Shamir/BGW secure computation, automata
and a step-counting VM, scrip and P2P economies, tournaments).

Quickstart::

    from repro.games.classics import coordination_01_game
    from repro.core.robust import robustness_report
    from repro.games.normal_form import profile_as_mixed

    game = coordination_01_game(5)
    all_zero = profile_as_mixed((0,) * 5, game.num_actions)
    print(robustness_report(game, all_zero).describe())

See README.md, DESIGN.md, and EXPERIMENTS.md for the full map.
"""

__version__ = "1.0.0"

__all__ = [
    "cluster",
    "core",
    "crypto",
    "dist",
    "dynamics",
    "econ",
    "experiments",
    "games",
    "logic",
    "machines",
    "mediators",
    "obs",
    "service",
    "solvers",
    "verify",
]


def __getattr__(name):
    """Lazily expose subpackages so ``import repro; repro.dist`` works."""
    if name in __all__:
        import importlib

        module = importlib.import_module(f"repro.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
