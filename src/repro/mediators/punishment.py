"""(k+t)-punishment strategies.

The ADGH ``n > 2k + 3t`` regime requires a *punishment strategy*: a
profile that, if used by all but at most ``k + t`` players, guarantees
every player a worse outcome than the equilibrium gives them.  This
module searches for such profiles in finite games and computes the
classical minmax punishment levels.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.games.normal_form import (
    NormalFormGame,
    PureProfile,
    profile_as_mixed,
    pure_profiles,
)

__all__ = ["PunishmentSpec", "minmax_punishment", "has_punishment_strategy"]


@dataclass
class PunishmentSpec:
    """A verified punishment profile.

    ``margin`` is the smallest gap between a player's equilibrium payoff
    and the best that player (or any coalition containing them) can
    achieve while the rest punish.
    """

    profile: PureProfile
    margin: float
    tolerated_deviators: int


def minmax_punishment(
    game: NormalFormGame, player: int
) -> Tuple[float, PureProfile]:
    """The pure-strategy minmax value of ``player`` and a minimizing profile.

    ``min`` over the others' pure profiles of ``player``'s best response.
    (Pure minmax upper-bounds mixed minmax; sufficient for the paper's
    examples, and documented as such.)
    """
    best_value = np.inf
    best_profile: Optional[PureProfile] = None
    others_spaces = [
        range(game.num_actions[j]) if j != player else (0,)
        for j in range(game.n_players)
    ]
    for combo in itertools.product(*others_spaces):
        responses = []
        for a in range(game.num_actions[player]):
            profile = tuple(
                a if j == player else combo[j] for j in range(game.n_players)
            )
            responses.append(game.payoff(player, profile))
        value = max(responses)
        if value < best_value:
            best_value = value
            best_action = int(np.argmax(responses))
            best_profile = tuple(
                best_action if j == player else combo[j]
                for j in range(game.n_players)
            )
    assert best_profile is not None
    return float(best_value), best_profile


def _worst_case_utilities_under_deviation(
    game: NormalFormGame, punish: PureProfile, deviators: Sequence[int]
) -> np.ndarray:
    """For a fixed deviating set, the max utility each player can see over
    all pure joint deviations of that set."""
    spaces = [
        range(game.num_actions[j]) if j in deviators else (punish[j],)
        for j in range(game.n_players)
    ]
    best = np.full(game.n_players, -np.inf)
    for combo in itertools.product(*spaces):
        values = game.payoff_vector(tuple(combo))
        best = np.maximum(best, values)
    return best


def has_punishment_strategy(
    game: NormalFormGame,
    equilibrium_payoffs: Sequence[float],
    max_deviators: int,
    strict_margin: float = 1e-9,
    punish_whom: str = "deviators",
) -> Optional[PunishmentSpec]:
    """Search for a (``max_deviators``)-punishment strategy.

    A pure profile ``q`` qualifies if, for every set ``D`` of up to
    ``max_deviators`` players not following ``q`` and every joint action
    of ``D``, the punished players' payoffs stay strictly below their
    equilibrium payoffs.  ``punish_whom`` selects the reading of "every
    player" in the paper's clause:

    * ``"deviators"`` (default, the ADGH deterrence reading): the players
      *not* following the punishment profile must end up strictly worse
      than at equilibrium no matter what they do;
    * ``"everyone"`` (literal reading): all players — including the
      punishers — must end up strictly worse.

    Returns the qualifying profile with the largest margin, or ``None``.
    """
    if punish_whom not in ("deviators", "everyone"):
        raise ValueError("punish_whom must be 'deviators' or 'everyone'")
    eq = np.asarray(equilibrium_payoffs, dtype=float)
    if eq.shape != (game.n_players,):
        raise ValueError("need one equilibrium payoff per player")
    best_spec: Optional[PunishmentSpec] = None
    n = game.n_players
    deviator_sets: List[Tuple[int, ...]] = []
    for size in range(1, min(max_deviators, n) + 1):
        deviator_sets.extend(itertools.combinations(range(n), size))
    if punish_whom == "everyone" or max_deviators == 0:
        deviator_sets.insert(0, ())
    for punish in pure_profiles(game.num_actions):
        margin = np.inf
        ok = True
        for deviators in deviator_sets:
            worst = _worst_case_utilities_under_deviation(
                game, punish, deviators
            )
            judged = (
                list(deviators) if punish_whom == "deviators" and deviators
                else list(range(n))
            )
            gaps = eq[judged] - worst[judged]
            if np.any(gaps <= strict_margin):
                ok = False
                break
            margin = min(margin, float(gaps.min()))
        if ok:
            spec = PunishmentSpec(
                profile=punish,
                margin=float(margin),
                tolerated_deviators=max_deviators,
            )
            if best_spec is None or spec.margin > best_spec.margin:
                best_spec = spec
    return best_spec
