"""Mediators and the mediated game extension Γd.

A :class:`Mediator` maps a reported type profile to a distribution over
*recommended* action profiles (the correlated-equilibrium device,
generalized to Bayesian games).  :class:`MediatedGame` wraps an underlying
:class:`~repro.games.bayesian.BayesianGame` with a mediator and evaluates
strategy profiles in which each player chooses (a) what to report and
(b) how to act on the recommendation.

The honest strategy reports truthfully and obeys the recommendation.  The
deviation space we enumerate is the full space of *deterministic*
communication strategies: a report map ``T_i -> T_i`` together with an
action map ``T_i x A_i -> A_i`` (what to actually play given the true type
and the recommendation).  For the finite games in the paper this space is
small and exhaustively checkable; mixed deviations cannot help because
utilities are multilinear in the deviation mixture.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.games.bayesian import BayesianGame, TypeProfile

__all__ = [
    "Mediator",
    "TableMediator",
    "DeterministicMediator",
    "Deviation",
    "MediatedGame",
    "byzantine_agreement_mediator",
]

ActionProfile = Tuple[int, ...]


class Mediator:
    """Interface: a recommendation distribution per reported type profile."""

    def recommendation_distribution(
        self, reported_types: TypeProfile
    ) -> Dict[ActionProfile, float]:
        """Distribution over recommended action profiles."""
        raise NotImplementedError

    def sample(
        self, reported_types: TypeProfile, rng: np.random.Generator
    ) -> ActionProfile:
        dist = self.recommendation_distribution(reported_types)
        profiles = list(dist.keys())
        probs = np.array([dist[p] for p in profiles], dtype=float)
        probs = probs / probs.sum()
        index = int(rng.choice(len(profiles), p=probs))
        return profiles[index]


class TableMediator(Mediator):
    """A mediator given by an explicit table of distributions."""

    def __init__(
        self, table: Dict[TypeProfile, Dict[ActionProfile, float]]
    ) -> None:
        for types, dist in table.items():
            total = sum(dist.values())
            if abs(total - 1.0) > 1e-9 or any(v < 0 for v in dist.values()):
                raise ValueError(
                    f"recommendations for {types} are not a distribution"
                )
        self.table = {
            types: dict(dist) for types, dist in table.items()
        }

    def recommendation_distribution(self, reported_types):
        if reported_types not in self.table:
            raise KeyError(f"mediator has no entry for types {reported_types}")
        return self.table[reported_types]


class DeterministicMediator(TableMediator):
    """A mediator computing a single recommended profile per type profile.

    ``fn(reported_types) -> action profile``.  The Byzantine-agreement
    mediator is the motivating instance: relay the general's preference to
    everyone.
    """

    def __init__(
        self,
        num_types: Sequence[int],
        fn: Callable[[TypeProfile], ActionProfile],
    ) -> None:
        table: Dict[TypeProfile, Dict[ActionProfile, float]] = {}
        for types in itertools.product(*(range(m) for m in num_types)):
            table[types] = {tuple(fn(types)): 1.0}
        super().__init__(table)
        self.fn = fn


def byzantine_agreement_mediator(n_players: int) -> DeterministicMediator:
    """The Section 2 mediator for Byzantine agreement.

    Relay the general's reported preference (its type) to every player.
    This single object backs both faces of the paper's argument: the
    game-theoretic one (honesty is an equilibrium of Γd — see
    :class:`MediatedGame`) and the distributed one (the trivial
    three-round protocol in
    :func:`repro.dist.agreement.run_mediator_agreement`).
    """
    if n_players < 2:
        raise ValueError("Byzantine agreement needs at least two players")
    return DeterministicMediator(
        [2] + [1] * (n_players - 1),
        lambda types: (types[0],) * n_players,
    )


@dataclass(frozen=True)
class Deviation:
    """A deterministic communication-strategy deviation for one player.

    ``report_map[t]`` is the reported type when the true type is ``t``;
    ``action_map[(t, r)]`` is the action played when the true type is
    ``t`` and the mediator recommends action ``r`` to this player.
    """

    report_map: Tuple[int, ...]
    action_map: Dict[Tuple[int, int], int]

    @classmethod
    def honest(cls, num_types: int, num_actions: int) -> "Deviation":
        return cls(
            report_map=tuple(range(num_types)),
            action_map={
                (t, r): r
                for t in range(num_types)
                for r in range(num_actions)
            },
        )

    def is_honest(self) -> bool:
        return all(t == r for t, r in enumerate(self.report_map)) and all(
            action == rec for (_t, rec), action in self.action_map.items()
        )


class MediatedGame:
    """The extension Γd of a Bayesian game with a mediator.

    Evaluates expected utilities when each player uses a (possibly
    deviant) deterministic communication strategy, and checks whether the
    all-honest profile is an equilibrium / k-resilient / t-immune within
    the enumerated deviation space.
    """

    def __init__(self, game: BayesianGame, mediator: Mediator) -> None:
        self.game = game
        self.mediator = mediator

    # ------------------------------------------------------------------
    # Distributions and utilities
    # ------------------------------------------------------------------

    def action_distribution(
        self,
        types: TypeProfile,
        deviations: Optional[Dict[int, Deviation]] = None,
    ) -> Dict[ActionProfile, float]:
        """Distribution over played actions given true types.

        ``deviations`` maps player index to a :class:`Deviation`;
        unlisted players are honest.
        """
        deviations = deviations or {}
        reported = tuple(
            deviations[i].report_map[types[i]] if i in deviations else types[i]
            for i in range(self.game.n_players)
        )
        recommendation_dist = self.mediator.recommendation_distribution(reported)
        outcome: Dict[ActionProfile, float] = {}
        for recommended, prob in recommendation_dist.items():
            played = tuple(
                deviations[i].action_map[(types[i], recommended[i])]
                if i in deviations
                else recommended[i]
                for i in range(self.game.n_players)
            )
            outcome[played] = outcome.get(played, 0.0) + prob
        return outcome

    def expected_utility(
        self,
        player: int,
        deviations: Optional[Dict[int, Deviation]] = None,
    ) -> float:
        """Ex-ante expected utility of ``player`` under the given deviations."""
        total = 0.0
        for types in self.game.type_profiles():
            p = float(self.game.prior[types])
            if p == 0.0:
                continue
            for actions, q in self.action_distribution(types, deviations).items():
                total += p * q * float(
                    self.game.payoff_table[(player, *types, *actions)]
                )
        return total

    def honest_utilities(self) -> np.ndarray:
        return np.array(
            [self.expected_utility(i) for i in range(self.game.n_players)]
        )

    # ------------------------------------------------------------------
    # Deviation enumeration
    # ------------------------------------------------------------------

    def deviation_space(self, player: int) -> Iterator[Deviation]:
        """All deterministic communication strategies of ``player``.

        Size ``|T|^|T| * |A|^(|T|*|A|)``; fine for the paper's small games.
        """
        nt = self.game.num_types[player]
        na = self.game.num_actions[player]
        keys = [(t, r) for t in range(nt) for r in range(na)]
        for report_map in itertools.product(range(nt), repeat=nt):
            for action_values in itertools.product(range(na), repeat=len(keys)):
                yield Deviation(
                    report_map=report_map,
                    action_map=dict(zip(keys, action_values)),
                )

    def is_honest_equilibrium(self, tol: float = 1e-9) -> bool:
        """No single player gains by any deterministic deviation."""
        base = self.honest_utilities()
        for player in range(self.game.n_players):
            for deviation in self.deviation_space(player):
                if deviation.is_honest():
                    continue
                value = self.expected_utility(player, {player: deviation})
                if value > base[player] + tol:
                    return False
        return True

    def is_honest_k_resilient(
        self, k: int, tol: float = 1e-9, max_coalitions: Optional[int] = None
    ) -> bool:
        """No coalition of size <= k has a joint deviation improving any member.

        This is the strong (ADGH) reading of resilience: a deviation
        counts if even one coalition member strictly gains.
        """
        base = self.honest_utilities()
        n = self.game.n_players
        checked = 0
        for size in range(1, min(k, n) + 1):
            for coalition in itertools.combinations(range(n), size):
                spaces = [list(self.deviation_space(i)) for i in coalition]
                for combo in itertools.product(*spaces):
                    if all(d.is_honest() for d in combo):
                        continue
                    deviations = dict(zip(coalition, combo))
                    for member in coalition:
                        value = self.expected_utility(member, deviations)
                        if value > base[member] + tol:
                            return False
                checked += 1
                if max_coalitions is not None and checked >= max_coalitions:
                    return True
        return True

    def is_honest_t_immune(
        self, t: int, tol: float = 1e-9, max_sets: Optional[int] = None
    ) -> bool:
        """No set of <= t deviators can *hurt* any honest player."""
        base = self.honest_utilities()
        n = self.game.n_players
        checked = 0
        for size in range(1, min(t, n) + 1):
            for deviators in itertools.combinations(range(n), size):
                spaces = [list(self.deviation_space(i)) for i in deviators]
                for combo in itertools.product(*spaces):
                    deviations = dict(zip(deviators, combo))
                    for honest in range(n):
                        if honest in deviators:
                            continue
                        value = self.expected_utility(honest, deviations)
                        if value < base[honest] - tol:
                            return False
                checked += 1
                if max_sets is not None and checked >= max_sets:
                    return True
        return True

    def is_honest_robust(
        self, k: int, t: int, tol: float = 1e-9
    ) -> bool:
        """(k,t)-robustness of the honest profile within Γd.

        Combines resilience against coalitions of size <= k with immunity
        against <= t arbitrary deviators, the paper's Definition (a Nash
        equilibrium is exactly a (1,0)-robust equilibrium).
        """
        return self.is_honest_k_resilient(k, tol=tol) and self.is_honest_t_immune(
            t, tol=tol
        )
