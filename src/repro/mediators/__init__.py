"""Mediators, mediated games, and cheap-talk implementation.

Section 2's central move: a (k,t)-robust equilibrium may not exist in the
underlying game Γ, but can exist in the extension Γd where players may
talk to a trusted mediator; the ADGH theorems say when Γd's equilibrium
can instead be achieved by "cheap talk" among the players (extension
ΓCT).  This package provides all three layers:

* :mod:`repro.mediators.base` — :class:`Mediator` objects (type-dependent
  recommendation tables) and :class:`MediatedGame` (Γd), including
  deviation enumeration to verify honesty is an equilibrium.
* :mod:`repro.mediators.cheap_talk` — ΓCT: a concrete cheap-talk protocol
  implementing a mediator via Shamir sharing + BGW evaluation + robust
  reconstruction, together with the distribution-equality check that
  defines "implements".
* :mod:`repro.mediators.punishment` — (k+t)-punishment strategies and
  their detection/trigger logic.
"""

from repro.mediators.base import (
    DeterministicMediator,
    Mediator,
    MediatedGame,
    TableMediator,
    byzantine_agreement_mediator,
)
from repro.mediators.cheap_talk import (
    CheapTalkResult,
    CheapTalkSimulation,
    distributions_match,
)
from repro.mediators.rational_secret_sharing import (
    RandomizedRSSProtocol,
    RSSUtilities,
    honest_equilibrium_alpha_bound,
    naive_protocol_is_equilibrium,
)
from repro.mediators.punishment import (
    PunishmentSpec,
    has_punishment_strategy,
    minmax_punishment,
)

__all__ = [
    "CheapTalkResult",
    "CheapTalkSimulation",
    "DeterministicMediator",
    "MediatedGame",
    "Mediator",
    "PunishmentSpec",
    "RSSUtilities",
    "RandomizedRSSProtocol",
    "TableMediator",
    "byzantine_agreement_mediator",
    "distributions_match",
    "has_punishment_strategy",
    "honest_equilibrium_alpha_bound",
    "naive_protocol_is_equilibrium",
    "minmax_punishment",
]
