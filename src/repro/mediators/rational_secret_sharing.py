"""Rational secret sharing (Halpern–Teague 2004), cited in Section 2.

Setting: a dealer has Shamir-shared a secret among ``n`` rational agents
with threshold ``t`` (any ``t+1`` shares reconstruct).  Agents have the
utilities Halpern–Teague assume:

1. each agent prefers outcomes where they learn the secret, and
2. among those, prefers outcomes where *fewer* other agents learn it.

The **naive protocol** — everyone broadcasts their share in one round —
is not a Nash equilibrium: withholding your own share while receiving the
others' lets you reconstruct alone (you keep your ``t+1``-th share) while
depriving the rest, which utility (2) strictly prefers.  With
simultaneous broadcast and ``n = t+1`` participants, withholding weakly
dominates; iterated deletion leaves nobody sharing, so nobody learns.

The **Halpern–Teague randomized protocol** defeats this with test
rounds: in each iteration the dealer (or a jointly generated coin)
makes it a *real* round with probability ``alpha`` and a *fake* round
otherwise; agents cannot tell which before broadcasting.  Fake rounds
broadcast re-randomized garbage shares; an agent who withholds is caught
(the protocol aborts forever — a grim punishment), and with probability
``1 - alpha`` the round was fake, so the cheater learned nothing.
Honest participation is a Nash equilibrium iff the expected gain from
cheating in a real round is outweighed by the risk of being punished in
a fake one:

    alpha * U_alone + (1 - alpha) * U_none  <=  U_all

where ``U_alone`` is the cheater's utility when only they learn,
``U_all`` when everyone learns, ``U_none`` when nobody does.  Hence
honesty is an equilibrium iff ``alpha <= (U_all - U_none) /
(U_alone - U_none)`` — the quantitative content reproduced by the
ablation benchmark.

This module implements both protocols over the real Shamir substrate
(:mod:`repro.crypto.shamir`), an explicit deviation space (broadcast vs
withhold policies), and the equilibrium analysis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.crypto.field import PrimeField
from repro.crypto.shamir import Share, reconstruct_secret, share_secret

__all__ = [
    "RSSUtilities",
    "RSSOutcome",
    "naive_protocol_outcome",
    "naive_protocol_is_equilibrium",
    "RandomizedRSSProtocol",
    "honest_equilibrium_alpha_bound",
]


@dataclass(frozen=True)
class RSSUtilities:
    """Halpern–Teague preferences, as three calibration points.

    ``u_all``: everyone learns the secret (the honest outcome).
    ``u_alone``: only I learn it (the cheater's dream).
    ``u_none``: nobody learns it.
    Halpern–Teague require ``u_alone > u_all > u_none``.
    """

    u_all: float = 1.0
    u_alone: float = 2.0
    u_none: float = 0.0

    def __post_init__(self) -> None:
        if not self.u_alone > self.u_all > self.u_none:
            raise ValueError(
                "rational secret sharing needs u_alone > u_all > u_none"
            )

    def outcome_utility(self, i_learn: bool, others_learn: int) -> float:
        """Utility of an agent given what was learned.

        Interpolates the calibration points: learning alone is best,
        learning with everyone is ``u_all``; not learning is ``u_none``
        regardless of others (condition 1 dominates condition 2).
        """
        if not i_learn:
            return self.u_none
        if others_learn == 0:
            return self.u_alone
        return self.u_all


@dataclass
class RSSOutcome:
    """Who learned the secret in one protocol execution."""

    learned: Tuple[bool, ...]
    rounds: int
    aborted: bool
    cheater_caught: Optional[int] = None

    def utility(self, player: int, utilities: RSSUtilities) -> float:
        others = sum(
            1 for j, l in enumerate(self.learned) if l and j != player
        )
        return utilities.outcome_utility(self.learned[player], others)


# ---------------------------------------------------------------------------
# The naive one-round protocol
# ---------------------------------------------------------------------------


def naive_protocol_outcome(
    n: int,
    t: int,
    broadcast_policy: Sequence[bool],
    field: Optional[PrimeField] = None,
    secret: int = 424242,
    rng: Optional[np.random.Generator] = None,
) -> RSSOutcome:
    """One round of 'everyone broadcasts their share simultaneously'.

    ``broadcast_policy[i]`` is True if agent ``i`` sends their share.
    Agent ``i`` learns the secret iff the shares they end up holding
    (their own plus every broadcast one) number at least ``t + 1``.
    """
    if len(broadcast_policy) != n:
        raise ValueError("need one policy bit per agent")
    field = field or PrimeField()
    rng = rng if rng is not None else np.random.default_rng(0)
    shares = share_secret(field, secret, n=n, t=t, rng=rng)
    broadcasters = [i for i in range(n) if broadcast_policy[i]]
    learned = []
    for i in range(n):
        available = {i} | set(broadcasters)
        can_learn = len(available) >= t + 1
        if can_learn:
            subset = [shares[j] for j in sorted(available)][: t + 1]
            assert reconstruct_secret(field, subset) == secret
        learned.append(can_learn)
    return RSSOutcome(learned=tuple(learned), rounds=1, aborted=False)


def naive_protocol_is_equilibrium(
    n: int, t: int, utilities: Optional[RSSUtilities] = None
) -> bool:
    """Is all-broadcast a Nash equilibrium of the naive protocol?

    Checked exhaustively over unilateral withhold deviations.  For
    ``n = t + 1`` (every share needed) the answer is **no**: withholding
    keeps everyone else ignorant while the deviator still learns.
    For ``n > t + 1`` withholding does not even reduce what others learn,
    so honesty is (weakly) an equilibrium — which is why Halpern–Teague
    focus on the tight case.
    """
    utilities = utilities or RSSUtilities()
    honest = [True] * n
    base = naive_protocol_outcome(n, t, honest)
    for deviator in range(n):
        policy = list(honest)
        policy[deviator] = False
        outcome = naive_protocol_outcome(n, t, policy)
        if outcome.utility(deviator, utilities) > base.utility(
            deviator, utilities
        ) + 1e-12:
            return False
    return True


# ---------------------------------------------------------------------------
# The randomized (test-round) protocol
# ---------------------------------------------------------------------------


@dataclass
class RandomizedRSSProtocol:
    """Halpern–Teague-style randomized rational secret sharing.

    Each iteration is real with probability ``alpha``.  In a fake
    iteration the dealer distributes shares of a garbage value; agents
    broadcast whatever they were dealt.  A withholder is detected at the
    end of the iteration (shares are authenticated); upon detection the
    protocol aborts forever.  A cheater therefore gets ``u_alone`` only
    if the iteration happened to be real (probability ``alpha``) and
    ``u_none`` otherwise, while honest play eventually yields ``u_all``.

    ``run`` simulates executions; ``honest_is_equilibrium`` performs the
    exact expected-utility comparison (no sampling error).
    """

    n: int
    t: int
    alpha: float
    utilities: RSSUtilities = RSSUtilities()
    max_iterations: int = 10_000

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        if not 0 < self.t < self.n:
            raise ValueError("need 0 < t < n")

    def run(
        self,
        cheater: Optional[int] = None,
        seed: int = 0,
        secret: int = 77777,
    ) -> RSSOutcome:
        """Simulate one execution; ``cheater`` always withholds."""
        rng = np.random.default_rng(seed)
        field = PrimeField()
        for iteration in range(1, self.max_iterations + 1):
            is_real = bool(rng.random() < self.alpha)
            value = secret if is_real else int(rng.integers(field.p))
            shares = share_secret(field, value, self.n, self.t, rng=rng)
            if cheater is None:
                if is_real:
                    # Everyone broadcast; everyone reconstructs.
                    assert (
                        reconstruct_secret(field, shares[: self.t + 1])
                        == secret
                    )
                    return RSSOutcome(
                        learned=(True,) * self.n,
                        rounds=iteration,
                        aborted=False,
                    )
                continue
            # The cheater withholds this iteration.
            if is_real:
                learned = [False] * self.n
                learned[cheater] = self.n - 1 >= self.t  # others' shares + own
                return RSSOutcome(
                    learned=tuple(learned),
                    rounds=iteration,
                    aborted=True,
                    cheater_caught=cheater,
                )
            # Fake round: cheating detected, nothing leaked, abort.
            return RSSOutcome(
                learned=(False,) * self.n,
                rounds=iteration,
                aborted=True,
                cheater_caught=cheater,
            )
        return RSSOutcome(
            learned=(False,) * self.n,
            rounds=self.max_iterations,
            aborted=False,
        )

    def expected_honest_utility(self) -> float:
        """All honest: the secret is eventually revealed to everyone."""
        return self.utilities.u_all

    def expected_cheating_utility(self) -> float:
        """Always-withhold deviator: alpha-weighted gamble.

        Requires ``n - 1 >= t + 1`` shares... precisely, the cheater holds
        their own share plus the ``n - 1`` broadcast ones, so they learn
        in a real round iff ``n >= t + 1`` (always true); the others hold
        only ``n - 1`` shares *minus* the withheld one and learn iff
        ``n - 1 >= t + 1``.  For the tight case ``n = t + 1`` the others
        learn nothing — the interesting regime.
        """
        others_learn = (self.n - 1) >= (self.t + 1)
        if others_learn:
            u_real = self.utilities.u_all
        else:
            u_real = self.utilities.u_alone
        return self.alpha * u_real + (1 - self.alpha) * self.utilities.u_none

    def honest_is_equilibrium(self) -> bool:
        """Exact comparison of honest vs always-withhold utilities."""
        return (
            self.expected_cheating_utility()
            <= self.expected_honest_utility() + 1e-12
        )


def honest_equilibrium_alpha_bound(utilities: RSSUtilities) -> float:
    """The largest alpha keeping honesty an equilibrium (tight case).

    From ``alpha * u_alone + (1-alpha) * u_none <= u_all``:
    ``alpha <= (u_all - u_none) / (u_alone - u_none)``.
    """
    return (utilities.u_all - utilities.u_none) / (
        utilities.u_alone - utilities.u_none
    )
