"""Cheap-talk implementation of mediators (the extension ΓCT).

The pipeline follows the structure of the ADGH possibility proofs, which
"use techniques from secure multiparty computation":

1. **Type sharing.**  Each player Shamir-shares its type among all ``n``
   players with threshold ``t``.
2. **Joint coin.**  For randomized mediators, players run commit-then-
   reveal coin tossing (toy commitments): each contributes a random value
   in ``[0, M)``; the public coin is the sum mod ``M``.  (In the full
   ADGH construction the coin itself stays hidden; making it public is a
   documented simplification that preserves the *induced action
   distribution*, which is what "implements a mediator" quantifies.)
3. **Recommendation computation.**  For the realized coin, the mediator's
   recommendation function on the (secret-shared) encoded type profile is
   a univariate polynomial over GF(p) (Lagrange interpolation of the
   lookup table); it is evaluated on shares with BGW multiplications.
4. **Directed opening.**  Player ``i``'s recommendation wire is opened to
   player ``i`` alone.  Byzantine parties may submit corrupted shares;
   honest players decode with Berlekamp–Welch, which succeeds iff
   ``n >= t_poly + 2e + 1`` — the executable face of the paper's
   resilience thresholds.

If decoding fails, the player falls back to a designated *punishment
action* (see :mod:`repro.mediators.punishment`), mirroring the role of
punishment strategies in the ``n > 2k + 3t`` regime.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.crypto.field import Polynomial, PrimeField
from repro.crypto.shamir import Share, reconstruct_with_errors, share_secret
from repro.crypto.smpc import ArithmeticCircuit, SMPCEngine
from repro.crypto.toys import ToyCommitment
from repro.games.bayesian import BayesianGame, TypeProfile
from repro.mediators.base import ActionProfile, Mediator

__all__ = [
    "CheapTalkResult",
    "CheapTalkSimulation",
    "distributions_match",
]


@dataclass
class CheapTalkResult:
    """Outcome of one cheap-talk execution."""

    types: TypeProfile
    coin: int
    recommended: ActionProfile
    played: ActionProfile
    decode_failures: Tuple[int, ...]
    punished: bool


def _encode_type_profile(types: TypeProfile, num_types: Sequence[int]) -> int:
    """Mixed-radix encoding of a type profile as a single integer."""
    index = 0
    for t, m in zip(types, num_types):
        index = index * m + t
    return index


def _decode_action_index(
    index: int, num_actions: Sequence[int]
) -> ActionProfile:
    out = []
    for m in reversed(num_actions):
        out.append(index % m)
        index //= m
    return tuple(reversed(out))


def _encode_action_profile(
    actions: ActionProfile, num_actions: Sequence[int]
) -> int:
    index = 0
    for a, m in zip(actions, num_actions):
        index = index * m + a
    return index


class CheapTalkSimulation:
    """Simulate the cheap-talk implementation of a mediator.

    Parameters
    ----------
    game, mediator:
        The underlying Bayesian game and the mediator to implement.
    t:
        Upper bound on Byzantine parties the protocol must tolerate.
    coin_resolution:
        ``M``: mediator probabilities are quantized to multiples of
        ``1/M`` (default 64; the quantization error shows up in the
        distribution-equality tolerance).
    punishment_actions:
        Per-player fallback action when decoding fails.
    """

    def __init__(
        self,
        game: BayesianGame,
        mediator: Mediator,
        t: int,
        coin_resolution: int = 64,
        punishment_actions: Optional[Sequence[int]] = None,
        field_prime: Optional[int] = None,
    ) -> None:
        self.game = game
        self.mediator = mediator
        self.n = game.n_players
        self.t = int(t)
        if self.n < 2 * self.t + 1:
            raise ValueError(
                "the BGW evaluation step needs n >= 2t + 1 "
                f"(got n={self.n}, t={self.t})"
            )
        self.coin_resolution = int(coin_resolution)
        self.field = PrimeField(field_prime) if field_prime else PrimeField()
        self.punishment_actions = (
            tuple(punishment_actions)
            if punishment_actions is not None
            else tuple(0 for _ in range(self.n))
        )
        self._type_space = list(
            itertools.product(*(range(m) for m in game.num_types))
        )
        self._quantized = self._quantize_mediator()

    # ------------------------------------------------------------------
    # Mediator quantization: per coin value, a deterministic lookup table
    # ------------------------------------------------------------------

    def _quantize_mediator(self) -> Dict[TypeProfile, List[int]]:
        """For each type profile, a list of ``M`` recommended-action-profile
        indices such that a uniform coin reproduces the (quantized)
        mediator distribution."""
        m = self.coin_resolution
        table: Dict[TypeProfile, List[int]] = {}
        for types in self._type_space:
            dist = self.mediator.recommendation_distribution(types)
            slots: List[int] = []
            items = sorted(dist.items())
            # Largest-remainder quantization to exactly M slots.
            raw = [(profile, prob * m) for profile, prob in items]
            counts = [(profile, int(np.floor(x))) for profile, x in raw]
            remainder = m - sum(c for _, c in counts)
            fractional = sorted(
                range(len(raw)),
                key=lambda i: raw[i][1] - np.floor(raw[i][1]),
                reverse=True,
            )
            extra = set(fractional[:remainder])
            for i, (profile, count) in enumerate(counts):
                total = count + (1 if i in extra else 0)
                slots.extend(
                    [_encode_action_profile(profile, self.game.num_actions)]
                    * total
                )
            if len(slots) != m:  # pragma: no cover - defensive
                raise RuntimeError("quantization produced the wrong slot count")
            table[types] = slots
        return table

    def quantized_distribution(
        self, types: TypeProfile
    ) -> Dict[ActionProfile, float]:
        """The mediator distribution after coin quantization."""
        slots = self._quantized[types]
        out: Dict[ActionProfile, float] = {}
        for idx in slots:
            profile = _decode_action_index(idx, self.game.num_actions)
            out[profile] = out.get(profile, 0.0) + 1.0 / len(slots)
        return out

    # ------------------------------------------------------------------
    # Protocol phases
    # ------------------------------------------------------------------

    def _joint_coin(self, rng: np.random.Generator) -> int:
        """Commit-then-reveal coin tossing among the n players."""
        contributions = [
            int(rng.integers(self.coin_resolution)) for _ in range(self.n)
        ]
        nonces = [int(rng.integers(2**62)) for _ in range(self.n)]
        commitments = [
            ToyCommitment.commit(value, nonce)
            for value, nonce in zip(contributions, nonces)
        ]
        # Reveal phase: every opening must verify against its commitment.
        for commitment, value, nonce in zip(commitments, contributions, nonces):
            if not commitment.open(value, nonce):  # pragma: no cover - defensive
                raise RuntimeError("commitment verification failed")
        return sum(contributions) % self.coin_resolution

    def _recommendation_polynomial(self, coin: int, player: int) -> Polynomial:
        """Interpolate ``g(type_index) = recommended action of player``
        for the fixed public coin."""
        points: List[Tuple[int, int]] = []
        for types in self._type_space:
            index = _encode_type_profile(types, self.game.num_types)
            action_profile_index = self._quantized[types][coin]
            actions = _decode_action_index(
                action_profile_index, self.game.num_actions
            )
            points.append((index, actions[player]))
        if len(points) == 1:
            return Polynomial(self.field, [points[0][1]])
        return Polynomial.interpolate(self.field, points)

    def _build_circuit(
        self, coin: int
    ) -> Tuple[ArithmeticCircuit, List[int]]:
        """Circuit: inputs are the n type values; outputs are per-player
        recommendations, each a Horner evaluation of that player's
        interpolated polynomial at the encoded type index."""
        circuit = ArithmeticCircuit(self.field)
        type_wires = [circuit.input_wire() for _ in range(self.n)]
        # Encoded index wire: mixed-radix combination of the type wires.
        index_wire = None
        for player, wire in enumerate(type_wires):
            if index_wire is None:
                index_wire = wire
            else:
                scaled = circuit.const_mul(
                    index_wire, self.game.num_types[player]
                )
                index_wire = circuit.add(scaled, wire)
        output_wires = []
        for player in range(self.n):
            poly = self._recommendation_polynomial(coin, player)
            coeffs = poly.coeffs
            # Horner: result = (...(c_d * x + c_{d-1}) * x + ...) + c_0
            acc = None
            for c in reversed(coeffs):
                if acc is None:
                    acc = circuit.const_add(
                        circuit.const_mul(index_wire, 0), c
                    )
                else:
                    acc = circuit.const_add(circuit.mul(acc, index_wire), c)
            circuit.mark_output(acc)
            output_wires.append(acc)
        return circuit, output_wires

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_once(
        self,
        types: Optional[TypeProfile] = None,
        corrupted: Optional[Set[int]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> CheapTalkResult:
        """One execution of the cheap-talk protocol.

        ``corrupted`` parties submit uniformly random shares at the
        directed-opening phase (worst-case behaviour for the decoder is
        arbitrary wrong values; random values are as hard to correct).
        """
        rng = rng if rng is not None else np.random.default_rng()
        corrupted = set(corrupted or ())
        if len(corrupted) > self.t:
            raise ValueError(
                f"protocol is parameterized for at most t={self.t} faults"
            )
        if types is None:
            flat = self.game.prior.reshape(-1)
            choice = int(rng.choice(len(flat), p=flat / flat.sum()))
            types = self._type_space[choice]
        coin = self._joint_coin(rng)
        circuit, _ = self._build_circuit(coin)
        engine = SMPCEngine(self.field, self.n, self.t, rng=rng)
        transcript = engine.run(circuit, list(types))

        recommended_idx = self._quantized[types][coin]
        recommended = _decode_action_index(recommended_idx, self.game.num_actions)

        played: List[int] = []
        failures: List[int] = []
        for player in range(self.n):
            wire = circuit.outputs[player]
            shares = []
            for party in range(self.n):
                y = transcript.wire_shares[wire][party]
                if party in corrupted:
                    y = self.field.rand(rng)
                shares.append(Share(x=party + 1, y=y))
            decoded = self._robust_decode(shares)
            if decoded is None:
                failures.append(player)
                played.append(self.punishment_actions[player])
            else:
                action = decoded % self.game.num_actions[player]
                played.append(action)
        return CheapTalkResult(
            types=types,
            coin=coin,
            recommended=recommended,
            played=tuple(played),
            decode_failures=tuple(failures),
            punished=bool(failures),
        )

    def _robust_decode(self, shares: List[Share]) -> Optional[int]:
        """Berlekamp–Welch decode of an output wire (degree t)."""
        max_errors = (self.n - self.t - 1) // 2
        effective = min(max_errors, self.t)
        if effective < 0:
            return None
        try:
            return reconstruct_with_errors(
                self.field, shares, t=self.t, max_errors=effective
            )
        except ValueError:
            return None

    def sample_action_distribution(
        self,
        types: TypeProfile,
        n_samples: int,
        corrupted: Optional[Set[int]] = None,
        seed: int = 0,
    ) -> Dict[ActionProfile, float]:
        """Empirical distribution of played actions over protocol runs."""
        rng = np.random.default_rng(seed)
        counts: Dict[ActionProfile, int] = {}
        for _ in range(n_samples):
            result = self.run_once(types=types, corrupted=corrupted, rng=rng)
            counts[result.played] = counts.get(result.played, 0) + 1
        return {k: v / n_samples for k, v in counts.items()}

    def implements_mediator(
        self,
        n_samples: int = 400,
        tolerance: float = 0.08,
        seed: int = 0,
    ) -> bool:
        """The paper's "implements": for each type profile, the cheap-talk
        action distribution matches the mediator's (within sampling +
        quantization tolerance)."""
        for types in self._type_space:
            if float(self.game.prior[types]) == 0.0:
                continue
            empirical = self.sample_action_distribution(
                types, n_samples, seed=seed
            )
            ideal = self.quantized_distribution(types)
            if not distributions_match(empirical, ideal, tolerance):
                return False
        return True


def distributions_match(
    d1: Dict[ActionProfile, float],
    d2: Dict[ActionProfile, float],
    tolerance: float,
) -> bool:
    """Total-variation distance comparison of two finite distributions."""
    keys = set(d1) | set(d2)
    tv = 0.5 * sum(abs(d1.get(k, 0.0) - d2.get(k, 0.0)) for k in keys)
    return tv <= tolerance
