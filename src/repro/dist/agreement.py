"""Byzantine agreement: protocols, spec checker, and impossibility search.

This module executes the Section 2 claims of Halpern (PODC 2008):

* With a trusted **mediator**, Byzantine agreement is trivially solvable
  for any number of faulty players (:func:`run_mediator_agreement` —
  three rounds: general reports, mediator relays, players obey).  The
  mediator is literally a :class:`repro.mediators.base.Mediator`
  object, the same one whose honesty equilibrium in Γd is certified by
  :class:`repro.mediators.base.MediatedGame`.
* Replacing the mediator by **cheap talk** works iff ``n > 3t``:
  :func:`run_eig_agreement` is the exponential-information-gathering
  protocol (Pease–Shostak–Lamport, in Lynch/Aspnes tree form), and
  :func:`run_phase_king_agreement` the linear-message phase king
  (Berman–Garay, needs ``n > 4t``).
* The impossibility direction is made *executable*:
  :func:`search_for_disagreement` enumerates a family of adversaries
  (all two-faced scripted attacks plus seeded random Byzantine noise)
  and returns a concrete violating execution whenever ``n <= 3t`` —
  e.g. for ``(n, t) = (3, 1)`` — and nothing for ``(4, 1)``.

The BA specification itself is :func:`check_agreement`: *agreement*
(all honest outputs equal) always; *validity* (outputs equal the
general's value) only when the general is honest.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from dataclasses import replace as dataclass_replace
from functools import lru_cache
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dist.simulator import (
    Adversary,
    ByzantineRandomAdversary,
    Message,
    Network,
    NoFaultAdversary,
    Node,
    RoundTrace,
    ScriptedAdversary,
)
from repro.mediators.base import Mediator, byzantine_agreement_mediator

__all__ = [
    "AgreementOutcome",
    "EIGNode",
    "MediatorNode",
    "PhaseKingNode",
    "check_agreement",
    "run_eig_agreement",
    "run_mediator_agreement",
    "run_phase_king_agreement",
    "search_for_disagreement",
    "two_faced_script",
]


def _bit(value: Any) -> int:
    """Coerce arbitrary (possibly Byzantine) data to a valid decision bit."""
    return 1 if value == 1 else 0


# ----------------------------------------------------------------------
# The specification
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AgreementOutcome:
    """One execution's verdict against the BA specification.

    ``outputs`` holds honest nodes only; faulty nodes have no spec to
    satisfy.  ``validity`` is vacuously true when the general is faulty
    (the classical weakening that makes agreement the binding clause).
    """

    outputs: Dict[int, Optional[int]]
    general_value: int
    general_faulty: bool
    agreement: bool
    validity: bool
    rounds: int = 0
    protocol: str = ""
    trace: Tuple[RoundTrace, ...] = field(default=(), repr=False, compare=True)

    @property
    def correct(self) -> bool:
        return self.agreement and self.validity


def check_agreement(
    outputs: Dict[int, Optional[int]],
    general_value: int,
    general_faulty: bool,
    rounds: int = 0,
    protocol: str = "",
    trace: Iterable[RoundTrace] = (),
) -> AgreementOutcome:
    """Check the honest outputs against the Byzantine agreement spec."""
    values = list(outputs.values())
    agreement = all(v is not None for v in values) and len(set(values)) <= 1
    validity = bool(general_faulty) or all(v == general_value for v in values)
    return AgreementOutcome(
        outputs=dict(outputs),
        general_value=general_value,
        general_faulty=bool(general_faulty),
        agreement=agreement,
        validity=validity,
        rounds=rounds,
        protocol=protocol,
        trace=tuple(trace),
    )


def _validate_params(n: int, t: int) -> None:
    if n < 2:
        raise ValueError(f"need at least two players, got n={n}")
    if not 0 <= t < n:
        raise ValueError(f"need 0 <= t < n, got n={n}, t={t}")


# ----------------------------------------------------------------------
# EIG (exponential information gathering) cheap talk
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def _paths(n: int, length: int) -> Tuple[Tuple[int, ...], ...]:
    """All relay paths: tuples of distinct ids starting at the general."""
    if length == 1:
        return ((0,),)
    return tuple(
        path + (j,)
        for path in _paths(n, length - 1)
        for j in range(n)
        if j not in path
    )


class EIGNode(Node):
    """One player of the EIG Byzantine Generals protocol.

    The value tree is indexed by relay paths ``(0, j1, ..., jk)``
    ("``jk`` told me that ... told me the general said v").  Rounds:
    0 — the general broadcasts; ``1..t`` — everyone relays the level it
    just learned; ``t+1`` — resolve the tree bottom-up by majority
    (default 0 on ties) and decide, announcing the decision; ``t+2`` —
    collect the announcements into :attr:`peer_decisions`, each node's
    local audit record of what everyone claims to have decided (honest
    entries match :attr:`output` whenever agreement holds — asserted in
    ``tests/test_determinism.py``).  Garbage from Byzantine senders is
    coerced to bits on receipt, so arbitrary payloads are just another
    adversary value.
    """

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        t: int,
        general_value: Optional[int] = None,
        default: int = 0,
    ) -> None:
        super().__init__(node_id, n_nodes)
        self.t = t
        self.general_value = general_value
        self.default = default
        self.tree: Dict[Tuple[int, ...], int] = {}
        self.peer_decisions: Dict[int, int] = {}

    def _store_level(self, level: int, inbox: List[Message]) -> None:
        for message in inbox:
            payload = message.payload if isinstance(message.payload, dict) else {}
            if level == 1:
                expected = _paths(self.n_nodes, 1) if message.sender == 0 else ()
            else:
                expected = tuple(
                    p for p in _paths(self.n_nodes, level) if p[-1] == message.sender
                )
            for path in expected:
                self.tree[path] = _bit(payload.get(path, self.default))

    def _resolve(self, path: Tuple[int, ...]) -> int:
        if len(path) >= self.t + 1:
            return self.tree.get(path, self.default)
        children = [
            path + (j,) for j in range(self.n_nodes) if j not in path
        ]
        if not children:
            return self.tree.get(path, self.default)
        ones = sum(self._resolve(child) for child in children)
        zeros = len(children) - ones
        if ones > zeros:
            return 1
        if zeros > ones:
            return 0
        return self.default

    def step(self, round_number, inbox):
        t = self.t
        if round_number == 0:
            if self.node_id == 0:
                return self.broadcast({(0,): _bit(self.general_value)})
            return []
        if round_number <= t + 1:
            self._store_level(round_number, inbox)
            if round_number <= t:
                relay = {
                    path + (self.node_id,): self.tree.get(path, self.default)
                    for path in _paths(self.n_nodes, round_number)
                    if self.node_id not in path
                }
                return self.broadcast(relay) if relay else []
            self.output = self._resolve((0,))
            return self.broadcast(("decide", self.output))
        if round_number == t + 2:
            for message in inbox:
                payload = message.payload
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == "decide"
                ):
                    self.peer_decisions[message.sender] = _bit(payload[1])
        return []


def run_eig_agreement(
    n: int,
    t: int,
    general_value: int,
    adversary: Optional[Adversary] = None,
    record_trace: bool = False,
) -> AgreementOutcome:
    """EIG cheap-talk Byzantine agreement; correct whenever ``n > 3t``.

    ``t + 3`` rounds: the general's broadcast, ``t`` relay rounds, the
    resolve-and-announce round, and the announcement-collection round.
    Smaller ``n`` is deliberately allowed — that is how
    :func:`search_for_disagreement` exhibits the impossibility.
    """
    _validate_params(n, t)
    adversary = adversary if adversary is not None else NoFaultAdversary()
    nodes = [
        EIGNode(i, n, t, general_value if i == 0 else None) for i in range(n)
    ]
    net = Network(nodes, adversary, record_trace=record_trace)
    rounds = t + 3
    net.run(rounds)
    outputs = {
        i: nodes[i].output for i in range(n) if not adversary.is_faulty(i)
    }
    return check_agreement(
        outputs,
        general_value,
        adversary.is_faulty(0),
        rounds=rounds,
        protocol="eig",
        trace=net.trace,
    )


# ----------------------------------------------------------------------
# Phase king
# ----------------------------------------------------------------------


class PhaseKingNode(Node):
    """One player of the Berman–Garay phase king protocol (``n > 4t``).

    ``t + 1`` phases, each two rounds (preference exchange, then the
    phase's king breaks ties); kings are nodes ``0..t``, so at least one
    phase has an honest king, which locks agreement; a preference held
    by more than ``n/2 + t`` nodes can never be dislodged, which gives
    validity and persistence.
    """

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        t: int,
        general_value: Optional[int] = None,
    ) -> None:
        super().__init__(node_id, n_nodes)
        self.t = t
        self.general_value = general_value
        self.pref = 0
        self._maj = 0
        self._mult = 0

    def _read_general(self, inbox: List[Message]) -> int:
        for message in inbox:
            payload = message.payload
            if (
                message.sender == 0
                and isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "general"
            ):
                return _bit(payload[1])
        return 0

    def _count_prefs(self, phase: int, inbox: List[Message]) -> None:
        votes: Dict[int, int] = {}
        for message in inbox:
            payload = message.payload
            if (
                isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == "pref"
                and payload[1] == phase
            ):
                votes[message.sender] = _bit(payload[2])
        ones = sum(votes.values())
        zeros = self.n_nodes - ones
        self._maj = 1 if ones > zeros else 0
        self._mult = max(ones, zeros)

    def _read_king(self, phase: int, inbox: List[Message]) -> int:
        king = phase - 1
        for message in inbox:
            payload = message.payload
            if (
                message.sender == king
                and isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == "king"
                and payload[1] == phase
            ):
                return _bit(payload[2])
        return 0

    def step(self, round_number, inbox):
        n, t = self.n_nodes, self.t
        if round_number == 0:
            if self.node_id == 0:
                return self.broadcast(("general", _bit(self.general_value)))
            return []
        if round_number == 1:
            self.pref = self._read_general(inbox)
            return self.broadcast(("pref", 1, self.pref))
        last_round = 2 * (t + 1) + 1
        if round_number > last_round:
            return []
        if round_number % 2 == 0:
            phase = round_number // 2
            self._count_prefs(phase, inbox)
            if self.node_id == phase - 1:
                return self.broadcast(("king", phase, self._maj))
            return []
        phase = (round_number - 1) // 2
        king_value = self._read_king(phase, inbox)
        if 2 * self._mult > n + 2 * t:
            self.pref = self._maj
        else:
            self.pref = king_value
        if phase == t + 1:
            self.output = self.pref
            return []
        return self.broadcast(("pref", phase + 1, self.pref))


def run_phase_king_agreement(
    n: int,
    t: int,
    general_value: int,
    adversary: Optional[Adversary] = None,
    record_trace: bool = False,
) -> AgreementOutcome:
    """Phase king Byzantine agreement; correct whenever ``n > 4t``.

    Linear message size (each node sends one bit per round) against
    EIG's exponential trees — the classical trade of fault threshold
    for communication.  ``2t + 4`` rounds.
    """
    _validate_params(n, t)
    adversary = adversary if adversary is not None else NoFaultAdversary()
    nodes = [
        PhaseKingNode(i, n, t, general_value if i == 0 else None)
        for i in range(n)
    ]
    net = Network(nodes, adversary, record_trace=record_trace)
    rounds = 2 * t + 4
    net.run(rounds)
    outputs = {
        i: nodes[i].output for i in range(n) if not adversary.is_faulty(i)
    }
    return check_agreement(
        outputs,
        general_value,
        adversary.is_faulty(0),
        rounds=rounds,
        protocol="phase_king",
        trace=net.trace,
    )


# ----------------------------------------------------------------------
# The mediator protocol (routed through repro.mediators)
# ----------------------------------------------------------------------


class MediatorNode(Node):
    """A trusted node wrapping a :class:`repro.mediators.base.Mediator`.

    Reads the general's type report, asks the mediator object for the
    recommended action profile, and tells each player its own component
    — the distributed face of the Γd extension.
    """

    def __init__(
        self, node_id: int, n_nodes: int, mediator: Mediator, n_players: int
    ) -> None:
        super().__init__(node_id, n_nodes)
        self.mediator = mediator
        self.n_players = n_players

    def step(self, round_number, inbox):
        if round_number != 1:
            return []
        report = 0
        for message in inbox:
            payload = message.payload
            if (
                message.sender == 0
                and isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "report"
            ):
                report = _bit(payload[1])
        reported_types = (report,) + (0,) * (self.n_players - 1)
        distribution = self.mediator.recommendation_distribution(reported_types)
        profile = max(distribution.items(), key=lambda item: item[1])[0]
        return [
            Message(self.node_id, player, ("recommend", profile[player]))
            for player in range(self.n_players)
        ]


class _MediatedPlayerNode(Node):
    """Honest player strategy: report truthfully, obey the mediator."""

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        mediator_id: int,
        general_value: Optional[int] = None,
    ) -> None:
        super().__init__(node_id, n_nodes)
        self.mediator_id = mediator_id
        self.general_value = general_value

    def step(self, round_number, inbox):
        if round_number == 0 and self.node_id == 0:
            return self.send(
                self.mediator_id, ("report", _bit(self.general_value))
            )
        if round_number == 2:
            for message in inbox:
                payload = message.payload
                if (
                    message.sender == self.mediator_id
                    and isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == "recommend"
                ):
                    self.output = _bit(payload[1])
        return []


def run_mediator_agreement(
    n: int,
    t: int = 1,
    adversary: Optional[Adversary] = None,
    general_value: int = 1,
    record_trace: bool = False,
) -> AgreementOutcome:
    """Byzantine agreement with a trusted mediator: three rounds, always.

    Round 0 the general reports its type to the mediator; round 1 the
    mediator (a :func:`repro.mediators.base.byzantine_agreement_mediator`)
    relays the recommended action to everyone; round 2 honest players
    obey.  Honest players only listen to the mediator, so *any* number
    of faulty players is tolerated — the §2 observation that makes the
    "can cheap talk replace the mediator?" question interesting at all.
    The mediator itself (node id ``n``) cannot be corrupted.
    """
    _validate_params(n, t)
    adversary = adversary if adversary is not None else NoFaultAdversary()
    mediator_id = n
    if any(i >= n for i in adversary.faulty):
        raise ValueError(
            "the mediator is trusted by assumption: only players 0..n-1 "
            "may be corrupted"
        )
    nodes: List[Node] = [
        _MediatedPlayerNode(
            i, n + 1, mediator_id, general_value if i == 0 else None
        )
        for i in range(n)
    ]
    nodes.append(
        MediatorNode(mediator_id, n + 1, byzantine_agreement_mediator(n), n)
    )
    net = Network(nodes, adversary, record_trace=record_trace)
    net.run(3)
    outputs = {
        i: nodes[i].output for i in range(n) if not adversary.is_faulty(i)
    }
    return check_agreement(
        outputs,
        general_value,
        adversary.is_faulty(0),
        rounds=3,
        protocol="mediator",
        trace=net.trace,
    )


# ----------------------------------------------------------------------
# The impossibility side: adversary search
# ----------------------------------------------------------------------


def two_faced_script(flip_for: Iterable[int]):
    """The canonical ``t >= n/3`` attack: tell two halves two stories.

    Returns a :class:`ScriptedAdversary` script under which the faulty
    node sends its honest messages to most recipients but flips every
    decision bit in messages to the nodes in ``flip_for`` — splitting
    the honest players into two worlds that each look internally
    consistent.  Flipping recurses into structured payloads (EIG trees,
    tuples), leaving non-bit data untouched.
    """
    targets = frozenset(flip_for)

    def flip(value: Any) -> Any:
        if isinstance(value, dict):
            return {key: flip(item) for key, item in value.items()}
        if isinstance(value, tuple):
            return tuple(flip(item) for item in value)
        if isinstance(value, list):
            return [flip(item) for item in value]
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return 1 - value
        return value

    def script(node_id, round_number, honest_outbox, n_nodes):
        return [
            dataclass_replace(message, payload=flip(message.payload))
            if message.recipient in targets
            else message
            for message in honest_outbox
        ]

    return script


_PROTOCOLS = {
    "eig": run_eig_agreement,
    "phase_king": run_phase_king_agreement,
}


def search_for_disagreement(
    n: int,
    t: int,
    protocol: str = "eig",
    general_values: Sequence[int] = (0, 1),
    random_seeds: int = 10,
) -> Optional[AgreementOutcome]:
    """Search a family of adversaries for a BA specification violation.

    Candidates, per general value and per faulty coalition (the last
    ``t`` nodes, and a coalition led by the general): every two-faced
    scripted attack (one per non-empty subset of honest recipients) and
    ``random_seeds`` random Byzantine adversaries.  Returns the first
    violating :class:`AgreementOutcome`, or ``None`` if the protocol
    survives the whole family — which it provably does when the
    threshold (``n > 3t`` for EIG) holds, and provably cannot when
    ``n <= 3t``: this is Pease–Shostak–Lamport impossibility run as a
    program.
    """
    if protocol not in _PROTOCOLS:
        raise ValueError(
            f"unknown protocol {protocol!r}; choose from {sorted(_PROTOCOLS)}"
        )
    _validate_params(n, t)
    runner = _PROTOCOLS[protocol]
    faulty_sets: List[frozenset] = []
    if t > 0:
        faulty_sets.append(frozenset(range(n - t, n)))
        faulty_sets.append(frozenset({0}) | frozenset(range(n - t + 1, n)))
    for general_value in general_values:
        for faulty in faulty_sets:
            honest = [i for i in range(n) if i not in faulty]
            adversaries: List[Adversary] = []
            for size in range(1, len(honest) + 1):
                for subset in itertools.combinations(honest, size):
                    adversaries.append(
                        ScriptedAdversary(faulty, two_faced_script(subset))
                    )
            for seed in range(random_seeds):
                adversaries.append(ByzantineRandomAdversary(faulty, seed=seed))
            for adversary in adversaries:
                outcome = runner(n, t, general_value, adversary)
                if not outcome.correct:
                    return outcome
    return None
