"""repro.dist — the distributed-computing side of Halpern (PODC 2008).

The paper's thesis is that game theory and distributed computing study
the same systems with different failure lenses: game theory worries
about *rational* deviators, distributed computing about *faulty* ones.
This package supplies the distributed half of that meeting:

* :mod:`repro.dist.faults` — the shared fault/adversary abstraction
  (crash schedules, Byzantine corruption) used by both engines below.
* :mod:`repro.dist.simulator` — a synchronous, round-based
  message-passing engine with pluggable adversaries (§2's model for
  Byzantine agreement and cheap talk).
* :mod:`repro.dist.async_sim` — an event-driven asynchronous substrate
  with pluggable schedulers, Ben-Or randomized consensus, and the
  deadlocking wait-for-all strawman (§5's asynchrony agenda).
* :mod:`repro.dist.agreement` — Byzantine agreement protocols (EIG
  cheap talk, phase king, the trivial mediator protocol routed through
  :mod:`repro.mediators`), the BA spec checker, and an adversary search
  exhibiting the t >= n/3 impossibility.
"""

from repro.dist import agreement, async_sim, faults, simulator

__all__ = ["agreement", "async_sim", "faults", "simulator"]
