"""Synchronous round-based message-passing simulator.

This is the model of §2 of Halpern (PODC 2008): ``n`` processes proceed
in lockstep rounds, every pair is connected by an authenticated channel,
and up to ``t`` of them are controlled by an adversary drawn from the
hierarchy in :mod:`repro.dist.faults`.  A message sent in round ``r`` is
delivered at the start of round ``r + 1``; the network stamps the true
sender on every message, which is exactly the "private authenticated
channels" assumption under which cheap talk can replace a mediator when
``n > 3t``.

The engine is deliberately tiny — :class:`Node` subclasses implement one
``step`` method — so protocol code (:mod:`repro.dist.agreement`) reads
like the pseudocode in Aspnes' *Notes on Theory of Distributed Systems*.
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.dist.faults import (
    Adversary,
    ByzantineRandomAdversary,
    CrashAdversary,
    NoFaultAdversary,
    ScriptedAdversary,
)

__all__ = [
    "Adversary",
    "ByzantineRandomAdversary",
    "CrashAdversary",
    "Message",
    "Network",
    "NoFaultAdversary",
    "Node",
    "RoundTrace",
    "ScriptedAdversary",
]


@dataclass(frozen=True)
class Message:
    """One point-to-point message; ``sender`` is network-stamped."""

    sender: int
    recipient: int
    payload: Any


@dataclass(frozen=True)
class RoundTrace:
    """Everything that was put on the wire in one round (post-adversary)."""

    round_number: int
    sent: Tuple[Message, ...]


class Node:
    """A process in the synchronous model.

    Subclasses implement :meth:`step`, which receives the round number
    and the inbox of messages sent to this node in the previous round,
    and returns the messages to send this round.  A node announces its
    decision by setting :attr:`output`.
    """

    def __init__(self, node_id: int, n_nodes: int) -> None:
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.output: Any = None

    def step(self, round_number: int, inbox: List[Message]) -> List[Message]:
        raise NotImplementedError

    def send(self, recipient: int, payload: Any) -> List[Message]:
        return [Message(sender=self.node_id, recipient=recipient, payload=payload)]

    def broadcast(self, payload: Any) -> List[Message]:
        """Send ``payload`` to every node, including this one."""
        return [
            Message(sender=self.node_id, recipient=recipient, payload=payload)
            for recipient in range(self.n_nodes)
        ]


class Network:
    """Lockstep executor: step all nodes, corrupt faulty outboxes, deliver.

    The sender field of every outgoing message is overwritten with the
    true origin *after* adversarial corruption, so neither honest bugs
    nor Byzantine nodes can forge identities.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        adversary: Optional[Adversary] = None,
        record_trace: bool = False,
    ) -> None:
        for position, node in enumerate(nodes):
            if node.node_id != position:
                raise ValueError(
                    f"node at position {position} has id {node.node_id}; "
                    "nodes must be listed in id order"
                )
        self.nodes = list(nodes)
        self.adversary = adversary if adversary is not None else NoFaultAdversary()
        self.adversary.validate(len(self.nodes))
        self.record_trace = record_trace
        self.trace: List[RoundTrace] = []
        self.round_number = 0
        self._inboxes: List[List[Message]] = [[] for _ in self.nodes]

    # ------------------------------------------------------------------

    def _step_round(self) -> None:
        round_number = self.round_number
        inboxes = self._inboxes
        self._inboxes = [[] for _ in self.nodes]
        sent: List[Message] = []
        for node in self.nodes:
            outbox = node.step(round_number, inboxes[node.node_id]) or []
            outbox = self.adversary.corrupt_outbox(
                node.node_id, round_number, outbox, len(self.nodes)
            )
            for message in outbox:
                stamped = Message(
                    sender=node.node_id,
                    recipient=message.recipient,
                    payload=message.payload,
                )
                if 0 <= stamped.recipient < len(self.nodes):
                    self._inboxes[stamped.recipient].append(stamped)
                    sent.append(stamped)
        if self.record_trace:
            self.trace.append(RoundTrace(round_number, tuple(sent)))
        self.round_number += 1

    def step_round(self) -> "Network":
        """Advance exactly one round (deterministic single-step hook).

        The model checker (:mod:`repro.verify`) drives exploration through
        this instead of :meth:`run` so it can interleave adversary choices
        between rounds; ``run(k)`` is ``k`` calls to this method.
        """
        self._step_round()
        return self

    def fork(self) -> "Network":
        """Return an independent deep copy of this network mid-execution.

        The copy shares nothing with the original: stepping one never
        affects the other, and stepping both produces identical states —
        the fork point of the model checker's state-space exploration.
        Pickle round-trips when possible (fast path); adversaries holding
        closures (e.g. :class:`ScriptedAdversary`) fall back to
        :func:`copy.deepcopy`.
        """
        try:
            return pickle.loads(pickle.dumps(self, pickle.HIGHEST_PROTOCOL))
        except Exception:
            return copy.deepcopy(self)

    def pending_inboxes(self) -> Tuple[Tuple[Message, ...], ...]:
        """The undelivered inboxes (one tuple per node), in delivery order.

        Together with each node's internal state and :attr:`round_number`
        this is the full execution state — what :mod:`repro.verify`
        hash-conses to deduplicate the exploration frontier.
        """
        return tuple(tuple(inbox) for inbox in self._inboxes)

    def set_pending_inboxes(
        self, inboxes: Sequence[Sequence[Message]]
    ) -> None:
        """Replace the undelivered inboxes (the fork-with-override hook).

        Sibling states in :mod:`repro.verify` share their post-step node
        states and differ only in the messages in flight; the checker
        materializes a sibling as ``fork()`` plus this override instead
        of re-stepping the round under a different adversary choice.
        """
        if len(inboxes) != len(self.nodes):
            raise ValueError(
                f"expected {len(self.nodes)} inboxes, got {len(inboxes)}"
            )
        self._inboxes = [list(inbox) for inbox in inboxes]

    def run(self, n_rounds: int) -> "Network":
        for _ in range(n_rounds):
            self._step_round()
        return self

    def run_until_decided(self, max_rounds: int = 1000) -> "Network":
        """Run until every honest node has set ``output``."""
        for _ in range(max_rounds):
            self._step_round()
            if all(
                node.output is not None
                for node in self.nodes
                if not self.adversary.is_faulty(node.node_id)
            ):
                return self
        raise RuntimeError(
            f"no decision after {max_rounds} rounds; protocol may not terminate"
        )

    def honest_outputs(self) -> dict:
        return {
            node.node_id: node.output
            for node in self.nodes
            if not self.adversary.is_faulty(node.node_id)
        }
