"""Event-driven asynchronous message-passing substrate, plus Ben-Or.

§5 of Halpern (PODC 2008) puts asynchrony on the agenda: once message
delivery is at the scheduler's mercy, "what the other players are doing"
becomes genuinely unknowable, deterministic consensus dies (FLP), and
randomized protocols such as Ben-Or's take over.  This module makes the
scheduler a first-class, pluggable adversary:

* :class:`AsyncNetwork` keeps a multiset of in-flight messages; each
  event, a :class:`Scheduler` picks which one to deliver next.
  :class:`FIFOScheduler` is the benign baseline, :class:`RandomScheduler`
  a seeded oblivious adversary, :class:`StarvationScheduler` delays one
  victim for as long as any other traffic exists.
* Crash faults reuse :class:`repro.dist.faults.CrashSchedule`, with the
  tick being the global delivery counter: a node crashed at tick ``tau``
  receives nothing from then on (and a node crashed at 0 never starts).
* :class:`NaiveWaitAllNode` is the strawman that waits to hear from
  *all* ``n`` nodes — correct when nothing fails, deadlocked by a single
  crash, the cautionary tale motivating quorum-based protocols.
* :class:`BenOrNode` / :func:`run_ben_or` implement Ben-Or's randomized
  binary consensus for ``t < n/2`` crash faults, with a decide-broadcast
  so late stragglers are dragged to the common decision.

Determinism: every source of randomness (scheduler and per-node coins)
is seeded, so a fixed ``(scheduler seed, coin seed)`` pair replays an
identical execution — transcripts are comparable across runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dist.faults import CrashSchedule

__all__ = [
    "AsyncMessage",
    "AsyncNetwork",
    "AsyncNode",
    "BenOrNode",
    "BenOrResult",
    "FIFOScheduler",
    "NaiveWaitAllNode",
    "RandomScheduler",
    "Scheduler",
    "StarvationScheduler",
    "run_ben_or",
]


@dataclass(frozen=True)
class AsyncMessage:
    """One in-flight message; ``sender`` is network-stamped on send."""

    sender: int
    recipient: int
    payload: Any


class AsyncNode:
    """A process in the asynchronous model.

    ``on_start`` fires once when the network starts; ``on_message`` fires
    per delivery.  Both return the messages to inject.  A node announces
    its decision by setting :attr:`output`.
    """

    def __init__(self, node_id: int, n_nodes: int) -> None:
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.output: Any = None

    def on_start(self) -> List[AsyncMessage]:
        return []

    def on_message(self, message: AsyncMessage) -> List[AsyncMessage]:
        return []

    def broadcast(self, payload: Any) -> List[AsyncMessage]:
        """Send ``payload`` to every node, including this one."""
        return [
            AsyncMessage(sender=self.node_id, recipient=recipient, payload=payload)
            for recipient in range(self.n_nodes)
        ]


class Scheduler:
    """Picks which pending message to deliver next."""

    def select(self, pending: Sequence[AsyncMessage]) -> int:
        raise NotImplementedError


class FIFOScheduler(Scheduler):
    """Deliver messages in the order they were sent."""

    def select(self, pending):
        return 0


class RandomScheduler(Scheduler):
    """Uniformly random (but seeded, hence replayable) delivery order."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(self, pending):
        return self._rng.randrange(len(pending))


class StarvationScheduler(Scheduler):
    """Starve one victim: deliver to ``target`` only when forced to.

    While any message addressed elsewhere is pending, one of those is
    chosen (at seeded random); messages to the victim move only once no
    other traffic exists.  This is the strongest oblivious scheduler the
    fairness assumption allows — every message is still delivered
    eventually.
    """

    def __init__(self, target: int, seed: int = 0) -> None:
        self.target = target
        self._rng = random.Random(seed)

    def select(self, pending):
        others = [
            index
            for index, message in enumerate(pending)
            if message.recipient != self.target
        ]
        pool = others if others else range(len(pending))
        return pool[self._rng.randrange(len(pool))]


class AsyncNetwork:
    """Deliver pending messages one at a time, as the scheduler dictates.

    ``crashed`` maps node id to the delivery tick at which that node
    halts; tick 0 (or less) means the node never even runs ``on_start``.
    The run stops when every live node has decided, when no messages are
    pending (a potential deadlock — see :meth:`is_deadlocked`), or at
    ``max_events``.
    """

    def __init__(
        self,
        nodes: Sequence[AsyncNode],
        scheduler: Optional[Scheduler] = None,
        crashed: Optional[Dict[int, int]] = None,
    ) -> None:
        for position, node in enumerate(nodes):
            if node.node_id != position:
                raise ValueError(
                    f"node at position {position} has id {node.node_id}; "
                    "nodes must be listed in id order"
                )
        self.nodes = list(nodes)
        self.scheduler = scheduler if scheduler is not None else FIFOScheduler()
        self.crashes = CrashSchedule(crashed or {})
        self.crashes.validate(len(self.nodes))
        self.clock = 0
        self.log: List[AsyncMessage] = []
        self._pending: List[AsyncMessage] = []
        self._started = False

    # ------------------------------------------------------------------

    def _stamp(self, origin: AsyncNode, messages: Sequence[AsyncMessage]) -> None:
        for message in messages:
            stamped = AsyncMessage(
                sender=origin.node_id,
                recipient=message.recipient,
                payload=message.payload,
            )
            if 0 <= stamped.recipient < len(self.nodes):
                self._pending.append(stamped)

    def is_alive(self, node_id: int) -> bool:
        return not self.crashes.is_crashed(node_id, self.clock)

    def _all_live_decided(self) -> bool:
        return all(
            node.output is not None
            for node in self.nodes
            if self.is_alive(node.node_id)
        )

    def run(self, max_events: int = 500_000) -> "AsyncNetwork":
        if not self._started:
            self._started = True
            for node in self.nodes:
                if self.crashes.is_crashed(node.node_id, 0):
                    continue
                self._stamp(node, node.on_start() or [])
        events = 0
        while self._pending and not self._all_live_decided():
            events += 1
            if events > max_events:
                break
            index = self.scheduler.select(self._pending)
            message = self._pending.pop(index)
            alive = self.is_alive(message.recipient)
            self.clock += 1
            if not alive:
                continue
            recipient = self.nodes[message.recipient]
            self.log.append(message)
            self._stamp(recipient, recipient.on_message(message) or [])
        return self

    def is_deadlocked(self) -> bool:
        """No pending traffic, yet some live node never decided."""
        return not self._pending and any(
            node.output is None
            for node in self.nodes
            if self.is_alive(node.node_id)
        )

    def honest_outputs(self) -> Dict[int, Any]:
        """Outputs of nodes that were never scheduled to crash."""
        return {
            node.node_id: node.output
            for node in self.nodes
            if node.node_id not in self.crashes.crashed_ids()
        }


# ----------------------------------------------------------------------
# The wait-for-all strawman
# ----------------------------------------------------------------------


class NaiveWaitAllNode(AsyncNode):
    """Broadcast the input, wait to hear from *everyone*, take majority.

    Perfectly correct in a failure-free world; a single crash starves it
    forever.  This is the §5 point that synchronous intuitions ("just
    collect all the votes") are not merely slow but *wrong* under
    asynchrony with faults.
    """

    def __init__(self, node_id: int, n_nodes: int, initial: int) -> None:
        super().__init__(node_id, n_nodes)
        self.initial = 1 if initial == 1 else 0
        self.values: Dict[int, int] = {}

    def on_start(self):
        return self.broadcast(("value", self.initial))

    def on_message(self, message):
        payload = message.payload
        if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "value":
            self.values[message.sender] = 1 if payload[1] == 1 else 0
        if self.output is None and len(self.values) == self.n_nodes:
            ones = sum(self.values.values())
            self.output = 1 if 2 * ones > self.n_nodes else 0
        return []


# ----------------------------------------------------------------------
# Ben-Or randomized consensus
# ----------------------------------------------------------------------


def _bit(value: Any) -> int:
    return 1 if value == 1 else 0


class BenOrNode(AsyncNode):
    """Ben-Or (1983) binary consensus for ``t < n/2`` crash faults.

    Phase ``p``: broadcast a report ``(R, p, x)``; on ``n - t`` phase-p
    reports, propose ``v`` if ``v`` held a strict majority of all ``n``
    possible reporters, else propose "no value".  On ``n - t`` phase-p
    proposals: decide ``v`` on ``t + 1`` proposals for ``v`` (then
    broadcast ``(D, v)`` so stragglers are dragged along), adopt ``v`` on
    at least one proposal for ``v``, else flip the (seeded) local coin.
    Safety is deterministic; termination holds with probability 1.
    """

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        t: int,
        initial: int,
        rng: Optional[random.Random] = None,
    ) -> None:
        if n_nodes < 2:
            raise ValueError("Ben-Or needs at least two nodes")
        if not 0 <= t or 2 * t >= n_nodes:
            raise ValueError(
                f"Ben-Or requires t < n/2; got n={n_nodes}, t={t}"
            )
        super().__init__(node_id, n_nodes)
        self.t = t
        self.x = _bit(initial)
        self.phase = 1
        self.stage = "report"
        self.rng = rng if rng is not None else random.Random(node_id)
        self._reports: Dict[int, Dict[int, int]] = {}
        self._proposals: Dict[int, Dict[int, Optional[int]]] = {}
        self._sent_decide = False

    def on_start(self):
        return self.broadcast(("R", self.phase, self.x))

    def on_message(self, message):
        payload = message.payload
        if not isinstance(payload, tuple) or len(payload) < 2:
            return []
        kind = payload[0]
        if kind == "D":
            return self._decide(_bit(payload[1]))
        if self.output is not None or len(payload) != 3:
            return []
        phase = payload[1]
        if not isinstance(phase, int) or phase < 1:
            return []
        if kind == "R":
            self._reports.setdefault(phase, {})[message.sender] = _bit(payload[2])
        elif kind == "P":
            value = payload[2]
            self._proposals.setdefault(phase, {})[message.sender] = (
                _bit(value) if value in (0, 1) else None
            )
        else:
            return []
        return self._advance()

    def _decide(self, value: int) -> List[AsyncMessage]:
        if self.output is not None:
            return []
        self.output = value
        if self._sent_decide:
            return []
        self._sent_decide = True
        return self.broadcast(("D", value))

    def _advance(self) -> List[AsyncMessage]:
        out: List[AsyncMessage] = []
        quorum = self.n_nodes - self.t
        progressed = True
        while progressed and self.output is None:
            progressed = False
            phase = self.phase
            if self.stage == "report":
                reports = self._reports.get(phase, {})
                if len(reports) >= quorum:
                    ones = sum(reports.values())
                    zeros = len(reports) - ones
                    if 2 * ones > self.n_nodes:
                        proposal: Optional[int] = 1
                    elif 2 * zeros > self.n_nodes:
                        proposal = 0
                    else:
                        proposal = None
                    self.stage = "propose"
                    out.extend(self.broadcast(("P", phase, proposal)))
                    progressed = True
            else:
                proposals = self._proposals.get(phase, {})
                if len(proposals) >= quorum:
                    counts = {0: 0, 1: 0}
                    for value in proposals.values():
                        if value is not None:
                            counts[value] += 1
                    decided = next(
                        (v for v in (0, 1) if counts[v] > self.t), None
                    )
                    if decided is not None:
                        out.extend(self._decide(decided))
                        break
                    if counts[0] + counts[1] > 0:
                        self.x = 1 if counts[1] > 0 else 0
                    else:
                        self.x = self.rng.randint(0, 1)
                    self.phase += 1
                    self.stage = "report"
                    out.extend(self.broadcast(("R", self.phase, self.x)))
                    progressed = True
        return out


@dataclass(frozen=True)
class BenOrResult:
    """Outcome of one Ben-Or execution over the surviving nodes."""

    outputs: Dict[int, Optional[int]]
    agreement: bool
    validity: bool
    max_phase: int
    deliveries: int
    transcript: Tuple[AsyncMessage, ...] = field(default=(), repr=False)


def run_ben_or(
    n: int,
    t: int,
    inputs: Sequence[int],
    scheduler: Optional[Scheduler] = None,
    crashed: Optional[Dict[int, int]] = None,
    seed: int = 0,
    max_events: int = 500_000,
) -> BenOrResult:
    """Run Ben-Or consensus and check agreement/validity over survivors.

    ``seed`` derives every node's local coin, and the scheduler carries
    its own seed, so identical arguments replay identical transcripts.
    Nodes scheduled to crash (at any tick) are excluded from ``outputs``.
    """
    if len(inputs) != n:
        raise ValueError(
            f"expected {n} inputs, got {len(inputs)}"
        )
    nodes = [
        BenOrNode(
            i, n, t, inputs[i], rng=random.Random(1_000_003 * (seed or 0) + i)
        )
        for i in range(n)
    ]
    net = AsyncNetwork(nodes, scheduler, crashed=crashed)
    net.run(max_events)
    crashed_ids = net.crashes.crashed_ids()
    outputs = {
        i: nodes[i].output for i in range(n) if i not in crashed_ids
    }
    values = list(outputs.values())
    agreement = all(v is not None for v in values) and len(set(values)) <= 1
    unanimous = len(set(_bit(v) for v in inputs)) == 1
    validity = (not unanimous) or all(v == _bit(inputs[0]) for v in values)
    return BenOrResult(
        outputs=outputs,
        agreement=agreement,
        validity=validity,
        max_phase=max(node.phase for node in nodes),
        deliveries=len(net.log),
        transcript=tuple(net.log),
    )
