"""Fault models shared by the synchronous and asynchronous engines.

Halpern (PODC 2008, §2) frames robustness as tolerating two kinds of
misbehaviour at once: coalitions of *rational* deviators and up to ``t``
players who are simply *faulty* — "whether because they have unexpected
utilities, they make mistakes, or they are controlled by an adversary".
This module is the single place where "faulty" is given operational
meaning, so the round-based simulator (:mod:`repro.dist.simulator`) and
the event-driven substrate (:mod:`repro.dist.async_sim`) agree on it:

* :class:`Adversary` — controls a fixed set of faulty nodes and rewrites
  their outgoing traffic; subclasses realize the classical hierarchy
  (no fault < crash < Byzantine).
* :class:`CrashSchedule` — per-node crash times measured in engine
  ticks (rounds for the synchronous engine, delivery events for the
  asynchronous one), so a "crash fault" is the same object in both
  worlds.

The network, not the adversary, stamps the true sender on every
message: channels are authenticated, which is the standing assumption
behind the paper's cheap-talk results.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "Adversary",
    "ByzantineRandomAdversary",
    "CrashAdversary",
    "CrashSchedule",
    "NoFaultAdversary",
    "ScriptedAdversary",
]


class CrashSchedule:
    """Per-node crash times in engine-specific ticks.

    A node with crash time ``tau`` behaves correctly at ticks
    ``0 .. tau-1`` and is silent/dead from tick ``tau`` on.  ``tau <= 0``
    means the node was dead on arrival.
    """

    def __init__(self, times: Optional[Mapping[int, int]] = None) -> None:
        self.times: Dict[int, int] = dict(times or {})

    def is_crashed(self, node_id: int, tick: int) -> bool:
        tau = self.times.get(node_id)
        return tau is not None and tick >= tau

    def crashed_ids(self) -> frozenset:
        return frozenset(self.times)

    def validate(self, n_nodes: int) -> None:
        unknown = {i for i in self.times if not 0 <= i < n_nodes}
        if unknown:
            raise ValueError(
                f"crash schedule names unknown nodes {sorted(unknown)} "
                f"(network has {n_nodes})"
            )


class Adversary:
    """Base class: controls ``faulty`` and rewrites their outboxes.

    ``corrupt_outbox`` is called by the network for *every* node each
    round; for honest nodes it is the identity.  Subclasses override
    :meth:`_corrupt`, which only sees faulty nodes' traffic.
    """

    def __init__(self, faulty: Iterable[int] = ()) -> None:
        self.faulty = frozenset(faulty)

    def is_faulty(self, node_id: int) -> bool:
        return node_id in self.faulty

    def validate(self, n_nodes: int) -> None:
        unknown = {i for i in self.faulty if not 0 <= i < n_nodes}
        if unknown:
            raise ValueError(
                f"adversary controls unknown nodes {sorted(unknown)} "
                f"(network has {n_nodes})"
            )

    def corrupt_outbox(
        self,
        node_id: int,
        round_number: int,
        outbox: Sequence[Any],
        n_nodes: int,
    ) -> List[Any]:
        if not self.is_faulty(node_id):
            return list(outbox)
        return self._corrupt(node_id, round_number, list(outbox), n_nodes)

    def _corrupt(
        self,
        node_id: int,
        round_number: int,
        outbox: List[Any],
        n_nodes: int,
    ) -> List[Any]:
        return outbox


class NoFaultAdversary(Adversary):
    """Every node is honest; corruption is the identity."""

    def __init__(self) -> None:
        super().__init__(())


class CrashAdversary(Adversary):
    """Fail-stop faults: a node falls silent at its crash round.

    ``crash_round[i]`` (default 0) is the first round whose messages are
    lost.  In exactly that round, ``partial_reach[i]`` (default 0) of the
    outbox survives: messages to recipients ``< partial_reach[i]`` are
    still delivered, modelling a node that dies mid-broadcast — the
    classical reason crash consensus needs multiple rounds.
    """

    def __init__(
        self,
        faulty: Iterable[int],
        crash_round: Optional[Mapping[int, int]] = None,
        partial_reach: Optional[Mapping[int, int]] = None,
    ) -> None:
        super().__init__(faulty)
        self.crash_round = {i: 0 for i in self.faulty}
        self.crash_round.update(crash_round or {})
        self.partial_reach = dict(partial_reach or {})

    def _corrupt(self, node_id, round_number, outbox, n_nodes):
        crash = self.crash_round.get(node_id, 0)
        if round_number < crash:
            return outbox
        if round_number == crash:
            reach = self.partial_reach.get(node_id, 0)
            return [m for m in outbox if m.recipient < reach]
        return []


def _garble(payload: Any, rng: random.Random) -> Any:
    """Randomly rewrite a payload while keeping its rough shape."""
    if isinstance(payload, dict):
        return {key: rng.randint(0, 1) for key in payload}
    if isinstance(payload, tuple):
        return tuple(
            rng.randint(0, 1) if isinstance(x, int) else x for x in payload
        )
    return rng.randint(0, 1)


class ByzantineRandomAdversary(Adversary):
    """Byzantine nodes that emit deterministic pseudo-random garbage.

    Per message, the adversary keeps it, rewrites the payload with random
    bits (shape-preserving when the payload is structured), replaces it
    with a bare random bit, or drops it.  All choices come from one
    ``random.Random(seed)`` stream, so a fixed seed gives a fixed attack
    — which is what lets :func:`repro.dist.agreement.search_for_disagreement`
    treat each seed as one candidate adversary.
    """

    def __init__(self, faulty: Iterable[int], seed: int = 0) -> None:
        super().__init__(faulty)
        self.seed = seed
        self._rng = random.Random(seed)

    def _corrupt(self, node_id, round_number, outbox, n_nodes):
        corrupted = []
        for message in outbox:
            roll = self._rng.random()
            if roll < 0.25:
                corrupted.append(message)
            elif roll < 0.55:
                corrupted.append(
                    replace(message, payload=_garble(message.payload, self._rng))
                )
            elif roll < 0.85:
                corrupted.append(replace(message, payload=self._rng.randint(0, 1)))
            # else: drop the message (silence looks like a crash).
        return corrupted


Script = Callable[[int, int, List[Any], int], List[Any]]


class ScriptedAdversary(Adversary):
    """Fully scripted Byzantine behaviour.

    ``script(node_id, round_number, honest_outbox, n_nodes)`` returns the
    messages the faulty node actually sends.  The network re-stamps the
    sender afterwards, so even a scripted adversary cannot forge
    identities — it can only lie about content.
    """

    def __init__(self, faulty: Iterable[int], script: Script) -> None:
        super().__init__(faulty)
        self.script = script

    def _corrupt(self, node_id, round_number, outbox, n_nodes):
        return list(self.script(node_id, round_number, outbox, n_nodes))
