"""Replicator dynamics (discrete-time) for evolutionary analysis.

Two variants:

* :func:`replicator_dynamics` — single-population dynamics on a symmetric
  2-player game; the state is one mixture over the action set.
* :func:`multi_population_replicator` — one population per player role of
  an arbitrary n-player game.
* :func:`replicator_dynamics_batch` — batched replay: many independent
  single-population runs advanced in lockstep with ``(runs, actions)``
  matrix products (the experiment runner's entry point for basin-of-
  attraction sweeps).

Fixed points of the dynamics interior to the simplex are Nash equilibria;
the tournament/evolution experiments (E13) build on this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.games.normal_form import MixedProfile, NormalFormGame

__all__ = [
    "ReplicatorResult",
    "BatchReplicatorResult",
    "replicator_dynamics",
    "replicator_dynamics_batch",
    "multi_population_replicator",
]


@dataclass
class ReplicatorResult:
    """Trajectory and terminal state of a replicator run."""

    trajectory: List[MixedProfile]
    final: MixedProfile
    converged: bool
    iterations: int


def _step_population(
    fitness: np.ndarray, population: np.ndarray, step: float
) -> np.ndarray:
    """One discrete replicator step: growth proportional to excess fitness."""
    average = float(fitness @ population)
    # Shift fitness to be positive so the multiplicative update is valid.
    shifted = fitness - fitness.min() + 1e-9
    shifted_avg = float(shifted @ population)
    updated = population * (
        (1.0 - step) + step * shifted / max(shifted_avg, 1e-12)
    )
    del average
    updated = np.clip(updated, 0.0, None)
    total = updated.sum()
    if total <= 0:
        raise RuntimeError("replicator population collapsed")
    return updated / total


def replicator_dynamics(
    game: NormalFormGame,
    initial: Optional[Sequence[float]] = None,
    iterations: int = 10_000,
    step: float = 0.1,
    tol: float = 1e-10,
    record_every: int = 100,
) -> ReplicatorResult:
    """Single-population replicator dynamics on a symmetric 2-player game."""
    if game.n_players != 2 or not game.is_symmetric():
        raise ValueError("single-population replicator needs a symmetric game")
    m = game.num_actions[0]
    state = (
        np.full(m, 1.0 / m)
        if initial is None
        else np.asarray(initial, dtype=float)
    )
    if state.shape != (m,) or abs(state.sum() - 1.0) > 1e-6 or np.any(state < 0):
        raise ValueError("initial state must be a distribution over actions")
    a = game.payoffs[0]
    trajectory: List[MixedProfile] = [[state.copy(), state.copy()]]
    converged = False
    done = iterations
    for it in range(iterations):
        fitness = a @ state
        new_state = _step_population(fitness, state, step)
        if np.max(np.abs(new_state - state)) < tol:
            state = new_state
            converged = True
            done = it + 1
            break
        state = new_state
        if (it + 1) % record_every == 0:
            trajectory.append([state.copy(), state.copy()])
    trajectory.append([state.copy(), state.copy()])
    return ReplicatorResult(
        trajectory=trajectory,
        final=[state.copy(), state.copy()],
        converged=converged,
        iterations=done,
    )


@dataclass
class BatchReplicatorResult:
    """Terminal states of a batch of single-population replicator runs."""

    finals: np.ndarray  # (runs, actions) terminal mixtures
    converged: np.ndarray  # (runs,) bool
    iterations: np.ndarray  # (runs,) steps taken until convergence (or cap)

    @property
    def n_runs(self) -> int:
        """Number of runs in the batch."""
        return int(self.finals.shape[0])

    def final_profile(self, run: int) -> MixedProfile:
        """Run ``run``'s terminal state as a symmetric 2-player mixed profile."""
        state = self.finals[run].copy()
        return [state, state.copy()]


def replicator_dynamics_batch(
    game: NormalFormGame,
    initials: Sequence[Sequence[float]],
    iterations: int = 10_000,
    step: float = 0.1,
    tol: float = 1e-10,
) -> BatchReplicatorResult:
    """Advance many single-population replicator runs in lockstep.

    ``initials`` is a ``(runs, actions)`` array of starting mixtures on a
    symmetric 2-player game.  Each iteration updates every still-active
    run with one ``(runs, actions)`` matrix product; a run freezes once
    its update moves it by less than ``tol`` in sup norm.  Per-run
    results match :func:`replicator_dynamics` up to floating-point
    reduction order.
    """
    if game.n_players != 2 or not game.is_symmetric():
        raise ValueError("single-population replicator needs a symmetric game")
    m = game.num_actions[0]
    states = np.array(initials, dtype=float)
    if states.ndim != 2 or states.shape[1] != m:
        raise ValueError(f"initials must have shape (runs, {m})")
    if np.any(states < 0) or np.any(np.abs(states.sum(axis=1) - 1.0) > 1e-6):
        raise ValueError("every initial state must be a distribution over actions")
    n_runs = states.shape[0]
    a = game.payoffs[0]
    converged = np.zeros(n_runs, dtype=bool)
    done = np.full(n_runs, iterations)
    for it in range(iterations):
        active = ~converged
        if not active.any():
            break
        fitness = states[active] @ a.T
        shifted = fitness - fitness.min(axis=1, keepdims=True) + 1e-9
        shifted_avg = np.einsum("ij,ij->i", shifted, states[active])
        updated = states[active] * (
            (1.0 - step)
            + step * shifted / np.maximum(shifted_avg, 1e-12)[:, None]
        )
        updated = np.clip(updated, 0.0, None)
        totals = updated.sum(axis=1)
        if np.any(totals <= 0):
            raise RuntimeError("replicator population collapsed")
        updated /= totals[:, None]
        delta = np.max(np.abs(updated - states[active]), axis=1)
        newly = delta < tol
        states[active] = updated
        idx = np.flatnonzero(active)[newly]
        converged[idx] = True
        done[idx] = it + 1
    return BatchReplicatorResult(
        finals=states, converged=converged, iterations=done
    )


def multi_population_replicator(
    game: NormalFormGame,
    initial: Optional[MixedProfile] = None,
    iterations: int = 10_000,
    step: float = 0.1,
    tol: float = 1e-10,
    record_every: int = 100,
) -> ReplicatorResult:
    """One population per player role; asymmetric games supported."""
    if initial is None:
        profile = game.uniform_profile()
    else:
        profile = [np.asarray(v, dtype=float).copy() for v in initial]
        game.validate_profile(profile)
    trajectory: List[MixedProfile] = [[v.copy() for v in profile]]
    converged = False
    done = iterations
    for it in range(iterations):
        new_profile = []
        for player in range(game.n_players):
            fitness = game.payoff_against(player, profile)
            new_profile.append(
                _step_population(fitness, profile[player], step)
            )
        delta = max(
            float(np.max(np.abs(a - b)))
            for a, b in zip(new_profile, profile)
        )
        profile = new_profile
        if delta < tol:
            converged = True
            done = it + 1
            break
        if (it + 1) % record_every == 0:
            trajectory.append([v.copy() for v in profile])
    trajectory.append([v.copy() for v in profile])
    return ReplicatorResult(
        trajectory=trajectory,
        final=[v.copy() for v in profile],
        converged=converged,
        iterations=done,
    )
