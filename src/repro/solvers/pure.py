"""Pure-strategy equilibrium computation for n-player games."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.games.normal_form import (
    NormalFormGame,
    PureProfile,
    profile_as_mixed,
    pure_profiles,
)

__all__ = ["pure_equilibria", "epsilon_pure_equilibria", "best_response_dynamics"]


def pure_equilibria(game: NormalFormGame, tol: float = 1e-9) -> List[PureProfile]:
    """All pure Nash equilibria (exhaustive over pure profiles)."""
    return game.pure_nash_equilibria(tol=tol)


def epsilon_pure_equilibria(
    game: NormalFormGame, epsilon: float
) -> List[PureProfile]:
    """All pure profiles from which no player gains more than ``epsilon``."""
    out = []
    for profile in pure_profiles(game.num_actions):
        mixed = profile_as_mixed(profile, game.num_actions)
        if game.max_regret(mixed) <= epsilon:
            out.append(profile)
    return out


def best_response_dynamics(
    game: NormalFormGame,
    start: Optional[PureProfile] = None,
    max_iterations: int = 10_000,
    tol: float = 1e-9,
) -> Tuple[Optional[PureProfile], List[PureProfile]]:
    """Sequential better-reply dynamics from ``start``.

    Players are scanned round-robin; the first player with a strictly
    improving deviation switches to a best response.  Converges on games
    with the finite improvement property (e.g. potential games); returns
    ``(equilibrium_or_None, trajectory)``.
    """
    profile: PureProfile = start if start is not None else (0,) * game.n_players
    if len(profile) != game.n_players:
        raise ValueError("start profile has the wrong arity")
    trajectory = [profile]
    for _ in range(max_iterations):
        improved = False
        for player in range(game.n_players):
            mixed = profile_as_mixed(profile, game.num_actions)
            current = game.expected_payoff(player, mixed)
            values = game.payoff_against(player, mixed)
            best_action = int(values.argmax())
            if values[best_action] > current + tol:
                profile = (
                    profile[:player] + (best_action,) + profile[player + 1 :]
                )
                trajectory.append(profile)
                improved = True
                break
        if not improved:
            return profile, trajectory
    return None, trajectory
