"""Lemke–Howson complementary pivoting for bimatrix games.

Uses integer pivoting on a pair of tableaux, following the classical
algorithm: labels ``0..m-1`` are the row player's actions, labels
``m..m+n-1`` the column player's.  Starting from the artificial
equilibrium, dropping an initial label and alternating pivots between the
two tableaux until the dropped label reappears yields a Nash equilibrium.

Guaranteed to terminate on nondegenerate games; a ``max_iterations`` guard
handles degenerate cycling by raising ``RuntimeError``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.games.normal_form import MixedProfile, NormalFormGame

__all__ = ["lemke_howson", "lemke_howson_all"]


def _non_basic_variables(tableau: np.ndarray) -> Set[int]:
    """Labels currently out of the basis (columns with != 1 nonzero entry)."""
    columns = tableau[:, :-1].T
    return {
        i
        for i, col in enumerate(columns)
        if np.count_nonzero(col) != 1 or col.max() <= 0
    }


def _pivot(tableau: np.ndarray, column: int) -> Set[int]:
    """Integer-pivot ``tableau`` bringing ``column`` into the basis.

    Returns the set of labels that left the basis (singleton for
    nondegenerate steps).
    """
    original = _non_basic_variables(tableau)
    ratios = []
    for row in range(tableau.shape[0]):
        coef = tableau[row, column]
        if coef > 0:
            ratios.append((tableau[row, -1] / coef, row))
    if not ratios:
        raise RuntimeError("unbounded pivot; malformed tableau")
    pivot_row = min(ratios)[1]
    pivot_value = tableau[pivot_row, column]
    for row in range(tableau.shape[0]):
        if row == pivot_row:
            continue
        tableau[row, :] = (
            tableau[row, :] * pivot_value
            - tableau[pivot_row, :] * tableau[row, column]
        )
    # Keep numbers from exploding: divide each row by its gcd-like scale.
    for row in range(tableau.shape[0]):
        scale = np.max(np.abs(tableau[row, :]))
        if scale > 1e12:
            tableau[row, :] /= scale
    return _non_basic_variables(tableau) - original


def _tableau_to_strategy(
    tableau: np.ndarray, own_labels: range
) -> np.ndarray:
    """Read a strategy off a tableau's basic variables."""
    basic = set(range(tableau.shape[1] - 1)) - _non_basic_variables(tableau)
    vertex = np.zeros(len(own_labels))
    for idx, label in enumerate(own_labels):
        if label in basic:
            col = tableau[:, label]
            row = int(np.flatnonzero(col)[0])
            vertex[idx] = tableau[row, -1] / tableau[row, label]
    total = vertex.sum()
    if total <= 0:
        raise RuntimeError("degenerate tableau produced the zero vertex")
    return vertex / total


def lemke_howson(
    game: NormalFormGame,
    initial_dropped_label: int = 0,
    max_iterations: int = 10_000,
) -> MixedProfile:
    """One Nash equilibrium of a 2-player game via Lemke–Howson.

    ``initial_dropped_label`` selects the path (0..m+n-1); different labels
    can reach different equilibria.
    """
    if game.n_players != 2:
        raise ValueError("Lemke-Howson requires a 2-player game")
    a = game.payoffs[0].copy()
    b = game.payoffs[1].copy()
    m, n = a.shape
    if not 0 <= initial_dropped_label < m + n:
        raise ValueError("initial_dropped_label out of range")
    # Make payoffs strictly positive (equilibria are shift-invariant).
    shift = 1.0 - min(a.min(), b.min())
    a = a + shift
    b = b + shift

    # Column player's tableau: rows indexed by column strategies.
    # Columns: [row-strategy labels 0..m-1 | slacks m..m+n-1 | RHS].
    col_tableau = np.concatenate(
        [b.T, np.eye(n), np.ones((n, 1))], axis=1
    ).astype(float)
    # Row player's tableau: rows indexed by row strategies.
    row_tableau = np.concatenate(
        [np.eye(m), a, np.ones((m, 1))], axis=1
    ).astype(float)

    if initial_dropped_label < m:
        entering, tableau = initial_dropped_label, col_tableau
    else:
        entering, tableau = initial_dropped_label, row_tableau

    full_labels = set(range(m + n))
    current = entering
    for _ in range(max_iterations):
        dropped = _pivot(tableau, current)
        if not dropped:
            raise RuntimeError("pivot dropped no label (degenerate game)")
        current = min(dropped)
        if current == initial_dropped_label:
            break
        tableau = row_tableau if tableau is col_tableau else col_tableau
    else:
        raise RuntimeError("Lemke-Howson did not terminate (cycling)")
    del full_labels

    row_strategy = _tableau_to_strategy(col_tableau, range(0, m))
    col_strategy = _tableau_to_strategy(row_tableau, range(m, m + n))
    profile = [row_strategy, col_strategy]
    # Without lexicographic tie-breaking, degenerate games can terminate at
    # a non-equilibrium vertex; fail honestly rather than return it.
    if not game.is_nash(profile, tol=1e-6):
        raise RuntimeError(
            "Lemke-Howson terminated at a non-equilibrium point (the game "
            "is degenerate); use support_enumeration instead"
        )
    return profile


def lemke_howson_all(
    game: NormalFormGame, tol: float = 1e-7
) -> List[MixedProfile]:
    """Run Lemke–Howson from every initial label; deduplicate the results.

    Not guaranteed to find *all* equilibria, but cheap and often complete
    for small games.
    """
    if game.n_players != 2:
        raise ValueError("Lemke-Howson requires a 2-player game")
    m, n = game.num_actions
    found: List[MixedProfile] = []
    for label in range(m + n):
        try:
            profile = lemke_howson(game, initial_dropped_label=label)
        except RuntimeError:
            continue
        if not game.is_nash(profile, tol=1e-6):
            continue
        if not any(
            all(np.allclose(x, y, atol=tol) for x, y in zip(profile, other))
            for other in found
        ):
            found.append(profile)
    return found
