"""Fictitious play: each player best-responds to opponents' empirical play.

Converges (in empirical frequencies) for 2-player zero-sum games, 2x2
games, and potential games; the empirical mixture approximates an
equilibrium there.  Works for any number of players here (joint
independent empirical beliefs).

Two-player games take a fast path: the per-iteration best-response
values are two matrix-vector products against cached contiguous payoff
matrices, instead of generic tensor contractions.  The produced play
sequence is identical to the generic path.  :func:`fictitious_play_batch`
additionally replays many independent runs at once with the per-iteration
work batched into ``(runs, actions)`` matrix products — the experiment
runner's preferred entry point for FP sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.games.normal_form import MixedProfile, NormalFormGame

__all__ = ["FictitiousPlayResult", "fictitious_play", "fictitious_play_batch"]

_TIE_TOL = 1e-12


@dataclass
class FictitiousPlayResult:
    """Outcome of a fictitious-play run."""

    empirical: MixedProfile
    last_actions: List[int]
    iterations: int
    regret: float

    def is_approximate_nash(self, game: NormalFormGame, tol: float) -> bool:
        """Is the empirical mixture an epsilon-Nash profile (eps = ``tol``)?"""
        return game.max_regret(self.empirical) <= tol


def _choose(values: np.ndarray, tie_break: str, rng) -> int:
    """Pick a best response: lowest index or uniform among near-ties."""
    best = values.max()
    mask = values >= best - _TIE_TOL
    if tie_break == "first":
        return int(np.argmax(mask))
    return int(rng.choice(np.flatnonzero(mask)))


def _fictitious_play_two_player(
    game: NormalFormGame,
    iterations: int,
    actions: List[int],
    counts: List[np.ndarray],
    rng,
    tie_break: str,
) -> List[int]:
    """Tight 2-player loop: two matvecs per iteration, no tensordot overhead.

    Games small enough that NumPy dispatch overhead dominates a handful
    of multiply-adds run on plain Python floats instead.
    """
    c0, c1 = counts
    m0, m1 = game.num_actions
    if m0 * m1 <= 64 and tie_break == "first":
        return _fictitious_play_two_player_small(
            game, iterations, actions, c0, c1
        )
    a0 = np.ascontiguousarray(game.payoffs[0])
    a1 = np.ascontiguousarray(game.payoffs[1].T)
    for _ in range(iterations - 1):
        b0 = c0 / c0.sum()
        b1 = c1 / c1.sum()
        choice0 = _choose(a0.dot(b1), tie_break, rng)
        choice1 = _choose(a1.dot(b0), tie_break, rng)
        actions = [choice0, choice1]
        c0[choice0] += 1.0
        c1[choice1] += 1.0
    return actions


def _fictitious_play_two_player_small(
    game: NormalFormGame,
    iterations: int,
    actions: List[int],
    c0: np.ndarray,
    c1: np.ndarray,
) -> List[int]:
    """Scalar 2-player loop for small games (first tie-break only).

    Tracks unnormalized count-weighted payoffs incrementally: after the
    opponent plays action ``a``, each own action's total payoff grows by
    one payoff-table column.  Dividing by the round count recovers the
    same best-response values as the matvec path.
    """
    # cols0[j][i]: payoff of P0's action i when P1 plays j (one column of
    # payoffs[0]); cols1[i][j]: payoff of P1's action j when P0 plays i.
    cols0 = game.payoffs[0].T.tolist()
    cols1 = game.payoffs[1].tolist()
    count0 = c0.tolist()
    count1 = c1.tolist()
    m0, m1 = len(count0), len(count1)
    # Unnormalized scores: score0[i] = sum_j counts1[j] * payoff0[i][j];
    # dividing by the round count recovers the belief-expected values, so
    # comparing against best - _TIE_TOL * total matches the matvec path.
    score0 = [
        sum(cols0[j][i] * count1[j] for j in range(m1)) for i in range(m0)
    ]
    score1 = [
        sum(cols1[i][j] * count0[i] for i in range(m0)) for j in range(m1)
    ]
    choice0, choice1 = actions
    total = 1.0
    for _ in range(iterations - 1):
        slack = _TIE_TOL * total
        threshold0 = max(score0) - slack
        threshold1 = max(score1) - slack
        choice0 = next(i for i, v in enumerate(score0) if v >= threshold0)
        choice1 = next(j for j, v in enumerate(score1) if v >= threshold1)
        count0[choice0] += 1.0
        count1[choice1] += 1.0
        add0 = cols0[choice1]
        for i in range(m0):
            score0[i] += add0[i]
        add1 = cols1[choice0]
        for j in range(m1):
            score1[j] += add1[j]
        total += 1.0
    c0[:] = count0
    c1[:] = count1
    return [choice0, choice1]


def fictitious_play(
    game: NormalFormGame,
    iterations: int = 2_000,
    initial_actions: Optional[List[int]] = None,
    rng: Optional[np.random.Generator] = None,
    tie_break: str = "first",
) -> FictitiousPlayResult:
    """Run simultaneous fictitious play for ``iterations`` steps.

    ``tie_break`` is ``"first"`` (deterministic) or ``"random"``.
    """
    if tie_break not in ("first", "random"):
        raise ValueError("tie_break must be 'first' or 'random'")
    if tie_break == "random" and rng is None:
        rng = np.random.default_rng(0)
    counts = [np.zeros(m) for m in game.num_actions]
    if initial_actions is None:
        initial_actions = [0] * game.n_players
    actions = list(initial_actions)
    for player, action in enumerate(actions):
        counts[player][action] += 1.0

    if game.n_players == 2:
        actions = _fictitious_play_two_player(
            game, iterations, actions, counts, rng, tie_break
        )
    else:
        for _ in range(iterations - 1):
            beliefs = [c / c.sum() for c in counts]
            actions = [
                _choose(game.payoff_against(player, beliefs), tie_break, rng)
                for player in range(game.n_players)
            ]
            for player, action in enumerate(actions):
                counts[player][action] += 1.0

    empirical = [c / c.sum() for c in counts]
    return FictitiousPlayResult(
        empirical=empirical,
        last_actions=actions,
        iterations=iterations,
        regret=game.max_regret(empirical),
    )


def fictitious_play_batch(
    game: NormalFormGame,
    n_runs: int,
    iterations: int = 2_000,
    initial_actions: Optional[Sequence[Sequence[int]]] = None,
    rng: Optional[np.random.Generator] = None,
    tie_break: str = "first",
) -> List[FictitiousPlayResult]:
    """Replay ``n_runs`` independent fictitious-play runs, batched.

    For 2-player games every iteration updates all runs at once with two
    ``(runs, actions)`` matrix products; other games fall back to looped
    single runs.  ``initial_actions`` is an optional ``(n_runs, n_players)``
    table of starting actions (run ``r`` starts from row ``r``); with
    ``tie_break="random"`` ties are broken uniformly per run.
    """
    if tie_break not in ("first", "random"):
        raise ValueError("tie_break must be 'first' or 'random'")
    if n_runs <= 0:
        raise ValueError("n_runs must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    if initial_actions is None:
        starts = np.zeros((n_runs, game.n_players), dtype=int)
    else:
        starts = np.asarray(initial_actions, dtype=int)
        if starts.shape != (n_runs, game.n_players):
            raise ValueError(
                f"initial_actions must have shape ({n_runs}, {game.n_players})"
            )

    if game.n_players != 2:
        return [
            fictitious_play(
                game,
                iterations=iterations,
                initial_actions=list(starts[r]),
                rng=rng,
                tie_break=tie_break,
            )
            for r in range(n_runs)
        ]

    m0, m1 = game.num_actions
    a0 = np.ascontiguousarray(game.payoffs[0])
    a1 = np.ascontiguousarray(game.payoffs[1].T)
    rows = np.arange(n_runs)
    counts0 = np.zeros((n_runs, m0))
    counts1 = np.zeros((n_runs, m1))
    counts0[rows, starts[:, 0]] = 1.0
    counts1[rows, starts[:, 1]] = 1.0
    last0 = starts[:, 0].copy()
    last1 = starts[:, 1].copy()

    def batch_choose(values: np.ndarray) -> np.ndarray:
        """Per-run best response over a (runs, actions) value matrix."""
        mask = values >= values.max(axis=1, keepdims=True) - _TIE_TOL
        if tie_break == "first":
            return np.argmax(mask, axis=1)
        # Uniform among candidates: argmax of iid uniform keys on the mask.
        keys = rng.random(values.shape)
        return np.argmax(np.where(mask, keys, -1.0), axis=1)

    for it in range(iterations - 1):
        total = float(it + 1)
        values0 = (counts1 / total) @ a0.T
        values1 = (counts0 / total) @ a1.T
        last0 = batch_choose(values0)
        last1 = batch_choose(values1)
        counts0[rows, last0] += 1.0
        counts1[rows, last1] += 1.0

    results = []
    for r in range(n_runs):
        empirical = [counts0[r] / counts0[r].sum(), counts1[r] / counts1[r].sum()]
        results.append(
            FictitiousPlayResult(
                empirical=empirical,
                last_actions=[int(last0[r]), int(last1[r])],
                iterations=iterations,
                regret=game.max_regret(empirical),
            )
        )
    return results
