"""Fictitious play: each player best-responds to opponents' empirical play.

Converges (in empirical frequencies) for 2-player zero-sum games, 2x2
games, and potential games; the empirical mixture approximates an
equilibrium there.  Works for any number of players here (joint
independent empirical beliefs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.games.normal_form import MixedProfile, NormalFormGame

__all__ = ["FictitiousPlayResult", "fictitious_play"]


@dataclass
class FictitiousPlayResult:
    """Outcome of a fictitious-play run."""

    empirical: MixedProfile
    last_actions: List[int]
    iterations: int
    regret: float

    def is_approximate_nash(self, game: NormalFormGame, tol: float) -> bool:
        return game.max_regret(self.empirical) <= tol


def fictitious_play(
    game: NormalFormGame,
    iterations: int = 2_000,
    initial_actions: Optional[List[int]] = None,
    rng: Optional[np.random.Generator] = None,
    tie_break: str = "first",
) -> FictitiousPlayResult:
    """Run simultaneous fictitious play for ``iterations`` steps.

    ``tie_break`` is ``"first"`` (deterministic) or ``"random"``.
    """
    if tie_break not in ("first", "random"):
        raise ValueError("tie_break must be 'first' or 'random'")
    if tie_break == "random" and rng is None:
        rng = np.random.default_rng(0)
    counts = [np.zeros(m) for m in game.num_actions]
    if initial_actions is None:
        initial_actions = [0] * game.n_players
    actions = list(initial_actions)
    for player, action in enumerate(actions):
        counts[player][action] += 1.0

    for _ in range(iterations - 1):
        beliefs = [c / c.sum() for c in counts]
        new_actions = []
        for player in range(game.n_players):
            values = game.payoff_against(player, beliefs)
            best = values.max()
            candidates = np.flatnonzero(values >= best - 1e-12)
            if tie_break == "first":
                choice = int(candidates[0])
            else:
                choice = int(rng.choice(candidates))
            new_actions.append(choice)
        actions = new_actions
        for player, action in enumerate(actions):
            counts[player][action] += 1.0

    empirical = [c / c.sum() for c in counts]
    return FictitiousPlayResult(
        empirical=empirical,
        last_actions=actions,
        iterations=iterations,
        regret=game.max_regret(empirical),
    )
