"""Zero-sum games by linear programming (scipy's HiGHS backend).

The row player maximizes the game value ``v`` subject to every column of
the payoff matrix yielding at least ``v`` against the chosen mixture.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.optimize import linprog

from repro.games.normal_form import MixedProfile, NormalFormGame

__all__ = ["zero_sum_value", "zero_sum_equilibrium"]


def _maximin_mixture(payoff: np.ndarray) -> Tuple[np.ndarray, float]:
    """Mixture over rows of ``payoff`` maximizing the worst-case column value."""
    m, n = payoff.shape
    # Variables: x_0..x_{m-1}, v.  Maximize v == minimize -v.
    c = np.zeros(m + 1)
    c[-1] = -1.0
    # Constraints: -payoff[:, j] . x + v <= 0 for each column j.
    a_ub = np.concatenate([-payoff.T, np.ones((n, 1))], axis=1)
    b_ub = np.zeros(n)
    a_eq = np.concatenate([np.ones((1, m)), np.zeros((1, 1))], axis=1)
    b_eq = np.ones(1)
    bounds = [(0.0, None)] * m + [(None, None)]
    result = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"zero-sum LP failed: {result.message}")
    x = np.clip(result.x[:m], 0.0, None)
    x /= x.sum()
    return x, float(result.x[-1])


def zero_sum_equilibrium(
    game: NormalFormGame, tol: float = 1e-9
) -> Tuple[MixedProfile, float]:
    """Minimax equilibrium and value of a 2-player zero-sum game.

    Returns ``([x, y], value)`` where ``value`` is the row player's
    equilibrium payoff.
    """
    if game.n_players != 2:
        raise ValueError("zero-sum solver requires a 2-player game")
    if not game.is_zero_sum(tol=1e-6):
        raise ValueError("game is not zero-sum")
    a = game.payoffs[0]
    x, value = _maximin_mixture(a)
    # Column player maximizes their own payoff -A => mixture over columns of -A^T rows.
    y, _ = _maximin_mixture(-a.T)
    return [x, y], value


def zero_sum_value(game: NormalFormGame) -> float:
    """The minimax value (to the row player) of a zero-sum game."""
    return zero_sum_equilibrium(game)[1]
