"""All mixed Nash equilibria of 2-player games by support enumeration.

For each pair of equal-size supports ``(I, J)`` we solve the indifference
system: the column player's mixture over ``J`` must make every row in ``I``
equally good (and no row outside better), and symmetrically.  Complete for
nondegenerate bimatrix games; degenerate games may have equilibrium
components of which representatives are still found.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.games.normal_form import MixedProfile, NormalFormGame

__all__ = ["support_enumeration", "indifference_mixture"]


def indifference_mixture(
    payoff: np.ndarray,
    own_support: Sequence[int],
    other_support: Sequence[int],
) -> Optional[np.ndarray]:
    """Solve for the *other* player's mixture making ``own_support`` indifferent.

    ``payoff`` is this player's matrix with own actions as rows.  Returns a
    full-length probability vector over the other player's actions (support
    restricted to ``other_support``), or ``None`` if no valid solution.
    """
    own = list(own_support)
    other = list(other_support)
    k = len(own)
    if k != len(other):
        raise ValueError("supports must have equal size")
    # Unknowns: probabilities p_j for j in `other`, plus the common value v.
    # Equations: sum_j payoff[i, j] p_j - v = 0 for i in own; sum_j p_j = 1.
    a = np.zeros((k + 1, k + 1))
    b = np.zeros(k + 1)
    for row, i in enumerate(own):
        a[row, :k] = payoff[np.ix_([i], other)][0]
        a[row, k] = -1.0
    a[k, :k] = 1.0
    b[k] = 1.0
    try:
        solution = np.linalg.solve(a, b)
    except np.linalg.LinAlgError:
        return None
    probs = solution[:k]
    if np.any(probs < -1e-9):
        return None
    full = np.zeros(payoff.shape[1])
    full[other] = np.clip(probs, 0.0, None)
    total = full.sum()
    if total <= 0:
        return None
    return full / total


def _supports(n: int) -> Iterator[Tuple[int, ...]]:
    for size in range(1, n + 1):
        yield from itertools.combinations(range(n), size)


def support_enumeration(
    game: NormalFormGame, tol: float = 1e-9
) -> List[MixedProfile]:
    """Enumerate mixed Nash equilibria of a 2-player game.

    Returns a list of mixed profiles ``[x, y]``.  Duplicate equilibria
    (from degenerate supports) are removed up to ``tol``.
    """
    if game.n_players != 2:
        raise ValueError("support enumeration requires a 2-player game")
    a = game.payoffs[0]  # row player, rows are own actions
    b = game.payoffs[1].T  # column player with own actions as rows
    m, n = a.shape
    found: List[MixedProfile] = []
    for support_row in _supports(m):
        for support_col in (s for s in _supports(n) if len(s) == len(support_row)):
            y = indifference_mixture(a, support_row, support_col)
            x = indifference_mixture(b, support_col, support_row)
            if x is None or y is None:
                continue
            # supports must actually be used
            if np.any(x[list(support_row)] <= tol) or np.any(
                y[list(support_col)] <= tol
            ):
                continue
            profile = [x, y]
            if game.is_nash(profile, tol=max(tol, 1e-7)) and not _seen(
                found, profile, tol=1e-7
            ):
                found.append(profile)
    return found


def _seen(found: List[MixedProfile], profile: MixedProfile, tol: float) -> bool:
    for other in found:
        if all(
            np.allclose(a, b, atol=tol) for a, b in zip(other, profile)
        ):
            return True
    return False
