"""Iterated elimination of dominated strategies.

Both pure-by-pure dominance and domination by *mixed* strategies (checked
with a small LP) are supported.  Iterated strict dominance is
order-independent; iterated weak dominance is not, and the implementation
removes, at each round, every currently weakly dominated action
simultaneously (one standard convention, documented here so results are
reproducible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.games.normal_form import NormalFormGame

__all__ = [
    "EliminationResult",
    "iterated_strict_dominance",
    "iterated_weak_dominance",
    "mixed_dominated_actions",
]


@dataclass
class EliminationResult:
    """Result of an iterated-elimination run.

    ``kept`` maps each player to the surviving original action indices;
    ``rounds`` records, per elimination round, the (player, original
    action) pairs removed; ``reduced`` is the surviving subgame.
    """

    kept: List[List[int]]
    rounds: List[List[Tuple[int, int]]]
    reduced: NormalFormGame


def _is_mixed_dominated(
    payoff: np.ndarray, action: int, candidates: Sequence[int], strict: bool
) -> bool:
    """Is ``action`` dominated by a mixture over ``candidates``?

    ``payoff`` has this player's actions on axis 0 and one column per
    opponent profile.  Strict mixed domination is decided by the standard
    LP: find a mixture beating ``action`` by at least ``eps`` everywhere,
    maximizing ``eps``; dominated iff the optimum is positive.
    """
    others = [a for a in candidates if a != action]
    if not others:
        return False
    target = payoff[action]
    mat = payoff[others]  # (k, n_columns)
    k, n_cols = mat.shape
    # Variables: weights w_1..w_k, eps.  Maximize eps.
    c = np.zeros(k + 1)
    c[-1] = -1.0
    # Constraints: -(mat^T w) + target + eps <= 0  per column.
    a_ub = np.concatenate([-mat.T, np.ones((n_cols, 1))], axis=1)
    b_ub = -target
    a_eq = np.concatenate([np.ones((1, k)), np.zeros((1, 1))], axis=1)
    b_eq = np.ones(1)
    bounds = [(0.0, None)] * k + [(None, None)]
    result = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not result.success:
        return False
    eps = float(result.x[-1])
    if strict:
        return eps > 1e-9
    # Weak domination: need eps >= 0 achievable with strict gain somewhere.
    if eps < -1e-9:
        return False
    weights = result.x[:k]
    gains = mat.T @ weights - target
    return bool(np.all(gains >= -1e-9) and np.any(gains > 1e-9))


def mixed_dominated_actions(
    game: NormalFormGame,
    player: int,
    strict: bool = True,
    kept: Sequence[Sequence[int]] = None,
) -> List[int]:
    """Actions of ``player`` dominated by some mixed strategy.

    ``kept`` optionally restricts every player's action set first.
    """
    if kept is None:
        kept = [list(range(m)) for m in game.num_actions]
    sub = game.restrict(kept)
    local_player_actions = list(range(len(kept[player])))
    payoff = np.moveaxis(sub.payoffs[player], player, 0)
    flat = payoff.reshape(payoff.shape[0], -1)
    dominated_local = [
        a
        for a in local_player_actions
        if _is_mixed_dominated(flat, a, local_player_actions, strict)
    ]
    return [kept[player][a] for a in dominated_local]


def _iterate(
    game: NormalFormGame, strict: bool, use_mixed: bool
) -> EliminationResult:
    kept: List[List[int]] = [list(range(m)) for m in game.num_actions]
    rounds: List[List[Tuple[int, int]]] = []
    while True:
        removed_this_round: List[Tuple[int, int]] = []
        sub = game.restrict(kept)
        for player in range(game.n_players):
            if len(kept[player]) <= 1:
                continue
            if use_mixed:
                dominated = mixed_dominated_actions(
                    game, player, strict=strict, kept=kept
                )
            else:
                dominated = [
                    kept[player][a]
                    for a in sub.dominated_actions(player, strict=strict)
                ]
            for original_action in dominated:
                removed_this_round.append((player, original_action))
        if not removed_this_round:
            break
        rounds.append(removed_this_round)
        for player, original_action in removed_this_round:
            if (
                original_action in kept[player]
                and len(kept[player]) > 1
            ):
                kept[player].remove(original_action)
    return EliminationResult(kept=kept, rounds=rounds, reduced=game.restrict(kept))


def iterated_strict_dominance(
    game: NormalFormGame, use_mixed: bool = False
) -> EliminationResult:
    """Iteratively remove strictly dominated actions until none remain."""
    return _iterate(game, strict=True, use_mixed=use_mixed)


def iterated_weak_dominance(
    game: NormalFormGame, use_mixed: bool = False
) -> EliminationResult:
    """Iteratively remove weakly dominated actions (simultaneous convention)."""
    return _iterate(game, strict=False, use_mixed=use_mixed)
