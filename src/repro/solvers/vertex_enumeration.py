"""Vertex enumeration for 2-player Nash equilibria.

A third, independent algorithm (after support enumeration and
Lemke–Howson) used for cross-validation: enumerate the vertices of both
players' best-response polytopes and pair up fully-labelled vertices.

For the row player with payoff matrix ``A`` (made positive) the polytope
is ``P = {x >= 0 : B^T x <= 1}``; labels of a vertex are the binding
inequalities.  A pair of vertices ``(x, y)`` with every label of the game
covered corresponds to a Nash equilibrium after normalization.  Practical
for games up to ~6x6 actions; degenerate games may yield redundant
vertices, which are filtered by the final Nash check.
"""

from __future__ import annotations

import itertools
from typing import List, Set, Tuple

import numpy as np

from repro.games.normal_form import MixedProfile, NormalFormGame

__all__ = ["vertex_enumeration"]


def _polytope_vertices(
    halfspace_matrix: np.ndarray, n_vars: int
) -> List[Tuple[np.ndarray, Set[int]]]:
    """Vertices of {z >= 0 : M z <= 1} with their binding-label sets.

    Labels: 0..n_vars-1 are the nonnegativity constraints (z_i = 0);
    n_vars..n_vars+rows-1 are the rows of ``M`` at equality.
    """
    m_rows = halfspace_matrix.shape[0]
    constraints = np.vstack([-np.eye(n_vars), halfspace_matrix])
    rhs = np.concatenate([np.zeros(n_vars), np.ones(m_rows)])
    vertices: List[Tuple[np.ndarray, Set[int]]] = []
    for combo in itertools.combinations(range(n_vars + m_rows), n_vars):
        a = constraints[list(combo)]
        b = rhs[list(combo)]
        try:
            z = np.linalg.solve(a, b)
        except np.linalg.LinAlgError:
            continue
        satisfied = constraints @ z <= rhs + 1e-9
        if not bool(np.all(satisfied)):
            continue
        if np.allclose(z, 0.0):
            continue  # the origin is the artificial vertex
        binding = {
            label
            for label in range(n_vars + m_rows)
            if abs(constraints[label] @ z - rhs[label]) <= 1e-9
        }
        if not any(np.allclose(z, v) for v, _ in vertices):
            vertices.append((z, binding))
    return vertices


def vertex_enumeration(
    game: NormalFormGame, tol: float = 1e-7
) -> List[MixedProfile]:
    """All Nash equilibria of a nondegenerate 2-player game."""
    if game.n_players != 2:
        raise ValueError("vertex enumeration requires a 2-player game")
    a = game.payoffs[0].copy()
    b = game.payoffs[1].copy()
    m, n = a.shape
    shift = 1.0 - min(a.min(), b.min())
    a += shift
    b += shift

    # Row player's polytope: {x >= 0 : B^T x <= 1}.
    #   labels 0..m-1: x_i = 0 (row strategy i unused)
    #   labels m..m+n-1: column j is a best response.
    row_vertices = _polytope_vertices(b.T, m)
    # Column player's polytope: {y >= 0 : A y <= 1}.
    #   labels 0..n-1 map to game labels m..m+n-1 (y_j = 0)
    #   labels n..n+m-1 map to game labels 0..m-1 (row i best response).
    col_vertices = _polytope_vertices(a, n)

    full = set(range(m + n))
    found: List[MixedProfile] = []
    for x, x_labels in row_vertices:
        x_game_labels = set()
        for label in x_labels:
            x_game_labels.add(label if label < m else label)
        for y, y_labels in col_vertices:
            y_game_labels = set()
            for label in y_labels:
                if label < n:
                    y_game_labels.add(m + label)
                else:
                    y_game_labels.add(label - n)
            if x_game_labels | y_game_labels != full:
                continue
            profile = [x / x.sum(), y / y.sum()]
            if not game.is_nash(profile, tol=1e-6):
                continue
            if not any(
                all(np.allclose(p, q, atol=tol) for p, q in zip(profile, other))
                for other in found
            ):
                found.append(profile)
    return found
