"""Correlated equilibrium by linear programming.

A correlated equilibrium is a distribution over pure action profiles such
that, when a mediator draws a profile and privately recommends each player
their component, following the recommendation is optimal.  This is the
classical "mediator" solution concept; Section 2's mediated games
generalize it with robustness, so this LP doubles as the baseline the
(k,t)-robust machinery is compared against.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.games.normal_form import NormalFormGame, PureProfile, pure_profiles

__all__ = ["correlated_equilibrium", "is_correlated_equilibrium"]


def _profiles(game: NormalFormGame):
    return list(pure_profiles(game.num_actions))


def is_correlated_equilibrium(
    game: NormalFormGame,
    distribution: Dict[PureProfile, float],
    tol: float = 1e-7,
) -> bool:
    """Check the obedience constraints for a profile distribution."""
    total = sum(distribution.values())
    if abs(total - 1.0) > 1e-6 or any(p < -tol for p in distribution.values()):
        return False
    for player in range(game.n_players):
        for recommended in range(game.num_actions[player]):
            for alternative in range(game.num_actions[player]):
                if alternative == recommended:
                    continue
                gain = 0.0
                for profile, prob in distribution.items():
                    if prob <= 0 or profile[player] != recommended:
                        continue
                    deviated = (
                        profile[:player]
                        + (alternative,)
                        + profile[player + 1 :]
                    )
                    gain += prob * (
                        game.payoff(player, deviated)
                        - game.payoff(player, profile)
                    )
                if gain > tol:
                    return False
    return True


def correlated_equilibrium(
    game: NormalFormGame,
    objective: str = "welfare",
    weights: Optional[np.ndarray] = None,
) -> Dict[PureProfile, float]:
    """Compute a correlated equilibrium optimizing a linear objective.

    ``objective`` is ``"welfare"`` (maximize total payoff), ``"uniform"``
    (feasibility only; maximize entropy proxy = nothing), or ``"custom"``
    with ``weights`` giving the per-profile objective coefficients.
    """
    profiles = _profiles(game)
    index = {p: i for i, p in enumerate(profiles)}
    n_vars = len(profiles)

    rows = []
    for player in range(game.n_players):
        for recommended in range(game.num_actions[player]):
            for alternative in range(game.num_actions[player]):
                if alternative == recommended:
                    continue
                row = np.zeros(n_vars)
                for profile in profiles:
                    if profile[player] != recommended:
                        continue
                    deviated = (
                        profile[:player]
                        + (alternative,)
                        + profile[player + 1 :]
                    )
                    row[index[profile]] = game.payoff(
                        player, deviated
                    ) - game.payoff(player, profile)
                rows.append(row)
    a_ub = np.array(rows) if rows else np.zeros((0, n_vars))
    b_ub = np.zeros(a_ub.shape[0])
    a_eq = np.ones((1, n_vars))
    b_eq = np.ones(1)

    if objective == "welfare":
        c = -np.array(
            [game.payoff_vector(p).sum() for p in profiles]
        )
    elif objective == "uniform":
        c = np.zeros(n_vars)
    elif objective == "custom":
        if weights is None or len(weights) != n_vars:
            raise ValueError("custom objective needs one weight per profile")
        c = -np.asarray(weights, dtype=float)
    else:
        raise ValueError(f"unknown objective {objective!r}")

    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0.0, 1.0)] * n_vars,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"correlated-equilibrium LP failed: {result.message}")
    x = np.clip(result.x, 0.0, None)
    x /= x.sum()
    return {p: float(x[i]) for p, i in index.items() if x[i] > 1e-12}
