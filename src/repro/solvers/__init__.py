"""Equilibrium-computation substrate.

The paper repeatedly needs "compute the Nash equilibria of this small
game" as a primitive; this package provides it from scratch:

* :mod:`repro.solvers.pure` — pure-equilibrium enumeration and
  best-response dynamics for n-player games.
* :mod:`repro.solvers.support_enumeration` — all equilibria of
  nondegenerate 2-player games.
* :mod:`repro.solvers.lemke_howson` — one equilibrium of a 2-player game
  via complementary pivoting (integer pivoting, Lemke–Howson).
* :mod:`repro.solvers.zerosum` — minimax solution of zero-sum games by
  linear programming.
* :mod:`repro.solvers.dominance` — iterated elimination of dominated
  strategies (pure and mixed-domination via LP).
* :mod:`repro.solvers.fictitious_play` / :mod:`repro.solvers.replicator`
  — learning/evolutionary dynamics.
* :mod:`repro.solvers.correlated` — correlated equilibria by LP (the
  "mediator" solution concept in its classical form).
"""

from repro.solvers.pure import (
    best_response_dynamics,
    epsilon_pure_equilibria,
    pure_equilibria,
)
from repro.solvers.support_enumeration import support_enumeration
from repro.solvers.vertex_enumeration import vertex_enumeration
from repro.solvers.lemke_howson import lemke_howson, lemke_howson_all
from repro.solvers.zerosum import zero_sum_value, zero_sum_equilibrium
from repro.solvers.dominance import (
    iterated_strict_dominance,
    iterated_weak_dominance,
    mixed_dominated_actions,
)
from repro.solvers.fictitious_play import fictitious_play, fictitious_play_batch
from repro.solvers.replicator import (
    multi_population_replicator,
    replicator_dynamics,
    replicator_dynamics_batch,
)
from repro.solvers.correlated import (
    correlated_equilibrium,
    is_correlated_equilibrium,
)

__all__ = [
    "best_response_dynamics",
    "correlated_equilibrium",
    "epsilon_pure_equilibria",
    "fictitious_play",
    "fictitious_play_batch",
    "is_correlated_equilibrium",
    "iterated_strict_dominance",
    "iterated_weak_dominance",
    "lemke_howson",
    "lemke_howson_all",
    "mixed_dominated_actions",
    "multi_population_replicator",
    "pure_equilibria",
    "replicator_dynamics",
    "replicator_dynamics_batch",
    "support_enumeration",
    "vertex_enumeration",
    "zero_sum_equilibrium",
    "zero_sum_value",
]
