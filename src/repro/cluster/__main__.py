"""Command-line entry point: ``python -m repro.cluster``.

Subcommands::

    coordinator  run the HTTP service with the cluster scheduler enabled
    replica      run one consensus replica of the replicated control plane
    worker       run one worker process against a coordinator URL
    submit       submit a cluster-executed sweep and optionally wait

Examples::

    python -m repro.cluster coordinator --port 8642 --cache-dir .cache
    python -m repro.cluster replica --port 8651 --data-dir .r1 \\
        --peers http://127.0.0.1:8652,http://127.0.0.1:8653
    python -m repro.cluster worker --url http://127.0.0.1:8642 \\
        --cache-dir .worker-cache --idle-timeout 120
    python -m repro.cluster worker \\
        --url http://127.0.0.1:8651,http://127.0.0.1:8652,http://127.0.0.1:8653
    python -m repro.cluster worker --url http://127.0.0.1:8642 \\
        --fault byzantine --fault-seed 0
    python -m repro.cluster submit --scenario coordination_robustness \\
        --redundancy 3 --wait

``worker`` and ``submit`` accept a comma-separated ``--url`` list; the
client fails over between endpoints and chases leader hints, so a sweep
keeps running while individual replicas crash.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.replica import Replica
from repro.cluster.worker import Worker
from repro.dist.faults import ByzantineRandomAdversary, CrashAdversary
from repro.experiments.results import format_table
from repro.service.aserver import aserve_forever
from repro.service.client import ServiceClient
from repro.service.store import ResultStore


def _add_url(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--url`` option of the client subcommands."""
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8642",
        help=(
            "coordinator base URL, or a comma-separated replica list "
            "(default: http://127.0.0.1:8642)"
        ),
    )


def _add_watch(parser: argparse.ArgumentParser) -> None:
    """Attach the embedded-watchdog options shared by server commands."""
    parser.add_argument(
        "--watch",
        action="store_true",
        help="embed the fleet watchdog (serves /v1/watch/* from this process)",
    )
    parser.add_argument(
        "--watch-interval",
        type=float,
        default=1.0,
        help="watchdog scrape interval in seconds",
    )
    parser.add_argument(
        "--watch-endpoints",
        default=None,
        help=(
            "comma-separated base URLs to scrape "
            "(default: this process plus its peers)"
        ),
    )
    parser.add_argument(
        "--watch-forensics-dir",
        default=None,
        help="write forensic bundles here when an alert fires",
    )


def _build_watchdog(args: argparse.Namespace, default_endpoints: List[str]):
    """The embedded watchdog an ``--watch`` server command asked for."""
    from repro.obs.watch import Watchdog

    endpoints = default_endpoints
    if args.watch_endpoints:
        endpoints = [
            url.strip()
            for url in args.watch_endpoints.split(",")
            if url.strip()
        ]
    return Watchdog(
        endpoints,
        interval=args.watch_interval,
        forensics_dir=args.watch_forensics_dir,
    )


def _cmd_coordinator(args: argparse.Namespace) -> int:
    """Run the blocking HTTP server with a cluster coordinator attached."""
    store = None if args.cache_dir is None else ResultStore(args.cache_dir)
    coordinator = ClusterCoordinator(
        store=store,
        redundancy=args.redundancy,
        unit_size=args.unit_size,
        lease_ttl=args.lease_ttl,
        quarantine_after=args.quarantine_after,
    )
    watchdog = None
    if args.watch:
        self_url = f"http://{args.host}:{args.port}"
        watchdog = _build_watchdog(args, [self_url])
        coordinator.attach_watchdog(watchdog)
        watchdog.start()
    try:
        aserve_forever(
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            store=store,
            coordinator=coordinator,
        )
    finally:
        if watchdog is not None:
            watchdog.stop()
    return 0


def _cmd_replica(args: argparse.Namespace) -> int:
    """Run one consensus replica: raft node + full service API."""
    store = None if args.cache_dir is None else ResultStore(args.cache_dir)
    self_url = args.self_url or f"http://{args.host}:{args.port}"
    peers = [url.strip() for url in args.peers.split(",") if url.strip()]
    replica = Replica(
        data_dir=args.data_dir,
        self_url=self_url,
        peer_urls=peers,
        store=store,
        redundancy=args.redundancy,
        unit_size=args.unit_size,
        lease_ttl=args.lease_ttl,
        quarantine_after=args.quarantine_after,
        heartbeat_interval=args.heartbeat_interval,
        election_timeout=(args.election_min, args.election_max),
        fsync=not args.no_fsync,
    )
    if args.watch:
        watchdog = _build_watchdog(args, replica.watch_endpoints())
        replica.attach_watchdog(watchdog)
        watchdog.start()
    replica.start()
    try:
        aserve_forever(
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            store=store,
            coordinator=replica,
        )
    finally:
        replica.close()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one worker loop against a coordinator until idle or dead."""
    fault = None
    if args.fault == "byzantine":
        fault = ByzantineRandomAdversary({0}, seed=args.fault_seed)
    elif args.fault == "crash":
        fault = CrashAdversary({0}, crash_round={0: args.crash_after})
    store = None if args.cache_dir is None else ResultStore(args.cache_dir)
    client = ServiceClient(args.url)
    client.wait_until_up(timeout=args.connect_timeout)
    worker = Worker(
        client, name=args.name, store=store, fault=fault, poll=args.poll
    )
    summary = worker.run(
        max_units=args.max_units, idle_timeout=args.idle_timeout
    )
    print(json.dumps(summary, indent=2))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit a cluster-executed sweep; optionally wait and print tables."""
    client = ServiceClient(args.url)
    client.wait_until_up(timeout=args.connect_timeout)
    submitted = client.submit_sweep(
        scenarios=args.scenario or None,
        families=args.family or None,
        smoke=args.smoke,
        base_seed=args.seed,
        limit_per_scenario=args.limit,
        replications=args.replications,
        executor="cluster",
        redundancy=args.redundancy,
    )
    print(json.dumps(submitted, indent=2))
    if not args.wait:
        return 0
    status = client.wait_for_job(submitted["job_id"], timeout=args.timeout)
    print(json.dumps(status, indent=2))
    if status["status"] != "done":
        return 1
    _job, results = client.results(status["job_id"])
    print(
        format_table(
            "wall time by scenario",
            ["scenario", "cases", "cache hits", "total s", "mean ms"],
            results.timing_summary(),
        )
    )
    print(
        f"{len(results)} cases: {status['cache_hits']} cache hits, "
        f"{status['cache_misses']} misses."
    )
    if args.json:
        results.to_json(args.json)
        print(f"JSON written to {args.json}")
    if args.require_cached and status["cache_misses"] > 0:
        print(
            f"error: expected a full cache hit but {status['cache_misses']} "
            "cases were recomputed",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Fault-tolerant multi-worker experiment execution.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    coord = sub.add_parser(
        "coordinator", help="serve HTTP with the cluster scheduler enabled"
    )
    coord.add_argument("--host", default="127.0.0.1")
    coord.add_argument("--port", type=int, default=8642)
    coord.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache directory (recommended)",
    )
    coord.add_argument(
        "--redundancy",
        type=int,
        default=1,
        help="default r-fold replication per work unit (majority quorum)",
    )
    coord.add_argument(
        "--unit-size", type=int, default=1, help="cases per work unit"
    )
    coord.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds before an uncompleted lease is reassigned",
    )
    coord.add_argument(
        "--quarantine-after",
        type=int,
        default=1,
        help="strikes before a worker stops receiving leases",
    )
    _add_watch(coord)
    coord.set_defaults(fn=_cmd_coordinator)

    replica = sub.add_parser(
        "replica", help="run one replica of the replicated control plane"
    )
    replica.add_argument("--host", default="127.0.0.1")
    replica.add_argument("--port", type=int, default=8642)
    replica.add_argument(
        "--data-dir",
        required=True,
        help="durable consensus state directory owned by this replica",
    )
    replica.add_argument(
        "--self-url",
        default=None,
        help="URL peers reach this replica at (default: http://host:port)",
    )
    replica.add_argument(
        "--peers",
        default="",
        help="comma-separated URLs of the other replicas",
    )
    replica.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache directory (recommended)",
    )
    replica.add_argument(
        "--redundancy",
        type=int,
        default=1,
        help="default r-fold replication per work unit (majority quorum)",
    )
    replica.add_argument(
        "--unit-size", type=int, default=1, help="cases per work unit"
    )
    replica.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="logical-clock seconds before a lease is reassigned",
    )
    replica.add_argument(
        "--quarantine-after",
        type=int,
        default=1,
        help="strikes before a worker stops receiving leases",
    )
    replica.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.08,
        help="leader heartbeat period in seconds",
    )
    replica.add_argument(
        "--election-min",
        type=float,
        default=0.3,
        help="lower bound of the randomized election timeout",
    )
    replica.add_argument(
        "--election-max",
        type=float,
        default=0.6,
        help="upper bound of the randomized election timeout",
    )
    replica.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on the consensus log (tests/CI only)",
    )
    _add_watch(replica)
    replica.set_defaults(fn=_cmd_replica)

    worker = sub.add_parser("worker", help="run one worker process")
    _add_url(worker)
    worker.add_argument("--name", default=None)
    worker.add_argument(
        "--cache-dir",
        default=None,
        help="worker-local result cache (warm keys are never recomputed)",
    )
    worker.add_argument("--poll", type=float, default=0.05)
    worker.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many idle seconds (default: poll forever)",
    )
    worker.add_argument("--max-units", type=int, default=None)
    worker.add_argument(
        "--fault",
        choices=["none", "byzantine", "crash"],
        default="none",
        help="inject a repro.dist.faults adversary around the loop",
    )
    worker.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the ByzantineRandom adversary stream",
    )
    worker.add_argument(
        "--crash-after",
        type=int,
        default=1,
        help="completions before a crash-fault worker dies mid-lease",
    )
    worker.add_argument(
        "--connect-timeout",
        type=float,
        default=15.0,
        help="seconds to wait for the coordinator to come up",
    )
    worker.set_defaults(fn=_cmd_worker)

    submit = sub.add_parser("submit", help="submit a cluster-executed sweep")
    _add_url(submit)
    submit.add_argument("--scenario", action="append", default=[])
    submit.add_argument("--family", action="append", default=[])
    submit.add_argument(
        "--smoke",
        action="store_true",
        help="one representative case per family",
    )
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--limit", type=int, default=None)
    submit.add_argument("--replications", type=int, default=1)
    submit.add_argument(
        "--redundancy",
        type=int,
        default=1,
        help="r-fold replication with majority-quorum acceptance",
    )
    submit.add_argument(
        "--wait", action="store_true", help="poll until done and print results"
    )
    submit.add_argument("--timeout", type=float, default=600.0)
    submit.add_argument(
        "--connect-timeout",
        type=float,
        default=15.0,
        help="seconds to wait for the server to come up",
    )
    submit.add_argument("--json", default=None, help="write results JSON here")
    submit.add_argument(
        "--require-cached",
        action="store_true",
        help="exit nonzero unless every case was a cache hit (CI gate)",
    )
    submit.set_defaults(fn=_cmd_submit)

    args = parser.parse_args(argv)
    if args.command == "submit" and args.require_cached and not args.wait:
        parser.error("--require-cached needs --wait")
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
