"""Coordinator: shard cases into leased work units, accept quorum results.

The :class:`ClusterCoordinator` is the brain of the compute fabric.  It
takes the exact ``Case`` tuples the experiment runner produces, shards
them **by content-address key** (the same sha256 the result store uses,
so the sharding is deterministic and seed-stable) into :class:`WorkUnit`
chunks, and hands those units out to registered workers under *leases*:

* a worker that crashes or stalls simply never completes its lease; the
  lease expires after ``lease_ttl`` seconds and the unit is reassigned
  to another worker (crash/straggler tolerance);
* with ``redundancy = r > 1`` every unit must be executed by *distinct*
  workers until ``⌊r/2⌋ + 1`` of them return byte-identical canonical
  JSON payloads — a Byzantine worker returning corrupt rows is outvoted
  by the honest majority, struck, and quarantined (no further leases);
* scheduling is lazy: leases are only extended while
  ``active leases + best matching votes < threshold``, so the happy path
  costs the majority threshold in executions, not the full ``r``.

Votes are digests over the rows' *deterministic payload* — the result
dict minus wall-clock ``elapsed`` (see
:meth:`repro.experiments.results.ExperimentResult.payload_dict`) — which
is why serial, process-pool, and cluster execution agree byte-for-byte
under fixed seeds even though their timings differ.

In the paper's vocabulary (Halpern PODC'08, §2) the fabric tolerates the
same two misbehaviour classes the solution concepts do: ``t`` "faulty"
workers (crashed, slow, or adversarial — outvoted so the computation is
*t-immune* for ``t < ⌈r/2⌉`` per unit) on top of any number of merely
slow ones.

The coordinator is thread-safe and transport-agnostic: the HTTP layer
(:mod:`repro.service.app`) forwards ``POST /v1/workers``, ``/v1/lease``
and ``/v1/complete`` bodies straight into :meth:`register_worker`,
:meth:`lease` and :meth:`complete`, and the same three methods double as
the in-process transport for :class:`repro.cluster.worker.Worker`.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.results import ExperimentResult
from repro.service.store import canonical_json, result_key

__all__ = [
    "ClusterCoordinator",
    "ClusterError",
    "ClusterExecutor",
    "WorkUnit",
    "WorkerState",
    "unit_digest",
]


class ClusterError(RuntimeError):
    """A sweep-fatal cluster failure (quorum exhausted, timeout, ...)."""


def _strip_elapsed(row: Any) -> Any:
    """A row's deterministic payload: the dict minus wall-clock ``elapsed``."""
    if isinstance(row, dict):
        return {k: v for k, v in row.items() if k != "elapsed"}
    return row


def unit_digest(rows: Sequence[Any]) -> str:
    """Vote identity of one completion: sha256 over canonical payload JSON.

    Any structurally-parseable completion gets a digest — malformed or
    corrupt rows simply hash to something no honest worker will ever
    produce, so the quorum machinery (not ad-hoc validation) is what
    rejects them.  ``elapsed`` is stripped first: it is wall-clock
    metadata, never part of the deterministic result.
    """
    payload = canonical_json([_strip_elapsed(r) for r in rows])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class WorkerState:
    """Registry entry for one worker: identity, throughput, and trust."""

    worker_id: str
    name: str
    registered_at: float = field(default_factory=time.time)
    completed: int = 0
    votes_cast: int = 0
    strikes: int = 0
    quarantined: bool = False

    def to_json_obj(self) -> Dict[str, Any]:
        """JSON rendering served by ``GET /v1/cluster``."""
        return {
            "worker_id": self.worker_id,
            "name": self.name,
            "completed": self.completed,
            "votes_cast": self.votes_cast,
            "strikes": self.strikes,
            "quarantined": self.quarantined,
        }


class WorkUnit:
    """One leased chunk of cases plus its replication voting state."""

    def __init__(
        self,
        unit_id: str,
        cases: List[Tuple[int, tuple]],
        base_seed: int,
        redundancy: int,
        max_votes: int,
    ) -> None:
        self.unit_id = unit_id
        self.cases = cases  # [(original sweep index, runner Case tuple)]
        self.base_seed = base_seed
        self.redundancy = redundancy
        self.threshold = redundancy // 2 + 1
        self.max_votes = max_votes
        self.status = "open"  # open -> done | failed
        self.leases: Dict[str, float] = {}  # worker_id -> monotonic deadline
        self.votes: Dict[str, str] = {}  # worker_id -> digest
        self.rows_by_digest: Dict[str, List[Any]] = {}
        self.winning_digest: Optional[str] = None
        self.winning_votes = 0
        self.accepted_results: List[ExperimentResult] = []

    def tally(self) -> Tuple[Optional[str], int]:
        """The leading digest and its vote count (``(None, 0)`` if empty)."""
        if not self.votes:
            return None, 0
        counts: Dict[str, int] = {}
        for digest in self.votes.values():
            counts[digest] = counts.get(digest, 0) + 1
        best = max(counts, key=lambda d: counts[d])
        return best, counts[best]

    def best_count(self) -> int:
        """Size of the largest agreeing vote block so far."""
        return self.tally()[1]

    def leasable_by(self, worker: WorkerState) -> bool:
        """Whether granting ``worker`` a lease can still help resolve this unit.

        Lazy redundancy: no new lease once active leases plus the best
        agreeing vote block already reach the acceptance threshold —
        outstanding honest work is assumed to agree until proven
        otherwise, so the happy path runs ``threshold`` executions, not
        the full ``redundancy``.
        """
        if self.status != "open" or worker.quarantined:
            return False
        if worker.worker_id in self.votes or worker.worker_id in self.leases:
            return False
        if len(self.leases) + self.best_count() >= self.threshold:
            return False
        return len(self.votes) + len(self.leases) < self.max_votes

    def to_json_obj(self) -> Dict[str, Any]:
        """The lease payload a worker receives (JSON-shippable case refs)."""
        return {
            "unit_id": self.unit_id,
            "base_seed": self.base_seed,
            "cases": [
                {
                    "scenario": case[0],
                    "family": case[1],
                    "params": case[3],
                    "seed": case[4],
                    "replication": case[5],
                }
                for _index, case in self.cases
            ],
        }


class _Sweep:
    """Bookkeeping for one blocking :meth:`execute_cases` call."""

    def __init__(self, n_cases: int, unit_ids: List[str]) -> None:
        self.slots: List[Optional[ExperimentResult]] = [None] * n_cases
        self.unit_ids = set(unit_ids)
        self.open_units = len(unit_ids)
        self.error: Optional[str] = None


class ClusterCoordinator:
    """Thread-safe work-unit scheduler with leases, quorum, and quarantine.

    Parameters
    ----------
    store:
        Optional :class:`~repro.service.store.ResultStore`; quorum-accepted
        rows are written through
        :meth:`~repro.service.store.ResultStore.put_quorum` when their
        sweep finishes — on the failure path too, so every unit accepted
        before a timeout stays durable and is never recomputed.
    redundancy:
        Default r-fold replication per unit (overridable per sweep);
        acceptance needs ``r // 2 + 1`` byte-identical payloads from
        distinct workers.  ``1`` trusts a single worker (no verification).
    unit_size:
        Cases per work unit.  ``1`` (the default) gives the finest
        straggler tolerance; larger units amortize HTTP overhead.
    lease_ttl:
        Seconds before an uncompleted lease expires and is reassigned.
    quarantine_after:
        Strikes (losing or stale-mismatched votes) before a worker stops
        receiving leases.
    """

    def __init__(
        self,
        store: Optional[Any] = None,
        redundancy: int = 1,
        unit_size: int = 1,
        lease_ttl: float = 30.0,
        quarantine_after: int = 1,
    ) -> None:
        if redundancy < 1:
            raise ValueError("redundancy must be >= 1")
        if unit_size < 1:
            raise ValueError("unit_size must be >= 1")
        self.store = store
        self.redundancy = int(redundancy)
        self.unit_size = int(unit_size)
        self.lease_ttl = float(lease_ttl)
        self.quarantine_after = int(quarantine_after)
        self._cond = threading.Condition()
        self._workers: Dict[str, WorkerState] = {}
        self._units: Dict[str, WorkUnit] = {}
        self._queue: List[WorkUnit] = []
        self._sweeps: List[_Sweep] = []
        self._worker_ids = itertools.count(1)
        self._unit_ids = itertools.count(1)
        # Counters (all mutated under the lock).
        self.leases_granted = 0
        self.leases_expired = 0
        self.units_completed = 0
        self.units_failed = 0
        self.votes_received = 0
        self.strikes_issued = 0

    # -- worker-facing API (mirrors the HTTP endpoints) ----------------

    def register_worker(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Register a worker; returns its assigned ``worker_id``."""
        with self._cond:
            worker_id = f"w{next(self._worker_ids)}"
            state = WorkerState(worker_id=worker_id, name=name or worker_id)
            self._workers[worker_id] = state
            return {"worker_id": worker_id, "name": state.name}

    def lease(self, worker_id: str) -> Dict[str, Any]:
        """Grant the next eligible work unit to ``worker_id`` (or none).

        Expired leases are reaped first, so a crashed worker's units are
        reassignable by the very next lease request.  The response always
        carries ``open`` (unresolved unit count) and ``quarantined`` so a
        worker loop can decide to idle or exit.
        """
        now = time.monotonic()
        with self._cond:
            worker = self._worker(worker_id)
            self._expire_leases_locked(now)
            open_units = sum(1 for u in self._queue if u.status == "open")
            if worker.quarantined:
                return {"unit": None, "open": open_units, "quarantined": True}
            for unit in self._queue:
                if unit.leasable_by(worker):
                    unit.leases[worker_id] = now + self.lease_ttl
                    self.leases_granted += 1
                    payload = unit.to_json_obj()
                    payload["lease_ttl"] = self.lease_ttl
                    return {
                        "unit": payload,
                        "open": open_units,
                        "quarantined": False,
                    }
            return {"unit": None, "open": open_units, "quarantined": False}

    def complete(
        self, worker_id: str, unit_id: str, rows: Sequence[Any]
    ) -> Dict[str, Any]:
        """Record one worker's result rows for a unit as a quorum vote.

        Every structurally-parseable completion counts as a vote for the
        digest of its payload bytes; acceptance happens when
        ``threshold`` distinct workers agree.  Votes that lose the
        quorum — and late completions that contradict an already
        accepted digest — earn the worker a strike.
        """
        now = time.monotonic()
        with self._cond:
            worker = self._worker(worker_id)
            unit = self._units.get(unit_id)
            if unit is None:
                raise KeyError(f"unknown work unit {unit_id!r}")
            unit.leases.pop(worker_id, None)
            digest = unit_digest(rows)
            if unit.status != "open":
                # Late completion: free verification against the accepted
                # payload — agreement is fine, contradiction is a strike.
                if unit.status == "done" and digest != unit.winning_digest:
                    self._strike_locked(worker)
                return {
                    "status": "stale",
                    "accepted": unit.status == "done",
                    "quarantined": worker.quarantined,
                }
            if worker.quarantined:
                # A quarantined worker may still finish an in-flight
                # lease; its result must never count toward a quorum.
                return {
                    "status": "quarantined",
                    "accepted": False,
                    "quarantined": True,
                }
            if worker_id in unit.votes:
                return {
                    "status": "duplicate",
                    "accepted": False,
                    "quarantined": worker.quarantined,
                }
            unit.votes[worker_id] = digest
            unit.rows_by_digest.setdefault(digest, list(rows))
            worker.votes_cast += 1
            worker.completed += 1
            self.votes_received += 1
            status = "pending"
            best_digest, best_votes = unit.tally()
            if best_votes >= unit.threshold:
                self._accept_locked(unit, best_digest)
                status = "accepted" if digest == best_digest else "outvoted"
            elif len(unit.votes) >= unit.max_votes:
                self._fail_locked(
                    unit,
                    f"unit {unit.unit_id}: no {unit.threshold}-quorum among "
                    f"{len(unit.votes)} votes (too many faulty workers?)",
                )
                status = "failed"
            self._expire_leases_locked(now)
            self._cond.notify_all()
            return {
                "status": status,
                "accepted": status == "accepted",
                "quarantined": worker.quarantined,
            }

    # -- sweep-facing API ----------------------------------------------

    def execute_cases(
        self,
        cases: Sequence[tuple],
        base_seed: int = 0,
        redundancy: Optional[int] = None,
        timeout: Optional[float] = None,
        progress: Optional[Any] = None,
    ) -> List[ExperimentResult]:
        """Distribute runner ``Case`` tuples to workers; block until done.

        This is the pluggable-executor entry point the experiment runner
        delegates to (any object with an ``execute_cases`` attribute is
        treated as a case executor by
        :func:`repro.experiments.runner.run_experiments`).  Cases are
        sharded by content-address key, enqueued as work units, and the
        call blocks — reaping expired leases as it waits — until every
        unit is quorum-accepted.  Results come back in the original case
        order, built from the winning vote's rows.  ``progress`` (one
        finished :class:`ExperimentResult` per call) fires from this
        thread, outside the scheduler lock, as units are accepted — so
        a polling client sees live completion counts.

        Quorum-verified store writes are flushed in the ``finally``
        path, outside the scheduler lock: every unit accepted before a
        timeout or failure is durable even when the sweep as a whole is
        not.
        """
        if not cases:
            return []
        r = self.redundancy if redundancy is None else int(redundancy)
        if r < 1:
            raise ValueError("redundancy must be >= 1")
        units = self._shard(cases, base_seed, r)
        sweep = _Sweep(len(cases), [u.unit_id for u in units])
        deadline = None if timeout is None else time.monotonic() + timeout
        reported: set = set()
        try:
            with self._cond:
                for unit in units:
                    self._units[unit.unit_id] = unit
                    self._queue.append(unit)
                self._sweeps.append(sweep)
            while True:
                with self._cond:
                    if sweep.error is not None:
                        raise ClusterError(sweep.error)
                    now = time.monotonic()
                    finished = sweep.open_units == 0
                    fresh = [
                        (i, result)
                        for i, result in enumerate(sweep.slots)
                        if result is not None and i not in reported
                    ]
                    if not finished and not fresh:
                        if deadline is not None and now >= deadline:
                            pending = [
                                u.unit_id for u in units if u.status == "open"
                            ]
                            raise ClusterError(
                                f"cluster sweep timed out after {timeout}s "
                                f"with {len(pending)} unresolved units: "
                                f"{pending[:5]}"
                            )
                        self._expire_leases_locked(now)
                        wait = min(self.lease_ttl, 0.25)
                        if deadline is not None:
                            wait = min(wait, max(deadline - now, 0.0))
                        self._cond.wait(timeout=wait)
                        continue
                    if finished:
                        results = list(sweep.slots)
                # Report outside the lock: a callback that re-enters the
                # coordinator (or blocks) must not stall worker traffic.
                for i, result in fresh:
                    reported.add(i)
                    if progress is not None:
                        progress(result)
                if finished:
                    return results  # type: ignore[return-value]
        finally:
            # Purge this sweep's units so the queue and unit table stay
            # bounded (a straggler completing a purged unit gets a clean
            # "unknown work unit" error and moves on), then flush the
            # quorum-verified store writes — outside the scheduler lock,
            # on success *and* failure paths alike.
            with self._cond:
                self._sweeps.remove(sweep)
                for unit in units:
                    self._units.pop(unit.unit_id, None)
                self._queue = [
                    u for u in self._queue if u.unit_id not in sweep.unit_ids
                ]
            self._flush_accepted(units)

    def _flush_accepted(self, units: List[WorkUnit]) -> None:
        """Write every accepted unit's rows through the store (if any)."""
        if self.store is None:
            return
        for unit in units:
            if unit.status != "done":
                continue
            for (_index, case), result in zip(
                unit.cases, unit.accepted_results
            ):
                key = self.store.key_for(
                    case[0], case[3], unit.base_seed, case[5]
                )
                self.store.put_quorum(
                    key,
                    result.to_dict(),
                    votes=unit.winning_votes,
                    threshold=unit.threshold,
                )

    def executor(
        self,
        redundancy: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> "ClusterExecutor":
        """A runner-pluggable executor bound to a redundancy + deadline."""
        return ClusterExecutor(self, redundancy=redundancy, timeout=timeout)

    # -- introspection -------------------------------------------------

    def workers(self) -> List[Dict[str, Any]]:
        """Per-worker registry snapshot (id, throughput, strikes, trust)."""
        with self._cond:
            snapshot = sorted(self._workers.values(), key=lambda w: w.worker_id)
            return [w.to_json_obj() for w in snapshot]

    def stats(self) -> Dict[str, Any]:
        """Scheduler counters for the health endpoint and tests."""
        with self._cond:
            return {
                "workers": len(self._workers),
                "quarantined": sum(
                    1 for w in self._workers.values() if w.quarantined
                ),
                "open_units": sum(
                    1 for u in self._queue if u.status == "open"
                ),
                "redundancy": self.redundancy,
                "unit_size": self.unit_size,
                "lease_ttl": self.lease_ttl,
                "leases_granted": self.leases_granted,
                "leases_expired": self.leases_expired,
                "units_completed": self.units_completed,
                "units_failed": self.units_failed,
                "votes_received": self.votes_received,
                "strikes_issued": self.strikes_issued,
            }

    # -- internals (all called with the lock held) ---------------------

    def _worker(self, worker_id: str) -> WorkerState:
        """Look up a registered worker (KeyError on unknown ids)."""
        worker = self._workers.get(worker_id)
        if worker is None:
            raise KeyError(f"unknown worker {worker_id!r}; register first")
        return worker

    def _shard(
        self, cases: Sequence[tuple], base_seed: int, redundancy: int
    ) -> List[WorkUnit]:
        """Shard cases into work units ordered by content-address key.

        Sorting by the result store's sha256 key makes the sharding a
        pure function of the cases themselves — independent of submit
        order, worker count, and wall clock — so any two coordinators
        given the same sweep produce the same units in the same order.
        """
        keyed = sorted(
            enumerate(cases),
            key=lambda pair: result_key(
                pair[1][0], pair[1][3], base_seed, pair[1][5]
            ),
        )
        units = []
        max_votes = 2 * redundancy + 1
        for start in range(0, len(keyed), self.unit_size):
            chunk = keyed[start : start + self.unit_size]
            units.append(
                WorkUnit(
                    unit_id=f"u{next(self._unit_ids)}",
                    cases=[(index, case) for index, case in chunk],
                    base_seed=base_seed,
                    redundancy=redundancy,
                    max_votes=max_votes,
                )
            )
        return units

    def _expire_leases_locked(self, now: float) -> None:
        """Reap leases past their deadline so units become reassignable."""
        for unit in self._queue:
            if unit.status != "open":
                continue
            expired = [w for w, t in unit.leases.items() if t <= now]
            for worker_id in expired:
                del unit.leases[worker_id]
                self.leases_expired += 1

    def _strike_locked(self, worker: WorkerState) -> None:
        """Record one strike; quarantine past the threshold.

        Quarantine releases every lease the worker still holds, so its
        in-flight units go straight back to the honest pool.
        """
        worker.strikes += 1
        self.strikes_issued += 1
        if not worker.quarantined and worker.strikes >= self.quarantine_after:
            worker.quarantined = True
            for unit in self._queue:
                unit.leases.pop(worker.worker_id, None)

    def _accept_locked(self, unit: WorkUnit, digest: str) -> None:
        """Publish a quorum-accepted unit and strike the outvoted voters.

        Deliberately does **no** disk I/O: the blocking
        :meth:`execute_cases` caller flushes the quorum-verified store
        writes after it wakes, outside this lock, so lease/complete
        traffic from every other worker never stalls behind blob writes.
        """
        rows = unit.rows_by_digest[digest]
        votes = sum(1 for d in unit.votes.values() if d == digest)
        try:
            results = [ExperimentResult.from_dict(row) for row in rows]
            if len(results) != len(unit.cases):
                raise ValueError(
                    f"{len(results)} rows for {len(unit.cases)} cases"
                )
        except Exception as exc:
            # Only reachable if a full quorum of workers colluded on a
            # malformed payload; fail loudly rather than trust it.
            self._fail_locked(
                unit, f"unit {unit.unit_id}: accepted payload is invalid: {exc}"
            )
            return
        unit.status = "done"
        unit.winning_digest = digest
        unit.winning_votes = votes
        unit.accepted_results = results
        unit.leases.clear()
        for worker_id, vote in unit.votes.items():
            if vote != digest:
                self._strike_locked(self._workers[worker_id])
        self.units_completed += 1
        for sweep in self._sweeps:
            if unit.unit_id in sweep.unit_ids:
                for (index, _case), result in zip(unit.cases, results):
                    sweep.slots[index] = result
                sweep.open_units -= 1

    def _fail_locked(self, unit: WorkUnit, message: str) -> None:
        """Mark a unit unresolvable and poison its sweep."""
        unit.status = "failed"
        unit.leases.clear()
        self.units_failed += 1
        for sweep in self._sweeps:
            if unit.unit_id in sweep.unit_ids and sweep.error is None:
                sweep.error = message


class ClusterExecutor:
    """Adapter binding a coordinator to one sweep's redundancy + deadline.

    The experiment runner treats any object with an ``execute_cases``
    attribute as a pluggable case executor; this is the object to pass —
    ``run_experiments(..., executor=coordinator.executor(redundancy=3))``
    — when the per-sweep redundancy differs from the coordinator
    default.  ``timeout`` bounds the blocking wait (the job manager sets
    one so a quorum that can never form fails the job instead of
    wedging its slot forever).
    """

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        redundancy: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.coordinator = coordinator
        self.redundancy = redundancy
        self.timeout = timeout

    @property
    def store(self) -> Optional[Any]:
        """The coordinator's store (lets the runner skip duplicate puts)."""
        return self.coordinator.store

    def execute_cases(
        self,
        cases: Sequence[tuple],
        base_seed: int = 0,
        progress: Optional[Any] = None,
    ) -> List[ExperimentResult]:
        """Delegate to the coordinator under this executor's binding."""
        return self.coordinator.execute_cases(
            cases,
            base_seed=base_seed,
            redundancy=self.redundancy,
            timeout=self.timeout,
            progress=progress,
        )
