"""Coordinator: a deterministic scheduling state machine plus a thin shell.

Since PR 8 the brain of the compute fabric is split in two layers:

* :class:`CoordinatorMachine` — a **pure, deterministic, replicated-log
  -ready state machine**.  Its entire state is one JSON-serializable
  dict and every transition is ``apply(command) -> reply`` where
  ``command`` is a JSON command dict (``register`` / ``lease`` /
  ``complete`` / ``submit`` / ``purge`` / ``tick`` / ``noop``).  Nothing
  inside reads the wall clock, allocates ids non-deterministically, or
  touches the disk: time arrives as an explicit ``now`` field on every
  command (the machine's logical clock is the running maximum), worker
  and unit ids are derived from counters and content hashes held in the
  state, and quorum-accepted rows are emitted as *effects* for the
  caller to flush.  Two machines that apply the same command sequence
  hold byte-identical state — :meth:`CoordinatorMachine.state_digest`
  is the sha256 the replicated control plane's anti-entropy probes
  compare.

* :class:`ClusterCoordinator` — the thread-safe single-process shell
  that keeps the historical public surface (``register_worker`` /
  ``lease`` / ``complete`` / ``execute_cases`` / ``stats``): it applies
  commands directly under one lock, stamps ``now`` from the wall clock,
  and flushes store effects outside the lock.  The replicated
  deployment (:mod:`repro.cluster.replica`) drives the *same* machine
  through a majority-quorum log instead.

Scheduling semantics are unchanged from the original coordinator:

* cases are sharded **by content-address key** (the same sha256 the
  result store uses) into work units, so the sharding is a pure
  function of the sweep, independent of submit order and wall clock;
* a worker that crashes or stalls simply never completes its lease; the
  lease expires after ``lease_ttl`` seconds and the unit is reassigned;
* with ``redundancy = r > 1`` every unit must be executed by *distinct*
  workers until ``⌊r/2⌋ + 1`` of them return byte-identical canonical
  JSON payloads — a Byzantine worker returning corrupt rows is outvoted
  by the honest majority, struck, and quarantined (no further leases);
* scheduling is lazy: leases are only extended while
  ``active leases + best matching votes < threshold``, so the happy
  path costs the majority threshold in executions, not the full ``r``.

Votes are digests over the rows' *deterministic payload* — the result
dict minus wall-clock ``elapsed`` (see
:meth:`repro.experiments.results.ExperimentResult.payload_dict`) —
which is why serial, process-pool, and cluster execution agree
byte-for-byte under fixed seeds even though their timings differ.

Sweeps are **idempotent by content**: a sweep's id is the sha256 of its
case refs, base seed, and redundancy, and resubmitting an in-flight or
finished sweep attaches to the existing one instead of duplicating
work.  This is what makes client failover safe — a sweep resubmitted
to a freshly elected leader reuses every unit the old leader's quorum
already accepted.
"""

from __future__ import annotations

import copy
import hashlib
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.results import ExperimentResult
from repro.obs.logs import log_event
from repro.obs.metrics import default_registry
from repro.obs.trace import current_context, span_for_trace_id
from repro.service.store import canonical_json, result_key

__all__ = [
    "ClusterCoordinator",
    "ClusterError",
    "ClusterExecutor",
    "CoordinatorMachine",
    "case_refs",
    "sweep_id_for",
    "unit_digest",
]


class ClusterError(RuntimeError):
    """A sweep-fatal cluster failure (quorum exhausted, timeout, ...)."""


def _strip_elapsed(row: Any) -> Any:
    """A row's deterministic payload: the dict minus wall-clock ``elapsed``."""
    if isinstance(row, dict):
        return {k: v for k, v in row.items() if k != "elapsed"}
    return row


def unit_digest(rows: Sequence[Any]) -> str:
    """Vote identity of one completion: sha256 over canonical payload JSON.

    Any structurally-parseable completion gets a digest — malformed or
    corrupt rows simply hash to something no honest worker will ever
    produce, so the quorum machinery (not ad-hoc validation) is what
    rejects them.  ``elapsed`` is stripped first: it is wall-clock
    metadata, never part of the deterministic result.
    """
    payload = canonical_json([_strip_elapsed(r) for r in rows])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def case_refs(cases: Sequence[tuple]) -> List[Dict[str, Any]]:
    """JSON-shippable refs for runner ``Case`` tuples (original order).

    A ref carries everything a worker needs to rebuild the case —
    scenario name (function resolved from the registry), family,
    params, the pre-derived seed, and the replication index — plus the
    case's position in the submitted sweep so results can be reordered.
    """
    return [
        {
            "index": index,
            "scenario": case[0],
            "family": case[1],
            "params": case[3],
            "seed": int(case[4]),
            "replication": int(case[5]),
        }
        for index, case in enumerate(cases)
    ]


def sweep_id_for(
    refs: Sequence[Dict[str, Any]], base_seed: int, redundancy: int
) -> str:
    """Content-derived sweep identity (the unit of submit idempotency)."""
    payload = canonical_json(
        {"cases": list(refs), "base_seed": int(base_seed), "redundancy": int(redundancy)}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _ref_key(ref: Dict[str, Any], base_seed: int) -> str:
    """The content-address key the sharder sorts one case ref by."""
    return result_key(
        ref["scenario"], ref["params"], base_seed, ref["replication"]
    )


class CoordinatorMachine:
    """The coordinator as a pure ``(command, state) -> (reply, state')`` map.

    Parameters mirror the historical coordinator knobs; they are part
    of the machine's state (and therefore of its digest), so replicas
    must be configured identically.

    Commands are dicts with an ``op`` field and, for every op that can
    advance time, an explicit ``now`` — wall-clock decisions like lease
    expiry are functions of the *logical* clock (the running max of
    every ``now`` seen), never of the machine's host.  Replies are JSON
    dicts; errors are ``{"error": message}`` replies, not exceptions,
    so a replicated apply can never diverge on exception semantics.

    Accepted units are appended to an internal *effects* list (the
    quorum-verified rows to flush into a result store).  Effects are
    **not** part of the hashed state: every host applying the log
    drains them via :meth:`take_effects` and performs the (idempotent,
    content-addressed) store writes itself.
    """

    def __init__(
        self,
        redundancy: int = 1,
        unit_size: int = 1,
        lease_ttl: float = 30.0,
        quarantine_after: int = 1,
    ) -> None:
        if redundancy < 1:
            raise ValueError("redundancy must be >= 1")
        if unit_size < 1:
            raise ValueError("unit_size must be >= 1")
        self.s: Dict[str, Any] = {
            "config": {
                "redundancy": int(redundancy),
                "unit_size": int(unit_size),
                "lease_ttl": float(lease_ttl),
                "quarantine_after": int(quarantine_after),
            },
            "clock": 0.0,
            "next_worker": 1,
            "workers": {},  # worker_id -> registry entry
            "units": {},  # unit_id -> unit record
            "queue": [],  # unit_ids in lease-priority order
            "sweeps": {},  # sweep_id -> sweep record
            "counters": {
                "leases_granted": 0,
                "leases_expired": 0,
                "units_completed": 0,
                "units_failed": 0,
                "votes_received": 0,
                "strikes_issued": 0,
            },
        }
        self._effects: List[Dict[str, Any]] = []

    # -- identity and snapshots ----------------------------------------

    def state_digest(self) -> str:
        """sha256 over the canonical-JSON state (anti-entropy identity)."""
        payload = canonical_json(self.s)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def snapshot(self) -> Dict[str, Any]:
        """A deep, JSON-clean copy of the state (for log compaction)."""
        return copy.deepcopy(self.s)

    def restore(self, state: Dict[str, Any]) -> None:
        """Replace the state wholesale (installing a snapshot)."""
        self.s = copy.deepcopy(state)
        self._effects = []

    def take_effects(self) -> List[Dict[str, Any]]:
        """Drain the pending store-write effects (accepted unit records)."""
        effects, self._effects = self._effects, []
        return effects

    # -- the transition function ---------------------------------------

    def apply(self, command: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one command; returns its reply (never raises on bad input)."""
        op = command.get("op")
        now = float(command.get("now", self.s["clock"]))
        if now > self.s["clock"]:
            self.s["clock"] = now
        if op == "register":
            return self._register(command)
        if op == "lease":
            return self._lease(command)
        if op == "complete":
            return self._complete(command)
        if op == "submit":
            return self._submit(command)
        if op == "purge":
            return self._purge(command)
        if op == "tick":
            self._expire_leases()
            return {"clock": self.s["clock"]}
        if op == "noop":
            return {}
        return {"error": f"unknown coordinator command {op!r}"}

    # -- worker-facing ops ---------------------------------------------

    def _register(self, command: Dict[str, Any]) -> Dict[str, Any]:
        """Register a worker (idempotent when an explicit id is given)."""
        workers = self.s["workers"]
        worker_id = command.get("worker_id")
        if worker_id is not None:
            existing = workers.get(worker_id)
            if existing is not None:
                # Idempotent re-registration after a failover: same id,
                # same registry entry, strikes and quarantine preserved.
                return {
                    "worker_id": worker_id,
                    "name": existing["name"],
                }
            # Re-adopt an id this machine has never seen (a worker that
            # outlived a total state loss): keep the sequence ahead of
            # it so fresh assignments can never collide.
            digits = worker_id[1:] if worker_id.startswith("w") else ""
            if digits.isdigit():
                self.s["next_worker"] = max(
                    self.s["next_worker"], int(digits) + 1
                )
        else:
            worker_id = f"w{self.s['next_worker']}"
            self.s["next_worker"] += 1
        name = command.get("name") or worker_id
        workers[worker_id] = {
            "worker_id": worker_id,
            "name": name,
            "registered_at": self.s["clock"],
            "completed": 0,
            "votes_cast": 0,
            "strikes": 0,
            "strike_reasons": [],
            "quarantined": False,
            "quarantine_reason": None,
        }
        return {"worker_id": worker_id, "name": name}

    def _lease(self, command: Dict[str, Any]) -> Dict[str, Any]:
        """Grant the next eligible unit to the requesting worker (or none).

        Expired leases are reaped first, so a crashed worker's units are
        reassignable by the very next lease request.  The reply always
        carries ``open`` (unresolved unit count) and ``quarantined`` so
        a worker loop can decide to idle or exit.
        """
        worker = self.s["workers"].get(command.get("worker_id"))
        if worker is None:
            return {
                "error": f"unknown worker {command.get('worker_id')!r}; "
                "register first"
            }
        self._expire_leases()
        units = self.s["units"]
        open_units = sum(
            1 for uid in self.s["queue"] if units[uid]["status"] == "open"
        )
        if worker["quarantined"]:
            return {"unit": None, "open": open_units, "quarantined": True}
        lease_ttl = self.s["config"]["lease_ttl"]
        for uid in self.s["queue"]:
            unit = units[uid]
            if self._leasable_by(unit, worker):
                unit["leases"][worker["worker_id"]] = (
                    self.s["clock"] + lease_ttl
                )
                self.s["counters"]["leases_granted"] += 1
                return {
                    "unit": self._lease_payload(unit),
                    "open": open_units,
                    "quarantined": False,
                }
        return {"unit": None, "open": open_units, "quarantined": False}

    def _complete(self, command: Dict[str, Any]) -> Dict[str, Any]:
        """Record one worker's result rows for a unit as a quorum vote.

        Every structurally-parseable completion counts as a vote for
        the digest of its payload bytes; acceptance happens when
        ``threshold`` distinct workers agree.  Votes that lose the
        quorum — and late completions that contradict an already
        accepted digest — earn the worker a strike.
        """
        worker = self.s["workers"].get(command.get("worker_id"))
        if worker is None:
            return {
                "error": f"unknown worker {command.get('worker_id')!r}; "
                "register first"
            }
        unit = self.s["units"].get(command.get("unit_id"))
        if unit is None:
            return {"error": f"unknown work unit {command.get('unit_id')!r}"}
        rows = command.get("rows") or []
        worker_id = worker["worker_id"]
        unit["leases"].pop(worker_id, None)
        digest = unit_digest(rows)
        if unit["status"] != "open":
            # Late completion: free verification against the accepted
            # payload — agreement is fine, contradiction is a strike.
            if unit["status"] == "done" and digest != unit["winning_digest"]:
                self._strike(worker, "stale-vote")
            return {
                "status": "stale",
                "accepted": unit["status"] == "done",
                "quarantined": worker["quarantined"],
            }
        if worker["quarantined"]:
            # A quarantined worker may still finish an in-flight lease;
            # its result must never count toward a quorum.
            return {
                "status": "quarantined",
                "accepted": False,
                "quarantined": True,
            }
        if worker_id in unit["votes"]:
            return {
                "status": "duplicate",
                "accepted": False,
                "quarantined": worker["quarantined"],
            }
        unit["votes"][worker_id] = digest
        unit["rows_by_digest"].setdefault(digest, list(rows))
        worker["votes_cast"] += 1
        worker["completed"] += 1
        self.s["counters"]["votes_received"] += 1
        status = "pending"
        best_digest, best_votes = self._tally(unit)
        if best_votes >= unit["threshold"]:
            self._accept(unit, best_digest)
            status = "accepted" if digest == best_digest else "outvoted"
            if unit["status"] == "failed":
                status = "failed"  # quorum payload was structurally invalid
        elif len(unit["votes"]) >= unit["max_votes"]:
            self._fail(
                unit,
                f"unit {unit['unit_id']}: no {unit['threshold']}-quorum "
                f"among {len(unit['votes'])} votes (too many faulty "
                "workers?)",
            )
            status = "failed"
        self._expire_leases()
        return {
            "status": status,
            "accepted": status == "accepted",
            "quarantined": worker["quarantined"],
        }

    # -- sweep-facing ops ----------------------------------------------

    def _submit(self, command: Dict[str, Any]) -> Dict[str, Any]:
        """Open (or attach to) a sweep; enqueue its work units.

        The sweep id is a content hash of the refs + seed + redundancy,
        so identical submissions — concurrent duplicates, or a client
        resubmitting after a leader failover — share one sweep and its
        already-accepted units.  ``waiters`` counts attached callers;
        the sweep is purged when the last one detaches.
        """
        refs = command.get("cases") or []
        base_seed = int(command.get("base_seed", 0))
        redundancy = int(
            command.get("redundancy") or self.s["config"]["redundancy"]
        )
        if redundancy < 1:
            return {"error": "redundancy must be >= 1"}
        sweep_id = sweep_id_for(refs, base_seed, redundancy)
        sweep = self.s["sweeps"].get(sweep_id)
        if sweep is not None:
            sweep["waiters"] += 1
            return {
                "sweep_id": sweep_id,
                "unit_ids": list(sweep["unit_ids"]),
                "attached": True,
            }
        units = self._shard_refs(
            refs, base_seed, redundancy, sweep_id, command.get("trace")
        )
        self.s["sweeps"][sweep_id] = {
            "sweep_id": sweep_id,
            "n_cases": len(refs),
            "unit_ids": [u["unit_id"] for u in units],
            "open_units": len(units),
            "slots": [None] * len(refs),
            "error": None,
            "waiters": 1,
            "base_seed": base_seed,
            "redundancy": redundancy,
        }
        for unit in units:
            self.s["units"][unit["unit_id"]] = unit
            self.s["queue"].append(unit["unit_id"])
        return {
            "sweep_id": sweep_id,
            "unit_ids": [u["unit_id"] for u in units],
            "attached": False,
        }

    def _purge(self, command: Dict[str, Any]) -> Dict[str, Any]:
        """Detach one waiter; drop the sweep and its units on the last.

        A straggler completing a purged unit gets a clean "unknown work
        unit" reply and moves on — exactly the pre-replication
        behavior, now expressed as a log command so every replica
        prunes its tables at the same point in the log.
        """
        sweep = self.s["sweeps"].get(command.get("sweep_id"))
        if sweep is None:
            return {"purged": False}
        sweep["waiters"] -= 1
        if sweep["waiters"] > 0:
            return {"purged": False}
        del self.s["sweeps"][sweep["sweep_id"]]
        drop = set(sweep["unit_ids"])
        for uid in sweep["unit_ids"]:
            self.s["units"].pop(uid, None)
        self.s["queue"] = [u for u in self.s["queue"] if u not in drop]
        return {"purged": True}

    # -- introspection (read-only, no commands needed) ------------------

    def sweep_view(self, sweep_id: str) -> Optional[Dict[str, Any]]:
        """A caller-facing snapshot of one sweep's progress (or None)."""
        sweep = self.s["sweeps"].get(sweep_id)
        if sweep is None:
            return None
        units = self.s["units"]
        pending = [
            uid
            for uid in sweep["unit_ids"]
            if units.get(uid, {}).get("status") == "open"
        ]
        return {
            "sweep_id": sweep_id,
            "error": sweep["error"],
            "open_units": sweep["open_units"],
            "slots": sweep["slots"],
            "pending_units": pending,
            "n_cases": sweep["n_cases"],
        }

    def busy(self) -> bool:
        """Whether any sweep is unresolved (drives replicated ticks)."""
        return any(
            sweep["open_units"] > 0 for sweep in self.s["sweeps"].values()
        )

    def workers_view(self) -> List[Dict[str, Any]]:
        """Per-worker registry snapshot (id, throughput, strikes, trust)."""
        snapshot = sorted(
            self.s["workers"].values(), key=lambda w: w["worker_id"]
        )
        return [
            {
                "worker_id": w["worker_id"],
                "name": w["name"],
                "completed": w["completed"],
                "votes_cast": w["votes_cast"],
                "strikes": w["strikes"],
                "strike_reasons": list(w.get("strike_reasons", ())),
                "quarantined": w["quarantined"],
                "quarantine_reason": w.get("quarantine_reason"),
            }
            for w in snapshot
        ]

    def stats(self) -> Dict[str, Any]:
        """Scheduler counters for the health endpoint and tests."""
        units = self.s["units"]
        config = self.s["config"]
        out = {
            "workers": len(self.s["workers"]),
            "quarantined": sum(
                1 for w in self.s["workers"].values() if w["quarantined"]
            ),
            "open_units": sum(
                1 for uid in self.s["queue"] if units[uid]["status"] == "open"
            ),
            "redundancy": config["redundancy"],
            "unit_size": config["unit_size"],
            "lease_ttl": config["lease_ttl"],
        }
        out.update(self.s["counters"])
        return out

    # -- internals ------------------------------------------------------

    def _lease_payload(self, unit: Dict[str, Any]) -> Dict[str, Any]:
        """The lease payload a worker receives (JSON-shippable case refs)."""
        return {
            "unit_id": unit["unit_id"],
            "base_seed": unit["base_seed"],
            "trace_id": unit.get("trace_id"),
            "cases": [
                {
                    "scenario": ref["scenario"],
                    "family": ref["family"],
                    "params": ref["params"],
                    "seed": ref["seed"],
                    "replication": ref["replication"],
                }
                for ref in unit["cases"]
            ],
            "lease_ttl": self.s["config"]["lease_ttl"],
        }

    @staticmethod
    def _tally(unit: Dict[str, Any]) -> Tuple[Optional[str], int]:
        """The leading digest and its vote count (``(None, 0)`` if empty)."""
        if not unit["votes"]:
            return None, 0
        counts: Dict[str, int] = {}
        for digest in unit["votes"].values():
            counts[digest] = counts.get(digest, 0) + 1
        best = max(counts, key=lambda d: counts[d])
        return best, counts[best]

    def _leasable_by(
        self, unit: Dict[str, Any], worker: Dict[str, Any]
    ) -> bool:
        """Whether granting ``worker`` a lease can still help this unit.

        Lazy redundancy: no new lease once active leases plus the best
        agreeing vote block already reach the acceptance threshold —
        outstanding honest work is assumed to agree until proven
        otherwise, so the happy path runs ``threshold`` executions, not
        the full ``redundancy``.
        """
        if unit["status"] != "open" or worker["quarantined"]:
            return False
        worker_id = worker["worker_id"]
        if worker_id in unit["votes"] or worker_id in unit["leases"]:
            return False
        _best, best_count = self._tally(unit)
        if len(unit["leases"]) + best_count >= unit["threshold"]:
            return False
        return len(unit["votes"]) + len(unit["leases"]) < unit["max_votes"]

    def _shard_refs(
        self,
        refs: Sequence[Dict[str, Any]],
        base_seed: int,
        redundancy: int,
        sweep_id: str,
        trace_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Shard case refs into unit records ordered by content-address key.

        Sorting by the result store's sha256 key makes the sharding a
        pure function of the cases themselves — independent of submit
        order, worker count, and wall clock — so any two coordinators
        given the same sweep produce the same units in the same order.
        Unit ids are derived from the sweep id, so a resubmitted sweep
        regenerates the very same ids.
        """
        keyed = sorted(refs, key=lambda ref: _ref_key(ref, base_seed))
        unit_size = self.s["config"]["unit_size"]
        max_votes = 2 * redundancy + 1
        units = []
        for k, start in enumerate(range(0, len(keyed), unit_size)):
            chunk = keyed[start : start + unit_size]
            units.append(
                {
                    "unit_id": f"u{sweep_id}.{k}",
                    "sweep_id": sweep_id,
                    "trace_id": trace_id,
                    "cases": list(chunk),
                    "base_seed": base_seed,
                    "redundancy": redundancy,
                    "threshold": redundancy // 2 + 1,
                    "max_votes": max_votes,
                    "status": "open",  # open -> done | failed
                    "leases": {},  # worker_id -> logical-clock deadline
                    "votes": {},  # worker_id -> digest
                    "rows_by_digest": {},
                    "winning_digest": None,
                    "winning_votes": 0,
                    "accepted_rows": [],
                }
            )
        return units

    def _expire_leases(self) -> None:
        """Reap leases past their deadline so units become reassignable."""
        now = self.s["clock"]
        units = self.s["units"]
        for uid in self.s["queue"]:
            unit = units[uid]
            if unit["status"] != "open":
                continue
            expired = [w for w, t in unit["leases"].items() if t <= now]
            for worker_id in expired:
                del unit["leases"][worker_id]
                self.s["counters"]["leases_expired"] += 1
                self._effects.append(
                    {
                        "kind": "event",
                        "event": "lease.expired",
                        "unit_id": uid,
                        "worker_id": worker_id,
                    }
                )

    def _strike(self, worker: Dict[str, Any], reason: str) -> None:
        """Record one strike with its reason; quarantine past the threshold.

        ``reason`` is one of the structured codes surfaced by
        ``workers_view`` and the event log: ``stale-vote`` (a late
        completion contradicted the accepted digest), ``lost-quorum``
        (outvoted by the accepting quorum) or ``contradiction`` (voted
        for a structurally invalid accepted payload).  Quarantine
        releases every lease the worker still holds, so its in-flight
        units go straight back to the honest pool.
        """
        worker["strikes"] += 1
        worker.setdefault("strike_reasons", []).append(reason)
        self.s["counters"]["strikes_issued"] += 1
        self._effects.append(
            {
                "kind": "event",
                "event": "worker.strike",
                "worker_id": worker["worker_id"],
                "reason": reason,
                "strikes": worker["strikes"],
            }
        )
        quarantine_after = self.s["config"]["quarantine_after"]
        if not worker["quarantined"] and worker["strikes"] >= quarantine_after:
            worker["quarantined"] = True
            worker["quarantine_reason"] = reason
            units = self.s["units"]
            for uid in self.s["queue"]:
                units[uid]["leases"].pop(worker["worker_id"], None)
            self._effects.append(
                {
                    "kind": "event",
                    "event": "worker.quarantined",
                    "worker_id": worker["worker_id"],
                    "reason": reason,
                    "strikes": worker["strikes"],
                }
            )

    def _accept(self, unit: Dict[str, Any], digest: str) -> None:
        """Publish a quorum-accepted unit and strike the outvoted voters.

        Deliberately does **no** disk I/O: the accepted rows ride out
        as an effect record, flushed by whichever host applied the
        command — outside any scheduler lock, idempotently, on every
        replica.
        """
        rows = unit["rows_by_digest"][digest]
        votes = sum(1 for d in unit["votes"].values() if d == digest)
        try:
            normalized = [
                ExperimentResult.from_dict(row).to_dict() for row in rows
            ]
            if len(normalized) != len(unit["cases"]):
                raise ValueError(
                    f"{len(normalized)} rows for {len(unit['cases'])} cases"
                )
        except Exception as exc:
            # Only reachable if a full quorum of workers colluded on a
            # malformed payload; fail loudly rather than trust it, and
            # strike every voter that endorsed the invalid digest.
            for worker_id, vote in unit["votes"].items():
                if vote == digest:
                    self._strike(
                        self.s["workers"][worker_id], "contradiction"
                    )
            self._fail(
                unit,
                f"unit {unit['unit_id']}: accepted payload is invalid: {exc}",
            )
            return
        unit["status"] = "done"
        unit["winning_digest"] = digest
        unit["winning_votes"] = votes
        unit["accepted_rows"] = normalized
        unit["leases"] = {}
        for worker_id, vote in unit["votes"].items():
            if vote != digest:
                self._strike(self.s["workers"][worker_id], "lost-quorum")
        self.s["counters"]["units_completed"] += 1
        sweep = self.s["sweeps"].get(unit["sweep_id"])
        if sweep is not None:
            for ref, row in zip(unit["cases"], normalized):
                sweep["slots"][ref["index"]] = row
            sweep["open_units"] -= 1
        self._effects.append(
            {
                "kind": "accepted_unit",
                "unit_id": unit["unit_id"],
                "base_seed": unit["base_seed"],
                "trace_id": unit.get("trace_id"),
                "cases": list(unit["cases"]),
                "rows": normalized,
                "votes": votes,
                "threshold": unit["threshold"],
            }
        )

    def _fail(self, unit: Dict[str, Any], message: str) -> None:
        """Mark a unit unresolvable and poison its sweep."""
        unit["status"] = "failed"
        unit["leases"] = {}
        self.s["counters"]["units_failed"] += 1
        sweep = self.s["sweeps"].get(unit["sweep_id"])
        if sweep is not None and sweep["error"] is None:
            sweep["error"] = message


class ClusterCoordinator:
    """Thread-safe single-process shell over one :class:`CoordinatorMachine`.

    Keeps the historical public surface — the HTTP layer
    (:mod:`repro.service.app`) forwards ``POST /v1/workers``,
    ``/v1/lease`` and ``/v1/complete`` bodies straight into
    :meth:`register_worker`, :meth:`lease` and :meth:`complete`, and
    the same three methods double as the in-process transport for
    :class:`repro.cluster.worker.Worker`.

    Parameters
    ----------
    store:
        Optional :class:`~repro.service.store.ResultStore`;
        quorum-accepted rows are written through
        :meth:`~repro.service.store.ResultStore.put_quorum` as units
        resolve — on the failure path too, so every unit accepted
        before a timeout stays durable and is never recomputed.
    redundancy:
        Default r-fold replication per unit (overridable per sweep);
        acceptance needs ``r // 2 + 1`` byte-identical payloads from
        distinct workers.  ``1`` trusts a single worker (no
        verification).
    unit_size:
        Cases per work unit.  ``1`` (the default) gives the finest
        straggler tolerance; larger units amortize HTTP overhead.
    lease_ttl:
        Seconds before an uncompleted lease expires and is reassigned.
    quarantine_after:
        Strikes (losing or stale-mismatched votes) before a worker
        stops receiving leases.
    """

    def __init__(
        self,
        store: Optional[Any] = None,
        redundancy: int = 1,
        unit_size: int = 1,
        lease_ttl: float = 30.0,
        quarantine_after: int = 1,
        registry: Optional[Any] = None,
    ) -> None:
        self.store = store
        self.redundancy = int(redundancy)
        self.unit_size = int(unit_size)
        self.lease_ttl = float(lease_ttl)
        self.quarantine_after = int(quarantine_after)
        self.watchdog: Optional[Any] = None
        self._machine = CoordinatorMachine(
            redundancy=redundancy,
            unit_size=unit_size,
            lease_ttl=lease_ttl,
            quarantine_after=quarantine_after,
        )
        self._cond = threading.Condition()
        self._flushing = 0  # in-flight store writes (outside the lock)
        self.registry = default_registry() if registry is None else registry
        if self.registry.enabled:
            # Pull-mode gauges: each scrape snapshots the machine's
            # scheduler counters under the coordinator lock.
            for field in (
                "workers",
                "quarantined",
                "open_units",
                "leases_granted",
                "leases_expired",
                "units_completed",
                "units_failed",
                "votes_received",
                "strikes_issued",
            ):
                self.registry.gauge(
                    f"repro_cluster_{field}",
                    f"Coordinator scheduler counter {field!r}, "
                    "snapshotted at scrape time.",
                ).set_fn(lambda f=field: float(self.stats().get(f, 0)))

    # -- command plumbing ----------------------------------------------

    def _now(self) -> float:
        """The wall clock stamped into locally-applied commands."""
        return time.time()

    def _apply(self, command: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one command under the lock; flush effects outside it.

        Store writes happen off-lock so slow disks never stall worker
        traffic, but they are *tracked*: ``_flushing`` counts in-flight
        flushes and :meth:`execute_cases` drains it before returning,
        so a finished sweep's quorum rows are always durable by the
        time the caller sees results (or a timeout error).
        """
        with self._cond:
            reply = self._machine.apply(command)
            effects = self._machine.take_effects()
            if effects:
                self._flushing += 1
            self._cond.notify_all()
        if effects:
            try:
                flush_effects(self.store, effects)
            finally:
                with self._cond:
                    self._flushing -= 1
                    self._cond.notify_all()
        if "error" in reply:
            raise KeyError(reply["error"])
        return reply

    def _drain_flushes(self, timeout: float = 10.0) -> None:
        """Block until every in-flight effect flush has hit the store."""
        with self._cond:
            self._cond.wait_for(
                lambda: self._flushing == 0, timeout=timeout
            )

    # -- worker-facing API (mirrors the HTTP endpoints) ----------------

    def register_worker(
        self, name: Optional[str] = None, worker_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """Register a worker; returns its assigned ``worker_id``.

        Passing an explicit ``worker_id`` makes registration
        idempotent: a worker re-registering after a failover keeps its
        identity (and its strike history).
        """
        return self._apply(
            {
                "op": "register",
                "name": name,
                "worker_id": worker_id,
                "now": self._now(),
            }
        )

    def lease(self, worker_id: str) -> Dict[str, Any]:
        """Grant the next eligible work unit to ``worker_id`` (or none)."""
        return self._apply(
            {"op": "lease", "worker_id": worker_id, "now": self._now()}
        )

    def complete(
        self, worker_id: str, unit_id: str, rows: Sequence[Any]
    ) -> Dict[str, Any]:
        """Record one worker's result rows for a unit as a quorum vote."""
        return self._apply(
            {
                "op": "complete",
                "worker_id": worker_id,
                "unit_id": unit_id,
                "rows": list(rows),
                "now": self._now(),
            }
        )

    # -- sweep-facing API ----------------------------------------------

    def execute_cases(
        self,
        cases: Sequence[tuple],
        base_seed: int = 0,
        redundancy: Optional[int] = None,
        timeout: Optional[float] = None,
        progress: Optional[Any] = None,
    ) -> List[ExperimentResult]:
        """Distribute runner ``Case`` tuples to workers; block until done.

        This is the pluggable-executor entry point the experiment
        runner delegates to (any object with an ``execute_cases``
        attribute is treated as a case executor by
        :func:`repro.experiments.runner.run_experiments`).  Cases are
        submitted as one content-identified sweep and the call blocks —
        ticking the machine's logical clock so leases expire as it
        waits — until every unit is quorum-accepted.  Results come back
        in the original case order, built from the winning votes' rows.
        ``progress`` (one finished :class:`ExperimentResult` per call)
        fires from this thread, outside the scheduler lock, as units
        are accepted — so a polling client sees live completion counts.
        """
        if not cases:
            return []
        r = self.redundancy if redundancy is None else int(redundancy)
        if r < 1:
            raise ValueError("redundancy must be >= 1")
        refs = case_refs(cases)
        ctx = current_context()
        submitted = self._apply(
            {
                "op": "submit",
                "cases": refs,
                "base_seed": int(base_seed),
                "redundancy": r,
                "trace": None if ctx is None else ctx.trace_id,
                "now": self._now(),
            }
        )
        sweep_id = submitted["sweep_id"]
        deadline = None if timeout is None else time.monotonic() + timeout
        reported: set = set()
        try:
            while True:
                with self._cond:
                    view = self._machine.sweep_view(sweep_id)
                    assert view is not None  # purged only in finally
                    if view["error"] is not None:
                        raise ClusterError(view["error"])
                    finished = view["open_units"] == 0
                    fresh = [
                        (i, row)
                        for i, row in enumerate(view["slots"])
                        if row is not None and i not in reported
                    ]
                    if not finished and not fresh:
                        now = time.monotonic()
                        if deadline is not None and now >= deadline:
                            pending = view["pending_units"]
                            raise ClusterError(
                                f"cluster sweep timed out after {timeout}s "
                                f"with {len(pending)} unresolved units: "
                                f"{pending[:5]}"
                            )
                        # Advance the logical clock so expired leases
                        # are reaped even while no worker is talking.
                        self._machine.apply(
                            {"op": "tick", "now": self._now()}
                        )
                        wait = min(self.lease_ttl, 0.25)
                        if deadline is not None:
                            wait = min(wait, max(deadline - now, 0.0))
                        self._cond.wait(timeout=wait)
                        continue
                    if finished:
                        rows = list(view["slots"])
                # Report outside the lock: a callback that re-enters
                # the coordinator (or blocks) must not stall worker
                # traffic.
                for i, row in fresh:
                    reported.add(i)
                    if progress is not None:
                        progress(ExperimentResult.from_dict(row))
                if finished:
                    return [ExperimentResult.from_dict(row) for row in rows]
        finally:
            self._apply(
                {"op": "purge", "sweep_id": sweep_id, "now": self._now()}
            )
            # Units accepted before a timeout stay durable: never leave
            # this frame with their store writes still in flight.
            self._drain_flushes()

    def executor(
        self,
        redundancy: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> "ClusterExecutor":
        """A runner-pluggable executor bound to a redundancy + deadline."""
        return ClusterExecutor(self, redundancy=redundancy, timeout=timeout)

    # -- introspection -------------------------------------------------

    def workers(self) -> List[Dict[str, Any]]:
        """Per-worker registry snapshot (id, throughput, strikes, trust)."""
        with self._cond:
            return self._machine.workers_view()

    def stats(self) -> Dict[str, Any]:
        """Scheduler counters for the health endpoint and tests."""
        with self._cond:
            return self._machine.stats()

    def state_digest(self) -> str:
        """The machine's canonical state sha256 (anti-entropy identity)."""
        with self._cond:
            return self._machine.state_digest()

    # -- watchdog embedding --------------------------------------------

    def attach_watchdog(self, watchdog: Any) -> Any:
        """Embed a running fleet watchdog in this coordinator process.

        The service API looks the watchdog up dynamically through the
        coordinator, so attaching one makes the server's
        ``/v1/watch/*`` routes answer immediately.
        """
        self.watchdog = watchdog
        return watchdog

    # -- test/debug helpers --------------------------------------------

    def _shard(
        self, cases: Sequence[tuple], base_seed: int, redundancy: int
    ) -> List[Dict[str, Any]]:
        """Shard cases as a submit would, without enqueueing anything."""
        refs = case_refs(cases)
        with self._cond:
            return self._machine._shard_refs(
                refs,
                int(base_seed),
                int(redundancy),
                sweep_id_for(refs, base_seed, redundancy),
            )


def flush_effects(store: Optional[Any], effects: List[Dict[str, Any]]) -> None:
    """Flush machine effects: store writes, events, and trace spans.

    ``accepted_unit`` effects write every row via
    :meth:`~repro.service.store.ResultStore.put_quorum` under its
    content-address key.  The write is idempotent (content-addressed,
    atomic rename), so replicas replaying a log after a crash can
    re-flush the same effects safely.  When a unit carries a trace id,
    the flush records ``quorum.accept`` and ``store.write`` spans so
    the sweep's trace covers acceptance end to end.  ``event`` effects
    become structured log lines — side channels only, never part of
    the hashed machine state.
    """
    for effect in effects:
        kind = effect.get("kind")
        if kind == "event":
            fields = {
                k: v
                for k, v in effect.items()
                if k not in ("kind", "event")
            }
            log_event(effect["event"], "cluster", **fields)
            continue
        if kind != "accepted_unit":
            continue
        trace_id = effect.get("trace_id")
        with span_for_trace_id(
            "quorum.accept",
            "cluster",
            trace_id,
            attrs={
                "unit_id": effect["unit_id"],
                "votes": effect["votes"],
                "threshold": effect["threshold"],
            },
        ):
            if store is None:
                continue
            with span_for_trace_id(
                "store.write",
                "cluster",
                trace_id,
                attrs={
                    "unit_id": effect["unit_id"],
                    "rows": len(effect["rows"]),
                },
            ):
                for ref, row in zip(effect["cases"], effect["rows"]):
                    key = store.key_for(
                        ref["scenario"],
                        ref["params"],
                        effect["base_seed"],
                        ref["replication"],
                    )
                    store.put_quorum(
                        key,
                        row,
                        votes=effect["votes"],
                        threshold=effect["threshold"],
                    )


class ClusterExecutor:
    """Adapter binding a coordinator to one sweep's redundancy + deadline.

    The experiment runner treats any object with an ``execute_cases``
    attribute as a pluggable case executor; this is the object to pass
    — ``run_experiments(..., executor=coordinator.executor(redundancy=3))``
    — when the per-sweep redundancy differs from the coordinator
    default.  ``timeout`` bounds the blocking wait (the job manager
    sets one so a quorum that can never form fails the job instead of
    wedging its slot forever).  Works identically over a
    :class:`ClusterCoordinator` and a replicated
    :class:`~repro.cluster.replica.Replica`.
    """

    def __init__(
        self,
        coordinator: Any,
        redundancy: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.coordinator = coordinator
        self.redundancy = redundancy
        self.timeout = timeout

    @property
    def store(self) -> Optional[Any]:
        """The coordinator's store (lets the runner skip duplicate puts)."""
        return self.coordinator.store

    def execute_cases(
        self,
        cases: Sequence[tuple],
        base_seed: int = 0,
        progress: Optional[Any] = None,
    ) -> List[ExperimentResult]:
        """Delegate to the coordinator under this executor's binding."""
        return self.coordinator.execute_cases(
            cases,
            base_seed=base_seed,
            redundancy=self.redundancy,
            timeout=self.timeout,
            progress=progress,
        )
