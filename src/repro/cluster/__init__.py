"""Fault-tolerant multi-worker compute fabric with quorum-verified results.

The reproduction eats its own cooking: Halpern's PODC'08 program is
about solution concepts that survive faulty and Byzantine participants,
and this package runs the experiment sweeps on a compute fabric built to
the same standard.  A :class:`~repro.cluster.coordinator.ClusterCoordinator`
shards a sweep's cases by content-address key into work units and leases
them to registered :class:`~repro.cluster.worker.Worker` processes over
the :mod:`repro.service` HTTP API (``POST /v1/workers``, ``/v1/lease``,
``/v1/complete``):

* **crash/straggler tolerance** — an uncompleted lease expires after
  ``lease_ttl`` seconds and the unit is reassigned;
* **Byzantine tolerance** — with ``redundancy = r``, a unit is accepted
  only when ``⌊r/2⌋ + 1`` distinct workers return byte-identical
  canonical-JSON payloads; losing voters are struck and quarantined;
* **determinism** — seeds ship inside the units and votes hash the
  rows' deterministic payload, so serial == process-pool == cluster
  byte-for-byte under fixed seeds;
* **caching** — workers execute through the shared runner path with a
  local content-addressed store in front, so warm keys are never
  recomputed, and quorum-accepted rows are written through the server's
  store via :meth:`~repro.service.store.ResultStore.put_quorum`.

Fault injection reuses the :mod:`repro.dist.faults` adversary hierarchy
(NoFault/Crash/ByzantineRandom/Scripted) wrapped around the worker loop.

The coordinator itself is no longer a single point of failure: the
:mod:`repro.cluster.replica` module replicates the scheduling machine
across 3+ :class:`~repro.cluster.replica.Replica` processes behind a
majority-quorum consensus log (:class:`~repro.cluster.log.DurableLog`
on disk, :class:`~repro.cluster.replica.RaftCore` for the pure
consensus rules).  Followers bounce writes with HTTP 421 plus a leader
hint (:class:`~repro.cluster.errors.NotLeaderError`); workers and
clients take every replica URL and fail over automatically, so sweeps
finish byte-identically through a leader ``SIGKILL``.

``python -m repro.cluster`` drives it from the shell::

    python -m repro.cluster coordinator --port 8642 --cache-dir .cache
    python -m repro.cluster worker --url http://127.0.0.1:8642
    python -m repro.cluster worker --url ... --fault byzantine
    python -m repro.cluster submit --family robustness --redundancy 3 --wait

or, replicated (one ``replica`` process per data directory)::

    python -m repro.cluster replica --port 8651 --data-dir r1 \\
        --peers http://127.0.0.1:8652,http://127.0.0.1:8653
    python -m repro.cluster worker \\
        --url http://127.0.0.1:8651,http://127.0.0.1:8652,http://127.0.0.1:8653
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterError,
    ClusterExecutor,
    CoordinatorMachine,
    unit_digest,
)
from repro.cluster.errors import NotLeaderError
from repro.cluster.log import DurableLog, LogEntry
from repro.cluster.replica import MemoryLog, RaftCore, Replica
from repro.cluster.worker import Worker, corrupt_rows, run_worker_thread

__all__ = [
    "ClusterCoordinator",
    "ClusterError",
    "ClusterExecutor",
    "CoordinatorMachine",
    "DurableLog",
    "LogEntry",
    "MemoryLog",
    "NotLeaderError",
    "RaftCore",
    "Replica",
    "Worker",
    "corrupt_rows",
    "run_worker_thread",
    "unit_digest",
]
