"""Replicated control plane: the coordinator behind a majority-quorum log.

This module removes the fabric's last single point of failure.  The
scheduling brain (:class:`~repro.cluster.coordinator.CoordinatorMachine`)
is already a pure, deterministic state machine; here it is replicated
across 3+ :class:`Replica` processes with a minimal Raft-style
consensus log:

* **monotonic terms + majority elections** — at most one leader per
  term (votes are durable before they are sent, so a crash cannot
  double-vote);
* **majority-quorum commit** — a command is applied (and its reply
  released to the client) only after a majority of replicas hold it
  durably, so an accepted quorum decision survives any minority of
  crashes;
* **leader-append, follower-redirect** — the leader serializes all
  writes into the log; followers answer reads (``/v1/cluster``,
  ``/v1/raft/status``) locally and bounce writes with HTTP 421 plus a
  leader hint (:class:`NotLeaderError`);
* **durable log + snapshot** — every replica persists through
  :class:`~repro.cluster.log.DurableLog` and compacts the applied
  prefix into snapshots; a replica restarted from disk catches up from
  its own log, or from a leader-shipped snapshot when it fell behind
  the leader's compaction horizon.

The consensus rules live in :class:`RaftCore`, a **pure, I/O-free**
message-in/messages-out object — the very same class the bounded model
checker (:mod:`repro.verify.consensus`) explores exhaustively for
election-safety and commit-durability violations, so the code that is
model-checked is the code that runs.  :class:`Replica` wraps one core
with threads, HTTP, and a wall clock:

* an RPC is **synchronous**: the sender POSTs one message to the
  peer's ``/v1/raft/rpc`` and the peer's reply message rides back in
  the HTTP response body — no separate reply delivery, no reordering
  within a channel;
* per-peer sender threads double as heartbeat timers;
* wall-clock lease expiry becomes log-ordered ``tick`` commands
  appended by the leader, so every replica expires the same leases at
  the same log position — replicas applying the same prefix hold
  byte-identical machine state (compare :meth:`Replica.raft_status`
  ``state_digest`` fields to audit).

Deployment::

    python -m repro.cluster replica --port 8651 --data-dir r1 \\
        --peers http://127.0.0.1:8652,http://127.0.0.1:8653 ...

Workers and clients take all replica URLs
(``--url http://…:8651,http://…:8652,…``) and fail over automatically.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.coordinator import (
    ClusterError,
    ClusterExecutor,
    CoordinatorMachine,
    case_refs,
    flush_effects,
)
from repro.cluster.errors import NotLeaderError
from repro.cluster.log import DurableLog, LogEntry
from repro.experiments.results import ExperimentResult
from repro.obs.logs import log_event
from repro.obs.metrics import default_registry
from repro.obs.trace import current_context
from repro.service.client import ServiceClient, ServiceError

__all__ = ["MemoryLog", "NotLeaderError", "RaftCore", "Replica"]


class MemoryLog:
    """A :class:`~repro.cluster.log.DurableLog` look-alike in memory.

    Same interface, no disk: this is what the model checker (and
    in-process unit tests) plug into :class:`RaftCore` so consensus
    transitions stay pure.  "Durability" here means surviving a
    *modeled* crash — the checker keeps the MemoryLog and discards the
    volatile core, exactly mirroring what a real crash preserves.
    """

    def __init__(self) -> None:
        self.term = 0
        self.voted_for: Optional[str] = None
        self.entries: List[LogEntry] = []
        self.base_index = 0
        self.base_term = 0
        self.snapshot_state: Optional[Dict[str, Any]] = None

    # The index arithmetic is identical to DurableLog's; both views are
    # kept in lock-step by construction (global, 1-based indices).

    @property
    def last_index(self) -> int:
        """Global index of the last entry (snapshot frontier if empty)."""
        return self.base_index + len(self.entries)

    def term_at(self, index: int) -> Optional[int]:
        """The term of global ``index`` (0 for the origin, None if gone)."""
        if index == 0:
            return 0
        if index == self.base_index:
            return self.base_term
        offset = index - self.base_index - 1
        if 0 <= offset < len(self.entries):
            return self.entries[offset].term
        return None

    def entry_at(self, index: int) -> Optional[LogEntry]:
        """The entry at global ``index`` (None if snapshotted away/absent)."""
        offset = index - self.base_index - 1
        if 0 <= offset < len(self.entries):
            return self.entries[offset]
        return None

    def slice_from(self, index: int) -> List[LogEntry]:
        """Entries with global index >= ``index`` (for AppendEntries)."""
        offset = max(index - self.base_index - 1, 0)
        return self.entries[offset:]

    def set_term(self, term: int, voted_for: Optional[str]) -> None:
        """Record (term, vote) — the modeled durable write."""
        self.term = int(term)
        self.voted_for = voted_for

    def append(self, new_entries: List[LogEntry]) -> None:
        """Append entries (modeled as instantly durable)."""
        self.entries.extend(new_entries)

    def truncate_from(self, index: int) -> None:
        """Discard entries with global index >= ``index``."""
        offset = max(index - self.base_index - 1, 0)
        if offset < len(self.entries):
            self.entries = self.entries[:offset]

    def install_snapshot(
        self,
        last_included_index: int,
        last_included_term: int,
        machine_state: Dict[str, Any],
    ) -> None:
        """Replace everything with a leader-shipped snapshot."""
        self.base_index = int(last_included_index)
        self.base_term = int(last_included_term)
        self.snapshot_state = machine_state
        self.entries = []

    def clone(self) -> "MemoryLog":
        """An independent copy (the checker forks states)."""
        other = MemoryLog()
        other.term = self.term
        other.voted_for = self.voted_for
        other.entries = [LogEntry(e.term, e.cmd) for e in self.entries]
        other.base_index = self.base_index
        other.base_term = self.base_term
        other.snapshot_state = self.snapshot_state
        return other


class RaftCore:
    """The pure consensus rules: one node's message-in/messages-out map.

    Every method either inspects state or returns a list of message
    dicts to transport — no sockets, no threads, no clock.  Durability
    ordering is inherited from the ``log`` collaborator: terms, votes,
    and entries are written through it *before* any message that
    depends on them is returned, so a caller that transports the
    returned messages after the call automatically satisfies the
    "persist before you promise" rule on both real disks
    (:class:`~repro.cluster.log.DurableLog`) and modeled ones
    (:class:`MemoryLog`).

    Message shapes (all JSON dicts, ``from``/``to`` are node ids)::

        vote_req:     term, last_log_index, last_log_term
        vote_reply:   term, granted
        append_req:   term, prev_index, prev_term, entries, commit
                      [, snapshot {last_included_index/_term, machine}]
        append_reply: term, success, match_index, conflict_index

    ``commit_index`` is volatile on purpose: a restarted replica
    recomputes it from the next leader contact (commit never regresses
    *globally* — a majority still holds every committed entry).
    """

    def __init__(self, node_id: str, peers: Sequence[str], log: Any) -> None:
        self.node_id = node_id
        self.peers = [p for p in peers if p != node_id]
        self.log = log
        self.role = "follower"  # follower | candidate | leader
        self.leader_id: Optional[str] = None
        self.commit_index = int(log.base_index)
        self.votes: set = set()
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}

    # -- derived views ---------------------------------------------------

    @property
    def term(self) -> int:
        """The current (durable) term."""
        return self.log.term

    @property
    def voted_for(self) -> Optional[str]:
        """Who this node (durably) voted for in the current term."""
        return self.log.voted_for

    def quorum(self) -> int:
        """Majority size over the full replica set (self included)."""
        return (len(self.peers) + 1) // 2 + 1

    # -- elections -------------------------------------------------------

    def start_election(self) -> List[Dict[str, Any]]:
        """Become a candidate in the next term; returns the vote requests.

        The (term, self-vote) pair is durably recorded by ``log`` before
        the requests are handed back, so even a crash right after this
        call cannot lead to a second vote in the new term.  A
        single-node cluster wins immediately.
        """
        self.log.set_term(self.term + 1, self.node_id)
        self.role = "candidate"
        self.leader_id = None
        self.votes = {self.node_id}
        if len(self.votes) >= self.quorum():
            return self._become_leader()
        return [
            {
                "type": "vote_req",
                "from": self.node_id,
                "to": peer,
                "term": self.term,
                "last_log_index": self.log.last_index,
                "last_log_term": self.log.term_at(self.log.last_index),
            }
            for peer in self.peers
        ]

    def _become_leader(self) -> List[Dict[str, Any]]:
        """Take leadership: init follower cursors, append the term noop.

        The no-op lets this term commit immediately (a leader may only
        count replication quorums for entries of its *own* term), which
        in turn releases every prior-term entry beneath it.
        """
        self.role = "leader"
        self.leader_id = self.node_id
        last = self.log.last_index
        self.next_index = {peer: last + 1 for peer in self.peers}
        self.match_index = {peer: 0 for peer in self.peers}
        self.log.append([LogEntry(self.term, {"op": "noop", "now": 0.0})])
        self._advance_commit()
        return [self.make_append(peer) for peer in self.peers]

    def _step_down(self, term: int) -> None:
        """Adopt a higher term as a clean follower (vote not yet cast)."""
        self.log.set_term(term, None)
        self.role = "follower"
        self.leader_id = None
        self.votes = set()

    # -- message handling ------------------------------------------------

    def on_message(self, message: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Process one incoming message; returns the messages it provokes."""
        kind = message.get("type")
        if kind == "vote_req":
            return self._on_vote_req(message)
        if kind == "vote_reply":
            return self._on_vote_reply(message)
        if kind == "append_req":
            return self._on_append_req(message)
        if kind == "append_reply":
            return self._on_append_reply(message)
        return []

    def _on_vote_req(self, m: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Grant at most one vote per term, only to up-to-date logs.

        The up-to-date check — candidate's (last term, last index) must
        be >= ours — is the leader-completeness half of Raft's safety
        argument: a candidate missing committed entries cannot collect
        a majority, because some member of the committing quorum still
        holds them and refuses.
        """
        if m["term"] > self.term:
            self._step_down(m["term"])
        granted = False
        if m["term"] == self.term and self.voted_for in (None, m["from"]):
            my_last = self.log.last_index
            my_term = self.log.term_at(my_last) or 0
            theirs = (m["last_log_term"] or 0, m["last_log_index"])
            if theirs >= (my_term, my_last):
                self.log.set_term(self.term, m["from"])  # durable grant
                granted = True
        return [
            {
                "type": "vote_reply",
                "from": self.node_id,
                "to": m["from"],
                "term": self.term,
                "granted": granted,
            }
        ]

    def _on_vote_reply(self, m: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Count a vote; a majority converts the candidacy to leadership."""
        if m["term"] > self.term:
            self._step_down(m["term"])
            return []
        if (
            self.role != "candidate"
            or m["term"] != self.term
            or not m["granted"]
        ):
            return []
        self.votes.add(m["from"])
        if len(self.votes) >= self.quorum():
            return self._become_leader()
        return []

    def make_append(self, peer: str) -> Dict[str, Any]:
        """Build the AppendEntries (or snapshot-install) for one follower.

        When the follower's cursor has fallen behind this log's
        compaction horizon the message piggybacks the snapshot; the
        follower installs it and the entries ride on top.
        """
        ni = self.next_index.get(peer, self.log.last_index + 1)
        message: Dict[str, Any] = {
            "type": "append_req",
            "from": self.node_id,
            "to": peer,
            "term": self.term,
            "commit": self.commit_index,
        }
        if ni <= self.log.base_index and self.log.snapshot_state is not None:
            message["snapshot"] = {
                "last_included_index": self.log.base_index,
                "last_included_term": self.log.base_term,
                "machine": self.log.snapshot_state,
            }
            ni = self.log.base_index + 1
        message["prev_index"] = ni - 1
        message["prev_term"] = self.log.term_at(ni - 1) or 0
        message["entries"] = [e.to_dict() for e in self.log.slice_from(ni)]
        return message

    def _on_append_req(self, m: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Follow the leader: install snapshot, reconcile log, advance commit.

        Entries are appended durably *before* the success reply leaves,
        so the leader's quorum arithmetic only ever counts entries that
        would survive this node crashing.
        """
        if m["term"] > self.term:
            self._step_down(m["term"])
        reply: Dict[str, Any] = {
            "type": "append_reply",
            "from": self.node_id,
            "to": m["from"],
            "term": self.term,
            "success": False,
            "match_index": 0,
            "conflict_index": None,
        }
        if m["term"] < self.term:
            return [reply]
        # A valid append from the current term's leader: anyone still
        # campaigning in this term concedes.
        self.role = "follower"
        self.leader_id = m["from"]
        snapshot = m.get("snapshot")
        if (
            snapshot is not None
            and snapshot["last_included_index"] > self.log.base_index
        ):
            self.log.install_snapshot(
                snapshot["last_included_index"],
                snapshot["last_included_term"],
                snapshot["machine"],
            )
            self.commit_index = max(
                self.commit_index, self.log.base_index
            )
        prev = m["prev_index"]
        prev_term = self.log.term_at(prev)
        if prev_term is None or prev_term != m["prev_term"]:
            # Mismatch hint: retry from just past our end (hole) or from
            # the conflicting index (divergent suffix).
            if prev > self.log.last_index:
                reply["conflict_index"] = self.log.last_index + 1
            else:
                reply["conflict_index"] = max(prev, self.log.base_index + 1)
            return [reply]
        entries = [LogEntry.from_dict(e) for e in m["entries"]]
        insert_at = None
        for i, entry in enumerate(entries):
            index = prev + 1 + i
            existing = self.log.term_at(index)
            if existing is None:
                insert_at = i
                break
            if existing != entry.term:
                # A conflicting suffix is uncommitted by construction;
                # the leader's log wins.
                self.log.truncate_from(index)
                insert_at = i
                break
        if insert_at is not None:
            self.log.append(entries[insert_at:])
        match = prev + len(entries)
        self.commit_index = max(self.commit_index, min(m["commit"], match))
        reply["success"] = True
        reply["match_index"] = match
        return [reply]

    def _on_append_reply(self, m: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Advance (or rewind) one follower's cursor; maybe commit."""
        if m["term"] > self.term:
            self._step_down(m["term"])
            return []
        if self.role != "leader" or m["term"] != self.term:
            return []
        peer = m["from"]
        if m["success"]:
            self.match_index[peer] = max(
                self.match_index.get(peer, 0), m["match_index"]
            )
            self.next_index[peer] = self.match_index[peer] + 1
            self._advance_commit()
            if self.next_index[peer] <= self.log.last_index:
                return [self.make_append(peer)]  # keep streaming backlog
            return []
        conflict = m.get("conflict_index")
        fallback = max(self.next_index.get(peer, 2) - 1, 1)
        self.next_index[peer] = (
            max(min(fallback, conflict), 1) if conflict else fallback
        )
        return [self.make_append(peer)]

    def _advance_commit(self) -> None:
        """Commit the highest majority-replicated index of the current term.

        Only current-term entries are counted directly (the classic
        figure-8 rule); earlier-term entries commit transitively once a
        current-term entry above them does.
        """
        for n in range(self.log.last_index, self.commit_index, -1):
            if self.log.term_at(n) != self.term:
                break
            replicas = 1 + sum(
                1
                for peer in self.peers
                if self.match_index.get(peer, 0) >= n
            )
            if replicas >= self.quorum():
                self.commit_index = n
                return

    def client_append(self, cmd: Dict[str, Any]) -> int:
        """Leader-only: append a client command; returns its log index."""
        self.log.append([LogEntry(self.term, cmd)])
        index = self.log.last_index
        self._advance_commit()  # a single-node cluster commits instantly
        return index


class Replica:
    """One member of the replicated control plane.

    Wraps a :class:`RaftCore` + :class:`~repro.cluster.log.DurableLog`
    + :class:`~repro.cluster.coordinator.CoordinatorMachine` with the
    threads and HTTP channels a live deployment needs, while exposing
    the exact same surface as a single-process
    :class:`~repro.cluster.coordinator.ClusterCoordinator` — the
    service layer (:mod:`repro.service.app`) and the job manager call
    ``register_worker`` / ``lease`` / ``complete`` / ``execute_cases``
    / ``stats`` without knowing which one they hold.  Writes raise
    :class:`NotLeaderError` on followers (→ HTTP 421 + leader hint);
    reads serve from local applied state.

    Parameters
    ----------
    data_dir:
        This replica's private durable directory (log + snapshot).
    self_url:
        The URL peers reach *this* replica on; doubles as its node id.
    peer_urls:
        The other replicas' URLs.  Empty list = single-node (useful
        for tests; elects itself instantly).
    store:
        Optional result store; quorum-accepted rows are flushed on
        every replica (writes are content-addressed and idempotent).
    redundancy, unit_size, lease_ttl, quarantine_after:
        Scheduling knobs, forwarded to the machine — **must match
        across replicas** (they are part of the replicated state's
        digest).
    heartbeat_interval, election_timeout:
        Failure-detector timing: followers call an election after a
        uniform draw from ``election_timeout`` seconds without leader
        contact; leaders heartbeat every ``heartbeat_interval``.
    tick_interval:
        How often a leader appends a ``tick`` command while sweeps are
        in flight (log-ordered lease expiry).
    snapshot_interval:
        Applied entries between snapshot compactions.
    fsync:
        Forwarded to :class:`~repro.cluster.log.DurableLog`; tests
        disable it for speed.
    """

    def __init__(
        self,
        data_dir: str,
        self_url: str,
        peer_urls: Sequence[str] = (),
        store: Optional[Any] = None,
        redundancy: int = 1,
        unit_size: int = 1,
        lease_ttl: float = 30.0,
        quarantine_after: int = 1,
        heartbeat_interval: float = 0.08,
        election_timeout: Tuple[float, float] = (0.3, 0.6),
        tick_interval: float = 0.25,
        snapshot_interval: int = 512,
        rpc_timeout: float = 2.0,
        fsync: bool = True,
        registry: Optional[Any] = None,
    ) -> None:
        self.store = store
        self.redundancy = int(redundancy)
        self.unit_size = int(unit_size)
        self.lease_ttl = float(lease_ttl)
        self.quarantine_after = int(quarantine_after)
        self.self_url = self_url.rstrip("/")
        self.peer_urls = [p.rstrip("/") for p in peer_urls]
        self.heartbeat_interval = float(heartbeat_interval)
        self.election_timeout = (
            float(election_timeout[0]),
            float(election_timeout[1]),
        )
        self.tick_interval = float(tick_interval)
        self.snapshot_interval = int(snapshot_interval)
        self.rpc_timeout = float(rpc_timeout)

        self.watchdog: Optional[Any] = None
        self.registry = default_registry() if registry is None else registry
        self._log = DurableLog(data_dir, fsync=fsync, registry=self.registry)
        self._core = RaftCore(self.self_url, self.peer_urls, self._log)
        self._machine = CoordinatorMachine(
            redundancy=redundancy,
            unit_size=unit_size,
            lease_ttl=lease_ttl,
            quarantine_after=quarantine_after,
        )
        self._applied = 0
        if self._log.snapshot_state is not None:
            self._machine.restore(self._log.snapshot_state)
            self._applied = self._log.base_index
        # Entries beyond the snapshot re-apply only once re-committed
        # (commit_index is volatile by design) — the next leader contact
        # restores it within one heartbeat.

        self._cond = threading.Condition()
        self._flushing = 0
        self._waiting: Dict[int, Optional[Tuple[int, Dict[str, Any]]]] = {}
        self._outbox: Dict[str, List[Dict[str, Any]]] = {
            peer: [] for peer in self.peer_urls
        }
        self._events = {peer: threading.Event() for peer in self.peer_urls}
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._rng = random.Random()
        self._election_deadline = (
            time.monotonic() + self._rng.uniform(*self.election_timeout)
        )
        self._next_tick = 0.0
        # Test hook: callable(peer_url) -> True to drop all traffic to
        # that peer (simulated partition).  None = deliver everything.
        self.drop_traffic = None

        self._last_role = self._core.role
        self._m_elections = self.registry.counter(
            "repro_raft_elections_total",
            "Elections this node has started (timeout fired, became "
            "candidate).",
        )
        self._m_heartbeats = self.registry.counter(
            "repro_raft_heartbeats_total",
            "AppendEntries messages sent while leading (empty ones are "
            "the heartbeat).",
        )
        if self.registry.enabled:
            # Consensus pull-gauges: ints read without the lock — each
            # scrape sees some recent consistent-enough value.
            self.registry.gauge(
                "repro_raft_term",
                "Current consensus term on this node.",
            ).set_fn(lambda: float(self._core.term))
            self.registry.gauge(
                "repro_raft_commit_index",
                "Highest log index known committed on this node.",
            ).set_fn(lambda: float(self._core.commit_index))
            self.registry.gauge(
                "repro_raft_applied_index",
                "Highest log index applied to the coordinator machine.",
            ).set_fn(lambda: float(self._applied))
            self.registry.gauge(
                "repro_raft_is_leader",
                "1 when this node believes it leads, else 0.",
            ).set_fn(lambda: 1.0 if self._core.role == "leader" else 0.0)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "Replica":
        """Spawn the ticker and per-peer channel threads; returns self."""
        ticker = threading.Thread(
            target=self._ticker_loop, name="replica-ticker", daemon=True
        )
        ticker.start()
        self._threads.append(ticker)
        for peer in self.peer_urls:
            thread = threading.Thread(
                target=self._channel_loop,
                args=(peer,),
                name=f"replica-channel-{peer}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def close(self) -> None:
        """Stop all threads and release the durable log handle."""
        self._stop.set()
        if self.watchdog is not None:
            try:
                self.watchdog.stop()
            except Exception:
                pass
        for event in self._events.values():
            event.set()
        with self._cond:
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads = []
        self._log.close()

    # -- watchdog embedding ----------------------------------------------

    def watch_endpoints(self) -> List[str]:
        """The fleet base URLs an embedded watchdog should scrape."""
        return [self.self_url] + list(self.peer_urls)

    def attach_watchdog(self, watchdog: Any) -> Any:
        """Embed a running fleet watchdog in this replica process.

        The service API discovers it dynamically (``/v1/watch/*``
        routes start answering), and :meth:`close` stops its scrape
        loop with the replica's own threads.
        """
        self.watchdog = watchdog
        return watchdog

    def hard_stop(self) -> None:
        """Halt without any cleanup — the in-process analog of SIGKILL.

        Chaos tests use this to model a leader crash: threads are
        abandoned mid-flight (they exit on the stop flag at their next
        wakeup) and the durable directory is left exactly as a real
        kill would leave it.
        """
        self._stop.set()

    # -- consensus plumbing ----------------------------------------------

    def _observe_role(self) -> None:
        """Log a structured line when the consensus role changed.

        Called outside the lock from the ticker and RPC paths; role
        reads race benignly (a missed intermediate role shows up on
        the next call).
        """
        role = self._core.role
        if role != self._last_role:
            previous, self._last_role = self._last_role, role
            log_event(
                "raft.role_change",
                "cluster",
                node=self.self_url,
                previous=previous,
                role=role,
                term=self._core.term,
            )

    def _reset_election_deadline(self) -> None:
        """Push the election alarm one randomized timeout into the future."""
        self._election_deadline = (
            time.monotonic() + self._rng.uniform(*self.election_timeout)
        )

    def _route_locked(self, messages: List[Dict[str, Any]]) -> None:
        """Drop outbound messages into per-peer outboxes and wake senders."""
        for message in messages:
            peer = message["to"]
            if peer in self._outbox:
                self._outbox[peer].append(message)
                self._events[peer].set()

    def _signal_channels(self) -> None:
        """Wake every sender thread (fresh entries or a new commit)."""
        for event in self._events.values():
            event.set()

    def _advance_locked(self) -> List[Dict[str, Any]]:
        """Apply newly committed entries to the machine (lock held).

        Returns the effects drained from the machine; the caller MUST
        pass them to :meth:`_flush` after releasing the lock.  Also
        resolves waiting ``submit_command`` calls and compacts the log
        every ``snapshot_interval`` applied entries.
        """
        if self._applied < self._log.base_index:
            # A leader-shipped snapshot superseded our local prefix.
            assert self._log.snapshot_state is not None
            log_event(
                "raft.snapshot_catchup",
                "cluster",
                node=self.self_url,
                from_applied=self._applied,
                to_applied=self._log.base_index,
            )
            self._machine.restore(self._log.snapshot_state)
            self._applied = self._log.base_index
        while self._applied < self._core.commit_index:
            entry = self._log.entry_at(self._applied + 1)
            if entry is None:  # pragma: no cover - defensive
                break
            reply = self._machine.apply(entry.cmd)
            self._applied += 1
            if self._applied in self._waiting:
                self._waiting[self._applied] = (entry.term, reply)
        effects = self._machine.take_effects()
        if effects:
            self._flushing += 1
        if self._applied - self._log.base_index >= self.snapshot_interval:
            self._log.compact(self._applied, self._machine.snapshot())
        return effects

    def _flush(self, effects: List[Dict[str, Any]]) -> None:
        """Write drained effects through the store (outside the lock)."""
        if not effects:
            return
        try:
            flush_effects(self.store, effects)
        finally:
            with self._cond:
                self._flushing -= 1
                self._cond.notify_all()

    def _drain_flushes(self, timeout: float = 10.0) -> None:
        """Block until in-flight effect flushes have hit the store."""
        with self._cond:
            self._cond.wait_for(
                lambda: self._flushing == 0, timeout=timeout
            )

    def handle_rpc(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Process one peer consensus message; returns the reply message.

        This is the body of ``POST /v1/raft/rpc``.  The synchronous
        model means exactly one reply (possibly ``{}``) rides back in
        the HTTP response; any *other* messages the step provokes are
        routed to their own channels.
        """
        kind = message.get("type")
        with self._cond:
            out = self._core.on_message(message)
            if kind == "append_req" and message["term"] >= self._core.term:
                self._reset_election_deadline()
            effects = self._advance_locked()
            self._cond.notify_all()
            reply: Dict[str, Any] = {}
            extra: List[Dict[str, Any]] = []
            for msg in out:
                if not reply and msg["to"] == message.get("from"):
                    reply = msg
                else:
                    extra.append(msg)
            if kind == "vote_req" and reply.get("granted"):
                self._reset_election_deadline()
            self._route_locked(extra)
        self._flush(effects)
        return reply

    def _deliver_reply(self, reply: Dict[str, Any]) -> None:
        """Feed a synchronous RPC reply back into the core (sender side)."""
        if not reply or "type" not in reply:
            return
        with self._cond:
            out = self._core.on_message(reply)
            effects = self._advance_locked()
            self._cond.notify_all()
            self._route_locked(out)
        self._flush(effects)

    def _channel_loop(self, peer: str) -> None:
        """Sender thread for one peer: heartbeats, appends, vote requests.

        Wakes on demand (fresh outbox, new entries) or every heartbeat
        interval; a leader iteration always sends an AppendEntries —
        empty ones double as the heartbeat.  Transport errors are
        swallowed: an unreachable peer is retried on the next beat,
        which is precisely the crash-recovery path.
        """
        client = ServiceClient(peer, timeout=self.rpc_timeout, retries=0)
        event = self._events[peer]
        try:
            while not self._stop.is_set():
                event.wait(timeout=self.heartbeat_interval)
                event.clear()
                if self._stop.is_set():
                    return
                with self._cond:
                    messages = list(self._outbox[peer])
                    self._outbox[peer].clear()
                    if self._core.role == "leader":
                        messages.append(self._core.make_append(peer))
                        self._m_heartbeats.inc()
                while messages and not self._stop.is_set():
                    message = messages.pop(0)
                    drop = self.drop_traffic
                    if drop is not None and drop(peer):
                        continue
                    try:
                        reply = client.raft_rpc(message)
                    except (ServiceError, OSError):
                        break  # peer unreachable; retry next heartbeat
                    if not reply or "type" not in reply:
                        continue
                    with self._cond:
                        out = self._core.on_message(reply)
                        effects = self._advance_locked()
                        self._cond.notify_all()
                        follow_up = []
                        for msg in out:
                            if msg["to"] == peer:
                                follow_up.append(msg)
                            else:
                                self._outbox[msg["to"]].append(msg)
                                self._events[msg["to"]].set()
                        messages.extend(follow_up)
                    self._flush(effects)
        finally:
            client.close()

    def _ticker_loop(self) -> None:
        """Failure detector + logical-clock driver.

        Followers: call an election when the leader has been silent for
        a full randomized timeout.  Leaders: append log-ordered
        ``tick`` commands while sweeps are in flight so lease expiry is
        a replicated decision, not a local clock read.
        """
        while not self._stop.is_set():
            time.sleep(0.02)
            if self._stop.is_set():
                return
            now = time.monotonic()
            effects: List[Dict[str, Any]] = []
            election_term = None
            with self._cond:
                if self._core.role == "leader":
                    if now >= self._next_tick and self._machine.busy():
                        self._next_tick = now + self.tick_interval
                        self._core.client_append(
                            {"op": "tick", "now": time.time()}
                        )
                        effects = self._advance_locked()
                        self._signal_channels()
                elif now >= self._election_deadline:
                    out = self._core.start_election()
                    self._m_elections.inc()
                    election_term = self._core.term
                    self._reset_election_deadline()
                    if self._core.role == "leader":  # single-node win
                        effects = self._advance_locked()
                    self._route_locked(out)
                    self._cond.notify_all()
            if election_term is not None:
                log_event(
                    "raft.election",
                    "cluster",
                    node=self.self_url,
                    term=election_term,
                )
            self._observe_role()
            self._flush(effects)

    # -- replicated writes -----------------------------------------------

    def submit_command(
        self, cmd: Dict[str, Any], timeout: float = 30.0
    ) -> Dict[str, Any]:
        """Append one command through the log; block until it applies.

        Leader only (:class:`NotLeaderError` otherwise, with the
        current hint).  The reply is released only after the entry is
        majority-committed *and* applied locally — the linearizable
        write path every coordinator mutation rides on.  If leadership
        is lost before commit and the entry gets overwritten by the new
        leader's log, the caller sees :class:`NotLeaderError` and
        retries against the hint — commands are idempotent
        (re-register keeps the id, re-submit attaches by content hash,
        duplicate completes are votes already counted).
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            if self._core.role != "leader":
                raise NotLeaderError(self.leader_url())
            index = self._core.client_append(cmd)
            term = self._core.term
            self._waiting[index] = None
            effects = self._advance_locked()  # single-node commits inline
            self._signal_channels()
            try:
                while self._waiting[index] is None:
                    if self._log.term_at(index) != term:
                        raise NotLeaderError(self.leader_url())
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ClusterError(
                            f"replicated {cmd.get('op')!r} command timed "
                            f"out after {timeout}s (no commit quorum — "
                            "majority of replicas unreachable?)"
                        )
                    self._cond.wait(timeout=min(remaining, 0.1))
                stored = self._waiting[index]
                if stored[0] != term:
                    # A new leader's entry landed at our index instead.
                    raise NotLeaderError(self.leader_url())
            finally:
                self._waiting.pop(index, None)
        self._flush(effects)
        reply = stored[1]
        if "error" in reply:
            raise KeyError(reply["error"])
        return reply

    # -- the coordinator-compatible surface --------------------------------

    def require_leader(self) -> None:
        """Raise :class:`NotLeaderError` unless this replica leads now."""
        with self._cond:
            if self._core.role != "leader":
                raise NotLeaderError(self.leader_url())

    def leader_url(self) -> Optional[str]:
        """Best-known leader URL (self when leading, None mid-election)."""
        return self._core.leader_id

    def register_worker(
        self, name: Optional[str] = None, worker_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """Register a worker through the log (idempotent with an id)."""
        return self.submit_command(
            {
                "op": "register",
                "name": name,
                "worker_id": worker_id,
                "now": time.time(),
            }
        )

    def lease(self, worker_id: str) -> Dict[str, Any]:
        """Grant the next eligible unit through the log."""
        return self.submit_command(
            {"op": "lease", "worker_id": worker_id, "now": time.time()}
        )

    def complete(
        self, worker_id: str, unit_id: str, rows: Sequence[Any]
    ) -> Dict[str, Any]:
        """Record a completion vote through the log."""
        return self.submit_command(
            {
                "op": "complete",
                "worker_id": worker_id,
                "unit_id": unit_id,
                "rows": list(rows),
                "now": time.time(),
            }
        )

    def execute_cases(
        self,
        cases: Sequence[tuple],
        base_seed: int = 0,
        redundancy: Optional[int] = None,
        timeout: Optional[float] = None,
        progress: Optional[Any] = None,
    ) -> List[ExperimentResult]:
        """Run a sweep on the replicated fabric; block until done.

        The submit rides the log (leader only); progress is then
        observed on **local applied state**, which keeps working even
        if this replica loses leadership mid-sweep — completions
        committed by the new leader replicate here and the sweep view
        fills in regardless of who leads.  Results are byte-identical
        to a serial run of the same cases.
        """
        if not cases:
            return []
        r = self.redundancy if redundancy is None else int(redundancy)
        if r < 1:
            raise ValueError("redundancy must be >= 1")
        refs = case_refs(cases)
        ctx = current_context()
        submitted = self.submit_command(
            {
                "op": "submit",
                "cases": refs,
                "base_seed": int(base_seed),
                "redundancy": r,
                "trace": None if ctx is None else ctx.trace_id,
                "now": time.time(),
            }
        )
        sweep_id = submitted["sweep_id"]
        deadline = None if timeout is None else time.monotonic() + timeout
        reported: set = set()
        try:
            while True:
                with self._cond:
                    view = self._machine.sweep_view(sweep_id)
                    if view is None:
                        raise ClusterError(
                            f"sweep {sweep_id} vanished from the replicated "
                            "state (purged by another waiter?)"
                        )
                    if view["error"] is not None:
                        raise ClusterError(view["error"])
                    finished = view["open_units"] == 0
                    fresh = [
                        (i, row)
                        for i, row in enumerate(view["slots"])
                        if row is not None and i not in reported
                    ]
                    if not finished and not fresh:
                        now = time.monotonic()
                        if deadline is not None and now >= deadline:
                            pending = view["pending_units"]
                            raise ClusterError(
                                f"cluster sweep timed out after {timeout}s "
                                f"with {len(pending)} unresolved units: "
                                f"{pending[:5]}"
                            )
                        wait = 0.1
                        if deadline is not None:
                            wait = min(wait, max(deadline - now, 0.0))
                        self._cond.wait(timeout=wait)
                        continue
                    if finished:
                        rows = list(view["slots"])
                for i, row in fresh:
                    reported.add(i)
                    if progress is not None:
                        progress(ExperimentResult.from_dict(row))
                if finished:
                    return [ExperimentResult.from_dict(row) for row in rows]
        finally:
            try:
                self.submit_command(
                    {
                        "op": "purge",
                        "sweep_id": sweep_id,
                        "now": time.time(),
                    },
                    timeout=5.0,
                )
            except (NotLeaderError, ClusterError, KeyError):
                # Leadership moved mid-sweep: the sweep record stays on
                # the new leader until its own waiters detach.  Workers
                # completing its units is harmless (idempotent store
                # writes); memory is reclaimed with the sweep's last
                # waiter there.
                pass
            self._drain_flushes()

    def executor(
        self,
        redundancy: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> ClusterExecutor:
        """A runner-pluggable executor bound to a redundancy + deadline."""
        return ClusterExecutor(self, redundancy=redundancy, timeout=timeout)

    # -- local reads -------------------------------------------------------

    def workers(self) -> List[Dict[str, Any]]:
        """Worker registry snapshot from local applied state."""
        with self._cond:
            return self._machine.workers_view()

    def stats(self) -> Dict[str, Any]:
        """Scheduler counters from local applied state."""
        with self._cond:
            return self._machine.stats()

    def state_digest(self) -> str:
        """sha256 of local applied machine state (anti-entropy probe)."""
        with self._cond:
            return self._machine.state_digest()

    def raft_status(self) -> Dict[str, Any]:
        """Consensus-level introspection (``GET /v1/raft/status``).

        ``state_digest`` is over the *applied* machine state: two
        replicas reporting the same ``applied_index`` MUST report the
        same digest — anything else is a determinism bug, and the chaos
        suite asserts exactly that after every fault it injects.
        """
        with self._cond:
            return {
                "node_id": self.self_url,
                "role": self._core.role,
                "term": self._core.term,
                "leader": self._core.leader_id,
                "commit_index": self._core.commit_index,
                "applied_index": self._applied,
                "last_log_index": self._log.last_index,
                "base_index": self._log.base_index,
                "state_digest": self._machine.state_digest(),
                "peers": list(self.peer_urls),
            }
