"""Exceptions shared across the cluster layers (import-cycle free).

:class:`NotLeaderError` is raised by the consensus layer
(:mod:`repro.cluster.replica`) and rendered by the HTTP layer
(:mod:`repro.service.app`) as ``421 Misdirected Request``; it lives in
this leaf module — which imports nothing — so both sides can name it
without creating a cycle between the cluster and service packages.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["NotLeaderError"]


class NotLeaderError(Exception):
    """Raised for writes sent to a non-leader replica.

    Carries the best-known leader URL (or None mid-election); the HTTP
    layer renders it as ``421 Misdirected Request`` with the hint in
    the body, and :class:`~repro.service.client.ServiceClient` follows
    the hint transparently.
    """

    def __init__(self, leader_url: Optional[str] = None) -> None:
        super().__init__("not the leader")
        self.leader_url = leader_url
