"""Worker: pull leases, compute via the shared runner path, report back.

A :class:`Worker` is one compute process (or thread) in the fabric.  Its
loop is deliberately tiny: register once, then repeatedly lease a work
unit, rebuild the unit's JSON case refs into real runner ``Case`` tuples
(resolving each scenario from the registry), execute them through the
**same** :func:`repro.experiments.runner._execute_cases` path the serial
runner and the service use, and post the result rows back as a quorum
vote.  A local content-addressed
:class:`~repro.service.store.ResultStore` slots straight into that path,
so a warm key is served from disk and never recomputed — redundant
executions of a unit the worker has already seen cost one JSON parse.

The ``transport`` is anything with ``register_worker`` / ``lease`` /
``complete`` — a :class:`~repro.service.client.ServiceClient` for a real
multi-process cluster over HTTP, or a
:class:`~repro.cluster.coordinator.ClusterCoordinator` directly for
in-process tests, since the HTTP layer forwards bodies verbatim.

Fault injection reuses the :mod:`repro.dist.faults` adversary hierarchy,
wrapped around the loop exactly where the synchronous simulator wraps it
around a node's outbox — each result row rides as the payload of one
:class:`~repro.dist.simulator.Message` and the adversary rewrites the
batch before it is posted:

* :class:`~repro.dist.faults.NoFaultAdversary` — honest worker;
* :class:`~repro.dist.faults.CrashAdversary` — the worker dies (stops
  mid-lease, never completing) once its completion tick reaches its
  crash round, which is what lease expiry and reassignment tolerate;
* :class:`~repro.dist.faults.ByzantineRandomAdversary` /
  :class:`~repro.dist.faults.ScriptedAdversary` — result payloads are
  garbled, replaced, or dropped before posting; the quorum outvotes and
  quarantines the worker.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.dist.faults import Adversary, CrashAdversary, NoFaultAdversary
from repro.dist.simulator import Message
from repro.experiments.registry import get_scenario
from repro.experiments.runner import _execute_cases
from repro.obs.metrics import default_registry
from repro.obs.trace import SpanRecorder, default_recorder, span_for_trace_id
from repro.service.client import ServiceError

__all__ = ["Worker", "corrupt_rows", "run_worker_thread"]

# The worker models itself as node 0 of a 1-node network when it feeds
# its outgoing rows through a dist-layer adversary.
_NODE_ID = 0


def corrupt_rows(
    adversary: Adversary, tick: int, rows: Sequence[Any]
) -> List[Any]:
    """Run result rows through a dist-layer adversary's outbox rewrite.

    Each row becomes the payload of one message from node 0; the
    adversary keeps, garbles, replaces, or drops messages exactly as it
    would in the round-based simulator, and whatever payloads survive
    are the rows actually posted.  For an honest worker this is the
    identity.
    """
    outbox = [
        Message(sender=_NODE_ID, recipient=i, payload=row)
        for i, row in enumerate(rows)
    ]
    corrupted = adversary.corrupt_outbox(_NODE_ID, tick, outbox, 1)
    return [message.payload for message in corrupted]


class Worker:
    """One compute-fabric worker: lease, execute, vote, repeat.

    Parameters
    ----------
    transport:
        Object with ``register_worker(name)``, ``lease(worker_id)`` and
        ``complete(worker_id, unit_id, rows)`` — a
        :class:`~repro.service.client.ServiceClient` or a
        :class:`~repro.cluster.coordinator.ClusterCoordinator`.
    name:
        Human-readable worker name (defaults to the assigned id).
    store:
        Optional local :class:`~repro.service.store.ResultStore`; warm
        keys are served from it instead of being recomputed.
    fault:
        A :mod:`repro.dist.faults` adversary controlling node 0, or
        ``None`` for an honest worker.
    poll:
        Sleep between lease attempts when no unit is available.
    """

    def __init__(
        self,
        transport: Any,
        name: Optional[str] = None,
        store: Optional[Any] = None,
        fault: Optional[Adversary] = None,
        poll: float = 0.05,
        registry: Optional[Any] = None,
    ) -> None:
        self.transport = transport
        self.name = name
        self.store = store
        self.fault = fault or NoFaultAdversary()
        self.poll = float(poll)
        self.worker_id: Optional[str] = None
        self.completed = 0
        self.crashed = False
        self.quarantined = False
        self.transport_errors = 0
        self.last_error: Optional[str] = None
        self._recorder = SpanRecorder(capacity=256)
        registry = default_registry() if registry is None else registry
        self._m_unit_seconds = registry.histogram(
            "repro_worker_unit_seconds",
            "Wall time executing one leased work unit's cases.",
        )
        self._m_units = registry.counter(
            "repro_worker_units_total",
            "Leased units this worker finished executing.",
        )

    def register(self) -> str:
        """Register with the coordinator; returns the assigned worker id.

        Passing the previously assigned ``worker_id`` back makes the
        call idempotent: after a coordinator restart (or a failover to
        a replica that already replicated this registration) the worker
        re-adopts the same identity, keeping its completion and strike
        history instead of appearing as a fresh node.
        """
        reply = self.transport.register_worker(
            self.name, worker_id=self.worker_id
        )
        self.worker_id = reply["worker_id"]
        if self.name is None:
            self.name = reply.get("name", self.worker_id)
        return self.worker_id

    def _crash_due(self, tick: int) -> bool:
        """Whether a crash-fault worker is dead at this completion tick."""
        fault = self.fault
        if isinstance(fault, CrashAdversary) and fault.is_faulty(_NODE_ID):
            return tick >= fault.crash_round.get(_NODE_ID, 0)
        return False

    def run_unit(self, unit: Dict[str, Any]) -> bool:
        """Execute one leased unit and post its rows; False if we died.

        The cases are rebuilt from their JSON refs — scenario function
        resolved from the registry, seed taken verbatim from the unit so
        no worker ever re-derives randomness — and executed through the
        shared runner path with this worker's local store in front.
        """
        cases = []
        for ref in unit["cases"]:
            # A missing scenario is a misconfigured worker (wrong code
            # version, unregistered user module) — fail loudly rather
            # than silently re-leasing the same unit forever.
            spec = get_scenario(ref["scenario"])
            cases.append(
                (
                    ref["scenario"],
                    ref["family"],
                    spec.fn,
                    ref["params"],
                    int(ref["seed"]),
                    int(ref["replication"]),
                )
            )
        with span_for_trace_id(
            "worker.run_unit",
            "worker",
            unit.get("trace_id"),
            recorder=self._recorder,
            attrs={
                "unit_id": unit["unit_id"],
                "worker_id": self.worker_id,
                "cases": len(cases),
            },
        ):
            started = time.monotonic()
            results = _execute_cases(
                cases, base_seed=int(unit["base_seed"]), store=self.store
            )
            self._m_unit_seconds.observe(time.monotonic() - started)
            self._m_units.inc()
            if self._crash_due(self.completed):
                # Die holding the lease: the classic fail-stop fault.
                # The coordinator only finds out when the lease expires.
                self.crashed = True
                return False
            rows = corrupt_rows(
                self.fault, self.completed, [r.to_dict() for r in results]
            )
            try:
                reply = self.transport.complete(
                    self.worker_id, unit["unit_id"], rows
                )
            except (ServiceError, KeyError):
                # The lease expired under us and the unit was resolved
                # or purged; nothing to do but move on.
                self.transport_errors += 1
                return True
            self.quarantined = bool(reply.get("quarantined", False))
            self.completed += 1
        # Ship the span upstream when the transport can carry it (the
        # HTTP client can); otherwise hand it to the process-default
        # recorder so in-process fleets still see it.
        if unit.get("trace_id"):
            spans = self._recorder.drain()
            push = getattr(self.transport, "push_spans", None)
            if push is not None:
                push(spans)
            else:
                default_recorder().ingest(spans)
        return True

    def run(
        self,
        max_units: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        stop: Optional[threading.Event] = None,
    ) -> Dict[str, Any]:
        """Pull-and-compute until crashed, quarantined, idle, or stopped.

        ``idle_timeout`` bounds how long the worker keeps polling
        without obtaining a work unit — whether because none is
        leasable or because the coordinator is transiently unreachable
        — so a worker whose coordinator died drains off instead of
        spinning forever (``None`` polls forever on those).  An
        "unknown worker" answer (the coordinator restarted from scratch,
        or a failover landed on state from before our registration)
        triggers **one** idempotent re-registration under the same
        worker id; only if the identity cannot be re-established does
        the loop stop.  Other permanent server answers (HTTP 4xx/5xx:
        no coordinator attached) stop the loop immediately, with the
        reason in the summary's ``last_error``.  ``max_units`` bounds
        the number of completed units; ``stop`` is an external kill
        switch for thread-hosted workers.  Returns a summary dict.
        """
        if self.worker_id is None:
            self.register()
        idle_since: Optional[float] = None
        just_reregistered = False

        def idled_out() -> bool:
            """Tick the idle timer; True once idle_timeout is exceeded."""
            nonlocal idle_since
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            return idle_timeout is not None and now - idle_since >= idle_timeout

        def try_reregister() -> bool:
            """One idempotent re-registration; False if it failed too."""
            nonlocal just_reregistered
            if just_reregistered:
                return False  # identity re-established and lost again
            try:
                self.register()
            except (ServiceError, KeyError) as exc:
                self.last_error = str(exc)
                return False
            just_reregistered = True
            return True

        while not (stop is not None and stop.is_set()):
            if max_units is not None and self.completed >= max_units:
                break
            try:
                reply = self.transport.lease(self.worker_id)
            except ServiceError as exc:
                self.transport_errors += 1
                if exc.status != 0:
                    # A real server answer.  "unknown worker" means the
                    # control plane lost our registration (restart or
                    # failover): re-adopt the same identity once before
                    # declaring the fabric down.  Anything else (no
                    # coordinator attached) is permanent: stop loudly
                    # instead of spinning.
                    if "unknown worker" in str(exc) and try_reregister():
                        continue
                    self.last_error = self.last_error or str(exc)
                    break
                # Status 0 is a transport blip (connection refused/
                # reset): keep polling until the idle timeout drains us.
                if idled_out():
                    self.last_error = str(exc)
                    break
                time.sleep(self.poll)
                continue
            except KeyError as exc:
                # In-process transport's unknown-worker error: same
                # one-shot re-registration as over HTTP.
                self.transport_errors += 1
                if "unknown worker" in str(exc) and try_reregister():
                    continue
                self.last_error = self.last_error or str(exc)
                break
            just_reregistered = False
            if reply.get("quarantined"):
                self.quarantined = True
                break
            unit = reply.get("unit")
            if unit is None:
                if idled_out():
                    break
                time.sleep(self.poll)
                continue
            idle_since = None
            if not self.run_unit(unit):
                break
        return self.summary()

    def summary(self) -> Dict[str, Any]:
        """Final state of this worker's run (printed by the CLI)."""
        return {
            "worker_id": self.worker_id,
            "name": self.name,
            "completed": self.completed,
            "crashed": self.crashed,
            "quarantined": self.quarantined,
            "transport_errors": self.transport_errors,
            "last_error": self.last_error,
        }


def run_worker_thread(
    transport: Any,
    name: Optional[str] = None,
    store: Optional[Any] = None,
    fault: Optional[Adversary] = None,
    poll: float = 0.01,
    idle_timeout: Optional[float] = None,
    stop: Optional[threading.Event] = None,
) -> "tuple[Worker, threading.Thread]":
    """Start a daemon-thread worker; returns ``(worker, thread)``.

    The in-process deployment used by tests, examples, and benchmarks:
    several thread workers against one live server exercise the full
    HTTP protocol without process management.
    """
    worker = Worker(
        transport, name=name, store=store, fault=fault, poll=poll
    )
    thread = threading.Thread(
        target=worker.run,
        kwargs={"idle_timeout": idle_timeout, "stop": stop},
        daemon=True,
        name=f"cluster-worker-{name or 'anon'}",
    )
    thread.start()
    return worker, thread
