"""Durable storage for a replica's consensus state: log, term, snapshot.

A :class:`DurableLog` owns one replica's data directory and persists the
three things a crash-fault-tolerant consensus participant must never
lose:

``meta.json``
    The current term and the candidate voted for in it — rewritten
    atomically (temp file + fsync + ``os.replace``) before any message
    that depends on them leaves the process, so a replica can never
    vote twice in one term across a crash.

``log.jsonl``
    The suffix of the replicated log after the last snapshot, one
    ``{"term": t, "cmd": {...}}`` JSON object per line, fsync'd on
    append.  Indices are **global and 1-based**: entry ``i`` of the
    file is log index ``base_index + i``.  Truncation (a follower
    discarding entries that conflict with the leader's) rewrites the
    file through the same atomic-replace path.

``snapshot.json``
    A compacted prefix: the coordinator state machine's full JSON
    state as of ``last_included_index`` (with its term).  Compaction
    writes the snapshot first, then rewrites ``log.jsonl`` with only
    the surviving suffix, then bumps the base — a crash between any
    two steps leaves a directory that still loads to a consistent
    (at worst slightly longer) log.

Nothing here knows about elections or quorums — that lives in
:mod:`repro.cluster.replica`; this module is pure storage with the
fsync discipline and crash-ordering the consensus layer's safety
argument assumes.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import default_registry

from repro.service.store import canonical_json

__all__ = ["DurableLog", "LogEntry"]


class LogEntry:
    """One replicated-log entry: a term and a state-machine command."""

    __slots__ = ("term", "cmd")

    def __init__(self, term: int, cmd: Dict[str, Any]) -> None:
        self.term = int(term)
        self.cmd = cmd

    def to_dict(self) -> Dict[str, Any]:
        """The JSON object persisted to (and shipped between) replicas."""
        return {"term": self.term, "cmd": self.cmd}

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "LogEntry":
        """Rebuild an entry from its JSON object."""
        return cls(obj["term"], obj["cmd"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogEntry(term={self.term}, op={self.cmd.get('op')!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LogEntry)
            and other.term == self.term
            and other.cmd == self.cmd
        )


def _fsync_dir(path: str) -> None:
    """fsync a directory so a just-renamed file survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - directories not fsync-able here
        pass
    finally:
        os.close(fd)


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + fsync + atomic rename."""
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_dir(directory)


class DurableLog:
    """One replica's fsync'd on-disk consensus state.

    Parameters
    ----------
    data_dir:
        Directory owned exclusively by this replica (created if
        missing).  Loading an existing directory resumes from whatever
        the last crash left behind.
    fsync:
        Set ``False`` to skip ``os.fsync`` calls (in-process tests and
        model-scale chaos suites, where crash-durability across *host*
        power loss is irrelevant and fsync dominates runtime).  Atomic
        replaces still happen, so concurrent readers stay safe.

    Attributes
    ----------
    term, voted_for:
        The durable election state (see :meth:`set_term`).
    entries:
        In-memory list of :class:`LogEntry` after the snapshot; entry
        ``entries[i]`` is global log index ``base_index + i + 1``.
    base_index, base_term:
        The snapshot frontier: the index/term of the last entry folded
        into ``snapshot.json`` (0/0 when no snapshot exists).
    snapshot_state:
        The machine state at ``base_index`` (None when no snapshot).
    """

    def __init__(
        self,
        data_dir: str,
        fsync: bool = True,
        registry: Optional[Any] = None,
    ) -> None:
        self.data_dir = data_dir
        self.fsync = bool(fsync)
        self._m_fsync = (
            default_registry() if registry is None else registry
        ).histogram(
            "repro_log_fsync_seconds",
            "Latency of the durable append (write + flush + fsync).",
        )
        os.makedirs(data_dir, exist_ok=True)
        self.meta_path = os.path.join(data_dir, "meta.json")
        self.log_path = os.path.join(data_dir, "log.jsonl")
        self.snapshot_path = os.path.join(data_dir, "snapshot.json")
        self.term = 0
        self.voted_for: Optional[str] = None
        self.entries: List[LogEntry] = []
        self.base_index = 0
        self.base_term = 0
        self.snapshot_state: Optional[Dict[str, Any]] = None
        self._log_handle = None
        self._load()

    # -- loading --------------------------------------------------------

    def _load(self) -> None:
        """Resume from disk: meta, snapshot, then the log suffix.

        A torn final line in ``log.jsonl`` (crash mid-append) is
        discarded — by the fsync discipline it was never acknowledged
        to anyone, so dropping it is safe.
        """
        if os.path.exists(self.meta_path):
            with open(self.meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            self.term = int(meta.get("term", 0))
            self.voted_for = meta.get("voted_for")
        if os.path.exists(self.snapshot_path):
            with open(self.snapshot_path, "r", encoding="utf-8") as handle:
                snap = json.load(handle)
            self.base_index = int(snap["last_included_index"])
            self.base_term = int(snap["last_included_term"])
            self.snapshot_state = snap["machine"]
        self.entries = []
        if os.path.exists(self.log_path):
            with open(self.log_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        self.entries.append(LogEntry.from_dict(json.loads(line)))
                    except (ValueError, KeyError):
                        break  # torn tail from a crash mid-append

    # -- index helpers --------------------------------------------------

    @property
    def last_index(self) -> int:
        """Global index of the last entry (snapshot frontier if empty)."""
        return self.base_index + len(self.entries)

    def term_at(self, index: int) -> Optional[int]:
        """The term of global ``index`` (0 for the origin, None if gone)."""
        if index == 0:
            return 0
        if index == self.base_index:
            return self.base_term
        offset = index - self.base_index - 1
        if 0 <= offset < len(self.entries):
            return self.entries[offset].term
        return None

    def entry_at(self, index: int) -> Optional[LogEntry]:
        """The entry at global ``index`` (None if snapshotted away/absent)."""
        offset = index - self.base_index - 1
        if 0 <= offset < len(self.entries):
            return self.entries[offset]
        return None

    def slice_from(self, index: int) -> List[LogEntry]:
        """Entries with global index >= ``index`` (for AppendEntries)."""
        offset = max(index - self.base_index - 1, 0)
        return self.entries[offset:]

    # -- durable mutations ----------------------------------------------

    def set_term(self, term: int, voted_for: Optional[str]) -> None:
        """Durably record (term, vote) — *before* acting on either.

        This is the write that makes "at most one vote per term" hold
        across crashes; callers must not send a vote or a ballot until
        it returns.
        """
        self.term = int(term)
        self.voted_for = voted_for
        data = (
            canonical_json({"term": self.term, "voted_for": self.voted_for})
            + "\n"
        ).encode("utf-8")
        if self.fsync:
            _atomic_write(self.meta_path, data)
        else:
            with open(self.meta_path, "wb") as handle:
                handle.write(data)

    def append(self, new_entries: List[LogEntry]) -> None:
        """Append entries to the log, fsync'd before returning.

        An entry must be durable before the replica acknowledges it to
        the leader (or, on the leader, counts its own replica toward
        the quorum) — that ordering is the caller's contract.
        """
        if not new_entries:
            return
        started = time.monotonic()
        if self._log_handle is None:
            self._log_handle = open(self.log_path, "ab")
        payload = b"".join(
            (canonical_json(e.to_dict()) + "\n").encode("utf-8")
            for e in new_entries
        )
        self._log_handle.write(payload)
        self._log_handle.flush()
        if self.fsync:
            os.fsync(self._log_handle.fileno())
        self.entries.extend(new_entries)
        self._m_fsync.observe(time.monotonic() - started)

    def truncate_from(self, index: int) -> None:
        """Discard entries with global index >= ``index`` (conflict repair).

        Rewrites the log file atomically; the in-memory view and the
        file never disagree after return.
        """
        offset = max(index - self.base_index - 1, 0)
        if offset >= len(self.entries):
            return
        self.entries = self.entries[:offset]
        self._rewrite_log()

    def compact(
        self, upto_index: int, machine_state: Dict[str, Any]
    ) -> None:
        """Fold the prefix through ``upto_index`` into a snapshot.

        ``machine_state`` must be the state machine's state *exactly*
        after applying entry ``upto_index`` — only committed (hence
        immutable) prefixes may be compacted.  Snapshot first, then the
        trimmed log, then the in-memory base: any crash point replays
        to a consistent directory.
        """
        term = self.term_at(upto_index)
        if term is None or upto_index <= self.base_index:
            return
        snap = {
            "last_included_index": upto_index,
            "last_included_term": term,
            "machine": machine_state,
        }
        data = (canonical_json(snap) + "\n").encode("utf-8")
        if self.fsync:
            _atomic_write(self.snapshot_path, data)
        else:
            with open(self.snapshot_path, "wb") as handle:
                handle.write(data)
        self.entries = self.entries[upto_index - self.base_index :]
        self.base_index = upto_index
        self.base_term = term
        self.snapshot_state = machine_state
        self._rewrite_log()

    def install_snapshot(
        self,
        last_included_index: int,
        last_included_term: int,
        machine_state: Dict[str, Any],
    ) -> None:
        """Replace everything with a leader-shipped snapshot.

        Used when this replica's log is so far behind (or was
        compacted past on the leader) that AppendEntries can no longer
        find a common prefix; the whole local log is superseded.
        """
        snap = {
            "last_included_index": int(last_included_index),
            "last_included_term": int(last_included_term),
            "machine": machine_state,
        }
        data = (canonical_json(snap) + "\n").encode("utf-8")
        if self.fsync:
            _atomic_write(self.snapshot_path, data)
        else:
            with open(self.snapshot_path, "wb") as handle:
                handle.write(data)
        self.base_index = int(last_included_index)
        self.base_term = int(last_included_term)
        self.snapshot_state = machine_state
        self.entries = []
        self._rewrite_log()

    def _rewrite_log(self) -> None:
        """Atomically rewrite ``log.jsonl`` to match ``self.entries``."""
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None
        data = b"".join(
            (canonical_json(e.to_dict()) + "\n").encode("utf-8")
            for e in self.entries
        )
        if self.fsync:
            _atomic_write(self.log_path, data)
        else:
            with open(self.log_path, "wb") as handle:
                handle.write(data)

    def close(self) -> None:
        """Release the append handle (the directory stays resumable)."""
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None
