"""The explicit-state bounded model checker over the dist simulator.

:func:`check_model` exhaustively explores every execution of a Byzantine
agreement protocol (``eig`` or ``phase_king``) in which the adversary
performs at most ``bound`` corruption events drawn from a finite
:class:`~repro.verify.states.CorruptionAlphabet` — every two-faced flip
subset, every omission round, every crash time and partial reach — for
every general value and every faulty coalition in the requested family.
Invariants (:mod:`repro.verify.invariants`) are evaluated on
``Network.honest_outputs()`` at each terminal state.

The search is breadth-first over *states*, not paths: each reached
state is canonically hashed (:func:`~repro.verify.states.network_digest`)
and deduplicated through a NumPy-backed
:class:`~repro.verify.states.DigestStore` with budget dominance — a
state revisited with no more remaining corruption budget than before is
pruned, because the earlier visit could already do everything this one
can.  Exploration forks real :class:`~repro.dist.simulator.Network`
objects via the simulator's own deterministic
:meth:`~repro.dist.simulator.Network.fork` /
:meth:`~repro.dist.simulator.Network.step_round` hooks, so explored
executions are simulator executions by construction.  Three further
prunings keep small models in the milliseconds:

* *sibling reconstruction* — all children of one parent share their
  post-step node states (adversary actions only change the messages in
  flight), so the explorer steps the network once per parent, re-enacts
  message delivery for every corruption vector as pure data, and
  digests each candidate *before* materializing it; only states that
  survive deduplication pay for a
  :meth:`~repro.dist.simulator.Network.fork` (plus
  :meth:`~repro.dist.simulator.Network.set_pending_inboxes`);
* *exhausted-budget fast-forward* — a state with no corruption budget
  left (and no un-crashed choices pending) is deterministic, so it runs
  straight to the horizon without re-entering the frontier;
* *first-violation cut* — by default a config stops exploring once a
  violation is found (certification runs explore everything anyway).

Every counterexample is compiled to a
:class:`~repro.verify.traces.CounterexampleTrace`, re-executed through
the **unmodified** simulator to confirm it reproduces the violation
byte-for-byte, and 1-minimized by greedy event deletion before being
returned.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dist.agreement import EIGNode, PhaseKingNode
from repro.dist.simulator import Adversary, Message, Network, Node
from repro.verify.invariants import (
    BYZANTINE_AGREEMENT,
    Invariant,
    InvariantContext,
    first_violation,
)
from repro.verify.states import (
    CRASH,
    DEAD_ACTION,
    HONEST_ACTION,
    CorruptionAction,
    CorruptionAlphabet,
    DigestStore,
    apply_action,
    inboxes_bytes,
    nodes_bytes,
    state_digest,
)
from repro.verify.traces import CorruptionEvent, CounterexampleTrace, shrink_trace

__all__ = [
    "ModelConfig",
    "VerificationResult",
    "check_model",
    "coalition_family",
    "model_horizon",
]


def _build_eig(n: int, t: int, general_value: int) -> Tuple[List[Node], int]:
    nodes: List[Node] = [
        EIGNode(i, n, t, general_value if i == 0 else None) for i in range(n)
    ]
    return nodes, t + 3


def _build_phase_king(
    n: int, t: int, general_value: int
) -> Tuple[List[Node], int]:
    nodes: List[Node] = [
        PhaseKingNode(i, n, t, general_value if i == 0 else None)
        for i in range(n)
    ]
    return nodes, 2 * t + 4


_BUILDERS = {"eig": _build_eig, "phase_king": _build_phase_king}


def model_horizon(protocol: str, t: int) -> int:
    """The protocol's round horizon (its fixed running time)."""
    if protocol == "eig":
        return t + 3
    if protocol == "phase_king":
        return 2 * t + 4
    known = ", ".join(sorted(_BUILDERS))
    raise ValueError(f"unknown protocol {protocol!r}; known: {known}")


def coalition_family(
    n: int, t: int, coalitions: Any = "family"
) -> List[frozenset]:
    """Expand a coalition spec into concrete faulty sets.

    ``"family"`` is the placement family of
    :func:`repro.dist.agreement.search_for_disagreement` — the last
    ``t`` nodes, and a coalition led by the general — kept as the
    default for parity with the existing search.  ``"all"`` is every
    size-``t`` coalition; note that for phase king at ``n = 4t`` this
    is strictly stronger (see ``docs/verify.md``: a faulty final-phase
    king breaks agreement at ``(4, 1)``, which the hand-picked family
    misses).  Any other value is taken as an iterable of explicit
    coalitions.
    """
    if t == 0:
        return [frozenset()]
    if coalitions == "family":
        family = [frozenset(range(n - t, n))]
        general_led = frozenset({0}) | frozenset(range(n - t + 1, n))
        if general_led not in family:
            family.append(general_led)
        return family
    if coalitions == "all":
        return [
            frozenset(combo)
            for combo in itertools.combinations(range(n), t)
        ]
    explicit = [frozenset(int(i) for i in coalition) for coalition in coalitions]
    for coalition in explicit:
        if any(not 0 <= i < n for i in coalition):
            raise ValueError(
                f"coalition {sorted(coalition)} names nodes outside 0..{n - 1}"
            )
    return explicit


class _ControlledAdversary(Adversary):
    """The explorer's programmable adversary: applies a per-round plan.

    ``plan`` maps faulty node id to the :class:`CorruptionAction` to
    apply this round (missing ids act honestly); ``capture`` records
    *every* node's uncorrupted outbox as it passes through — honest
    traffic included — which is how the explorer reconstructs sibling
    states' deliveries without stepping once per action vector.
    Contains no closures, so networks carrying it take
    :meth:`Network.fork`'s fast pickle path.
    """

    def __init__(self, faulty: Iterable[int]) -> None:
        super().__init__(faulty)
        self.plan: Dict[int, CorruptionAction] = {}
        self.capture = False
        self.captured: Dict[int, List[Any]] = {}

    def corrupt_outbox(self, node_id, round_number, outbox, n_nodes):
        """Capture the honest outbox, then apply the planned action."""
        if self.capture:
            self.captured[node_id] = list(outbox)
        if not self.is_faulty(node_id):
            return list(outbox)
        action = self.plan.get(node_id, HONEST_ACTION)
        return apply_action(action, outbox)


@dataclass
class _StateRecord:
    """One frontier state: a forked network plus search bookkeeping."""

    net: Network
    crashed: Dict[int, int]
    budget: int
    events: Tuple[CorruptionEvent, ...]


@dataclass
class _Candidate:
    """A successor state digested but not yet materialized.

    ``inboxes is None`` means the candidate *is* the stepped scout
    network; otherwise it is the scout's fork with ``inboxes`` swapped
    in via :meth:`Network.set_pending_inboxes` (sibling states share
    their post-step node states and differ only in deliveries).
    """

    scout: Network
    inboxes: Optional[List[List[Message]]]
    crashed: Dict[int, int]
    budget: int
    events: Tuple[CorruptionEvent, ...]
    digest: bytes


@dataclass(frozen=True)
class ModelConfig:
    """One root instance: a general value plus a faulty coalition."""

    protocol: str
    n: int
    t: int
    general_value: int
    faulty: frozenset

    def context(self) -> InvariantContext:
        """The invariant-evaluation context for this instance."""
        return InvariantContext(
            n=self.n,
            t=self.t,
            general_value=self.general_value,
            faulty=self.faulty,
        )


@dataclass
class VerificationResult:
    """The checker's verdict plus exploration statistics.

    ``ok`` means every terminal state of every config satisfied every
    invariant — exhaustively, up to the bound and alphabet.  On failure
    ``counterexample`` holds the shrunk, replay-verified trace.
    """

    ok: bool
    protocol: str
    n: int
    t: int
    bound: int
    invariants: Tuple[str, ...]
    configs: Tuple[Dict[str, Any], ...] = ()
    states_explored: int = 0
    transitions: int = 0
    terminal_states: int = 0
    elapsed_s: float = 0.0
    counterexample: Optional[CounterexampleTrace] = None
    truncated: bool = False

    def summary(self) -> str:
        """One-line verdict, e.g. for the CLI and scenario tables."""
        verdict = "PASS" if self.ok else "FAIL"
        tail = ""
        if self.counterexample is not None:
            tail = (
                f" — {self.counterexample.invariant} violated with "
                f"{len(self.counterexample.events)} corruption event(s)"
            )
        if self.truncated:
            tail += " [truncated: state cap hit]"
        return (
            f"{verdict} {self.protocol} n={self.n} t={self.t} "
            f"bound={self.bound}: {self.states_explored} states, "
            f"{self.transitions} transitions, "
            f"{self.terminal_states} terminal, "
            f"{self.elapsed_s * 1000.0:.1f} ms{tail}"
        )

    def to_json_obj(self) -> Dict[str, Any]:
        """Plain-JSON form of the verdict and statistics."""
        obj: Dict[str, Any] = {
            "ok": self.ok,
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "bound": self.bound,
            "invariants": list(self.invariants),
            "configs": [dict(c) for c in self.configs],
            "states_explored": self.states_explored,
            "transitions": self.transitions,
            "terminal_states": self.terminal_states,
            "elapsed_s": round(self.elapsed_s, 6),
            "truncated": self.truncated,
        }
        if self.counterexample is not None:
            obj["counterexample"] = self.counterexample.to_json_obj()
        return obj


class _StateCapReached(Exception):
    """Internal signal: the per-config state cap was exceeded."""


class _ConfigExplorer:
    """BFS over one :class:`ModelConfig`'s bounded state space."""

    def __init__(
        self,
        config: ModelConfig,
        bound: int,
        invariants: Sequence[Invariant],
        alphabet: CorruptionAlphabet,
        max_states: int,
        stop_on_violation: bool,
    ) -> None:
        self.config = config
        self.bound = bound
        self.invariants = tuple(invariants)
        self.alphabet = alphabet
        self.max_states = max_states
        self.stop_on_violation = stop_on_violation
        self.horizon = model_horizon(config.protocol, config.t)
        self.ctx = config.context()
        self.actions_by_node = {
            node: alphabet.actions_for(node, config.n, config.faulty)
            for node in sorted(config.faulty)
        }
        self.store = DigestStore()
        self._msg_cache: Dict[Any, bytes] = {}
        self.states = 0
        self.transitions = 0
        self.terminals = 0
        self.truncated = False
        self.violations: List[CounterexampleTrace] = []

    # -- lifecycle -----------------------------------------------------

    def root(self) -> _StateRecord:
        """Build the round-0 network for this config."""
        nodes, _ = _BUILDERS[self.config.protocol](
            self.config.n, self.config.t, self.config.general_value
        )
        net = Network(nodes, _ControlledAdversary(self.config.faulty))
        return _StateRecord(net=net, crashed={}, budget=self.bound, events=())

    def run(self) -> None:
        """Explore to the horizon (or the first violation, if cutting)."""
        frontier = [self.root()]
        self.states = 1
        try:
            for _ in range(self.horizon):
                if not frontier:
                    break
                candidates: List[_Candidate] = []
                for record in frontier:
                    candidates.extend(self._expand(record))
                keep = self.store.admit(
                    [cand.digest for cand in candidates],
                    [cand.budget for cand in candidates],
                )
                # Materialize every survivor before processing any: a
                # scout that fast-forwards mutates the very network its
                # siblings fork from.
                admitted = [
                    self._materialize(candidates[int(index)])
                    for index in keep
                ]
                frontier = []
                for child in admitted:
                    self.states += 1
                    if self.states > self.max_states:
                        raise _StateCapReached
                    if child.net.round_number >= self.horizon:
                        self._check_terminal(child)
                        if self.stop_on_violation and self.violations:
                            return
                    elif self._is_deterministic(child):
                        self._fast_forward(child)
                        if self.stop_on_violation and self.violations:
                            return
                    else:
                        frontier.append(child)
        except _StateCapReached:
            self.truncated = True

    # -- expansion -----------------------------------------------------

    def _deliver(
        self, outboxes: Dict[int, List[Any]], n_total: int
    ) -> List[List[Message]]:
        """Re-enact ``Network._step_round`` delivery for given outboxes.

        Stamps the true sender on every message, drops out-of-range
        recipients, and buckets by recipient in sender order — exactly
        what one simulator round does with the same post-corruption
        outboxes, so the reconstructed inboxes are byte-identical to a
        stepped network's.
        """
        inboxes: List[List[Message]] = [[] for _ in range(n_total)]
        for sender in range(n_total):
            for message in outboxes.get(sender, ()):
                if 0 <= message.recipient < n_total:
                    inboxes[message.recipient].append(
                        Message(sender, message.recipient, message.payload)
                    )
        return inboxes

    def _materialize(self, cand: _Candidate) -> _StateRecord:
        """Turn an admitted candidate into a steppable frontier record."""
        if cand.inboxes is None:
            net = cand.scout
        else:
            net = cand.scout.fork()
            net.set_pending_inboxes(cand.inboxes)
        return _StateRecord(
            net=net,
            crashed=cand.crashed,
            budget=cand.budget,
            events=cand.events,
        )

    def _expand(self, record: _StateRecord) -> List[_Candidate]:
        """All distinct one-round successor candidates of one state.

        Pays for exactly one fork + step (the *scout*, which applies
        only the forced post-crash actions while capturing every node's
        honest outbox).  Each corruption vector's successor is then
        built as pure data — corrupted outboxes re-delivered through
        :meth:`_deliver` — and digested without touching a network.
        Within-parent duplicates keep the max-budget representative.
        """
        config = self.config
        round_number = record.net.round_number
        cache = self._msg_cache
        forced_plan = {
            node: DEAD_ACTION for node in record.crashed
        }
        scout = record.net.fork()
        adversary: _ControlledAdversary = scout.adversary
        adversary.plan = dict(forced_plan)
        adversary.capture = True
        adversary.captured = {}
        scout.step_round()
        captured = adversary.captured
        adversary.capture = False
        adversary.plan = {}
        self.transitions += 1
        node_blob = nodes_bytes(scout.nodes)
        scout_digest = state_digest(
            scout.round_number,
            node_blob,
            inboxes_bytes(scout.pending_inboxes(), cache),
            record.crashed,
        )
        candidates: Dict[bytes, _Candidate] = {
            scout_digest: _Candidate(
                scout=scout,
                inboxes=None,
                crashed=dict(record.crashed),
                budget=record.budget,
                events=record.events,
                digest=scout_digest,
            )
        }
        live = [
            node for node in sorted(config.faulty) if node not in record.crashed
        ]
        if record.budget <= 0 or not live:
            return list(candidates.values())
        n_total = len(scout.nodes)
        # Honest (and crashed: they deliver nothing) outboxes are shared
        # by every sibling; only live faulty nodes' entries vary.
        base_outboxes: Dict[int, List[Any]] = {
            node_id: captured.get(node_id, [])
            for node_id in range(n_total)
            if node_id not in config.faulty
        }
        choices = [self.actions_by_node[node] for node in live]
        for vector in itertools.product(*choices):
            cost = sum(
                1 for action in vector if action.is_corruption
            )
            if cost == 0 or cost > record.budget:
                continue
            outboxes = dict(base_outboxes)
            for node, action in zip(live, vector):
                outboxes[node] = apply_action(action, captured.get(node, []))
            crashed = dict(record.crashed)
            events = list(record.events)
            for node, action in zip(live, vector):
                if not action.is_corruption:
                    continue
                events.append(
                    CorruptionEvent(
                        round=round_number, node=node, action=action
                    )
                )
                if action.kind == CRASH:
                    crashed[node] = round_number
            inboxes = self._deliver(outboxes, n_total)
            digest = state_digest(
                scout.round_number,
                node_blob,
                inboxes_bytes(inboxes, cache),
                crashed,
            )
            budget = record.budget - cost
            prior = candidates.get(digest)
            if prior is not None and prior.budget >= budget:
                continue
            if prior is None:
                self.transitions += 1
            candidates[digest] = _Candidate(
                scout=scout,
                inboxes=inboxes,
                crashed=crashed,
                budget=budget,
                events=tuple(events),
                digest=digest,
            )
        return list(candidates.values())

    def _is_deterministic(self, record: _StateRecord) -> bool:
        """Whether no adversary choice remains from this state on."""
        if record.budget <= 0:
            return True
        return all(
            node in record.crashed for node in self.config.faulty
        )

    def _fast_forward(self, record: _StateRecord) -> None:
        """Run a choice-free state straight to the horizon and check it."""
        net = record.net
        adversary: _ControlledAdversary = net.adversary
        adversary.plan = {node: DEAD_ACTION for node in record.crashed}
        while net.round_number < self.horizon:
            net.step_round()
            self.transitions += 1
        adversary.plan = {}
        self._check_terminal(record)

    def _check_terminal(self, record: _StateRecord) -> None:
        """Evaluate the invariants on one horizon state."""
        self.terminals += 1
        outputs = record.net.honest_outputs()
        violated = first_violation(self.invariants, outputs, self.ctx)
        if violated is None:
            return
        trace = CounterexampleTrace(
            protocol=self.config.protocol,
            n=self.config.n,
            t=self.config.t,
            general_value=self.config.general_value,
            faulty=tuple(sorted(self.config.faulty)),
            invariant=violated,
            events=record.events,
            bound=self.bound,
            honest_outputs=dict(outputs),
        )
        self.violations.append(trace)


def check_model(
    protocol: str,
    n: int,
    t: int,
    *,
    bound: int,
    general_values: Sequence[int] = (0, 1),
    coalitions: Any = "family",
    invariants: Sequence[Invariant] = BYZANTINE_AGREEMENT,
    alphabet: Optional[CorruptionAlphabet] = None,
    max_states: int = 500_000,
    stop_on_violation: bool = True,
    shrink: bool = True,
) -> VerificationResult:
    """Exhaustively check a protocol up to a corruption-event bound.

    Explores every config (general value x faulty coalition), every
    schedule of at most ``bound`` corruption events from ``alphabet``.
    Returns a :class:`VerificationResult`; on violation its
    ``counterexample`` is a :class:`~repro.verify.traces.CounterexampleTrace`
    that has been (1) replayed through the unmodified simulator and
    confirmed to reproduce the same honest outputs and the same
    invariant violation, and (2) greedily shrunk to a 1-minimal event
    set (when ``shrink``).

    Raises ``RuntimeError`` if a checker-found violation fails to
    reproduce on replay — that would mean explorer and simulator
    semantics diverged, which is a bug, never a finding.
    """
    if protocol not in _BUILDERS:
        known = ", ".join(sorted(_BUILDERS))
        raise ValueError(f"unknown protocol {protocol!r}; known: {known}")
    if n < 2:
        raise ValueError(f"need at least two players, got n={n}")
    if not 0 <= t < n:
        raise ValueError(f"need 0 <= t < n, got n={n}, t={t}")
    if bound < 0:
        raise ValueError(f"bound must be >= 0, got {bound}")
    alphabet = alphabet if alphabet is not None else CorruptionAlphabet()
    started = time.perf_counter()
    result = VerificationResult(
        ok=True,
        protocol=protocol,
        n=n,
        t=t,
        bound=bound,
        invariants=tuple(inv.name for inv in invariants),
    )
    configs: List[Dict[str, Any]] = []
    for general_value in general_values:
        for faulty in coalition_family(n, t, coalitions):
            config = ModelConfig(
                protocol=protocol,
                n=n,
                t=t,
                general_value=int(general_value),
                faulty=faulty,
            )
            explorer = _ConfigExplorer(
                config,
                bound,
                invariants,
                alphabet,
                max_states,
                stop_on_violation,
            )
            explorer.run()
            result.states_explored += explorer.states
            result.transitions += explorer.transitions
            result.terminal_states += explorer.terminals
            result.truncated = result.truncated or explorer.truncated
            configs.append(
                {
                    "general_value": config.general_value,
                    "faulty": sorted(config.faulty),
                    "states": explorer.states,
                    "violations": len(explorer.violations),
                }
            )
            if explorer.violations and result.counterexample is None:
                trace = explorer.violations[0]
                replayed = trace.replay(record_trace=False)
                if dict(replayed.outputs) != dict(trace.honest_outputs):
                    raise RuntimeError(
                        "counterexample replay diverged from exploration: "
                        f"{dict(replayed.outputs)} != "
                        f"{dict(trace.honest_outputs)} for\n{trace.describe()}"
                    )
                if not trace.replay_violates(replayed):
                    raise RuntimeError(
                        "counterexample replay no longer violates "
                        f"{trace.invariant!r}:\n{trace.describe()}"
                    )
                if shrink:
                    trace = shrink_trace(trace)
                result.counterexample = trace
                result.ok = False
                if stop_on_violation:
                    break
        if stop_on_violation and result.counterexample is not None:
            break
    result.configs = tuple(configs)
    result.elapsed_s = time.perf_counter() - started
    return result
