"""Replayable, shrinkable counterexample traces.

A :class:`CounterexampleTrace` is the checker's violation artifact: the
model instance (protocol, ``n``, ``t``, general value, faulty
coalition) plus the exact sequence of :class:`CorruptionEvent`\\ s the
adversary performed.  It compiles to a concrete adversary for the
*unmodified* simulator — a :class:`repro.dist.faults.CrashAdversary`
(equivalently a :class:`~repro.dist.faults.CrashSchedule`) when every
event is a crash, a :class:`~repro.dist.faults.ScriptedAdversary`
otherwise — so :meth:`CounterexampleTrace.replay` re-executes the
violation through the same ``run_*_agreement`` entry points every test
and benchmark uses, byte-for-byte.

Traces serialize to plain JSON (:meth:`to_json_obj` / ``save`` /
``load``) and shrink by greedy deletion (:func:`shrink_trace`): drop one
corruption event at a time, keep the deletion whenever the replayed
execution still violates the same invariant, repeat to a fixed point.
The result is 1-minimal — removing any single remaining event makes the
violation disappear.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.dist.agreement import (
    AgreementOutcome,
    run_eig_agreement,
    run_phase_king_agreement,
)
from repro.dist.faults import CrashAdversary, CrashSchedule, ScriptedAdversary
from repro.dist.simulator import Adversary
from repro.verify.invariants import (
    InvariantContext,
    first_violation,
    get_invariant,
)
from repro.verify.states import (
    CRASH,
    CorruptionAction,
    apply_action,
)

__all__ = [
    "CorruptionEvent",
    "CounterexampleTrace",
    "PROTOCOL_RUNNERS",
    "shrink_trace",
]

PROTOCOL_RUNNERS = {
    "eig": run_eig_agreement,
    "phase_king": run_phase_king_agreement,
}


@dataclass(frozen=True)
class CorruptionEvent:
    """One adversary choice: ``node`` applied ``action`` in ``round``."""

    round: int
    node: int
    action: CorruptionAction

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``r3 node1 flip->[3]``."""
        return f"r{self.round} node{self.node} {self.action.describe()}"

    def to_json_obj(self) -> Dict[str, Any]:
        """Plain-JSON form (inverse of :meth:`from_json_obj`)."""
        return {
            "round": self.round,
            "node": self.node,
            "action": self.action.to_json_obj(),
        }

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, Any]) -> "CorruptionEvent":
        """Rebuild an event from its :meth:`to_json_obj` form."""
        return cls(
            round=int(obj["round"]),
            node=int(obj["node"]),
            action=CorruptionAction.from_json_obj(obj["action"]),
        )


class _EventScript:
    """The compiled, picklable script of a trace's corruption events.

    Callable with the :class:`~repro.dist.faults.ScriptedAdversary`
    signature.  Crash events persist (dead from the crash round on, with
    the recorded partial reach in the crash round itself — identical to
    :class:`~repro.dist.faults.CrashAdversary`); every other event is a
    single-round :func:`repro.verify.states.apply_action`.
    """

    def __init__(self, events: Tuple[CorruptionEvent, ...]) -> None:
        self.table: Dict[Tuple[int, int], CorruptionAction] = {}
        self.crash_rounds: Dict[int, int] = {}
        self.crash_reach: Dict[int, int] = {}
        for event in events:
            if event.action.kind == CRASH:
                self.crash_rounds[event.node] = event.round
                self.crash_reach[event.node] = event.action.reach
            else:
                self.table[(event.node, event.round)] = event.action

    def __call__(self, node_id, round_number, honest_outbox, n_nodes):
        crash = self.crash_rounds.get(node_id)
        if crash is not None and round_number >= crash:
            if round_number > crash:
                return []
            reach = self.crash_reach.get(node_id, 0)
            return [m for m in honest_outbox if m.recipient < reach]
        action = self.table.get((node_id, round_number))
        if action is None:
            return list(honest_outbox)
        return apply_action(action, honest_outbox)


@dataclass(frozen=True)
class CounterexampleTrace:
    """A minimal, replayable witness of an invariant violation.

    ``events`` is the adversary's full play, in round order; ``seed``
    rides along for forward compatibility with randomized alphabet
    extensions (the current alphabet is fully deterministic, so replay
    never consumes it).
    """

    protocol: str
    n: int
    t: int
    general_value: int
    faulty: Tuple[int, ...]
    invariant: str
    events: Tuple[CorruptionEvent, ...]
    bound: int = 0
    seed: int = 0
    honest_outputs: Mapping[int, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        crashes = [e.node for e in self.events if e.action.kind == CRASH]
        if len(crashes) != len(set(crashes)):
            raise ValueError("a node cannot crash twice in one trace")

    # -- compilation to simulator adversaries --------------------------

    def is_crash_only(self) -> bool:
        """Whether every event is a crash (fail-stop counterexample)."""
        return bool(self.events) and all(
            event.action.kind == CRASH for event in self.events
        )

    def crash_schedule(self) -> Optional[CrashSchedule]:
        """The trace as a :class:`CrashSchedule`, if crash-only."""
        if not self.is_crash_only():
            return None
        return CrashSchedule(
            {event.node: event.round for event in self.events}
        )

    def to_adversary(self) -> Adversary:
        """Compile to a concrete adversary for the unmodified simulator.

        Crash-only traces become a
        :class:`~repro.dist.faults.CrashAdversary` (the
        :class:`~repro.dist.faults.CrashSchedule` form of the attack);
        anything else becomes a
        :class:`~repro.dist.faults.ScriptedAdversary` over the event
        table.
        """
        if self.is_crash_only():
            return CrashAdversary(
                self.faulty,
                crash_round={e.node: e.round for e in self.events},
                partial_reach={
                    e.node: e.action.reach for e in self.events
                },
            )
        return ScriptedAdversary(self.faulty, _EventScript(self.events))

    # -- replay --------------------------------------------------------

    def replay(self, record_trace: bool = True) -> AgreementOutcome:
        """Re-execute the attack through the unmodified simulator.

        Runs the protocol's standard entry point
        (:data:`PROTOCOL_RUNNERS`) with the compiled adversary; the
        returned outcome's honest outputs reproduce the checker's
        explored execution byte-for-byte.
        """
        try:
            runner = PROTOCOL_RUNNERS[self.protocol]
        except KeyError:
            known = ", ".join(sorted(PROTOCOL_RUNNERS))
            raise ValueError(
                f"unknown protocol {self.protocol!r}; known: {known}"
            ) from None
        return runner(
            self.n,
            self.t,
            self.general_value,
            adversary=self.to_adversary(),
            record_trace=record_trace,
        )

    def replay_violates(
        self, outcome: Optional[AgreementOutcome] = None
    ) -> bool:
        """Whether a (fresh or given) replay violates ``self.invariant``."""
        if outcome is None:
            outcome = self.replay(record_trace=False)
        ctx = InvariantContext(
            n=self.n,
            t=self.t,
            general_value=self.general_value,
            faulty=frozenset(self.faulty),
        )
        violated = first_violation(
            [get_invariant(self.invariant)], outcome.outputs, ctx
        )
        return violated == self.invariant

    def describe(self) -> str:
        """Multi-line human-readable rendering of the whole trace."""
        lines = [
            f"{self.protocol} n={self.n} t={self.t} "
            f"general_value={self.general_value} "
            f"faulty={sorted(self.faulty)} violates {self.invariant!r} "
            f"({len(self.events)} corruption events, bound {self.bound})"
        ]
        lines.extend(f"  {event.describe()}" for event in self.events)
        if self.honest_outputs:
            lines.append(f"  honest outputs: {dict(self.honest_outputs)}")
        return "\n".join(lines)

    # -- serialization -------------------------------------------------

    def to_json_obj(self) -> Dict[str, Any]:
        """Plain-JSON form (inverse of :meth:`from_json_obj`)."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "general_value": self.general_value,
            "faulty": list(self.faulty),
            "invariant": self.invariant,
            "bound": self.bound,
            "seed": self.seed,
            "events": [event.to_json_obj() for event in self.events],
            "honest_outputs": {
                str(node): value
                for node, value in self.honest_outputs.items()
            },
        }

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, Any]) -> "CounterexampleTrace":
        """Rebuild a trace from its :meth:`to_json_obj` form."""
        return cls(
            protocol=str(obj["protocol"]),
            n=int(obj["n"]),
            t=int(obj["t"]),
            general_value=int(obj["general_value"]),
            faulty=tuple(int(x) for x in obj["faulty"]),
            invariant=str(obj["invariant"]),
            bound=int(obj.get("bound", 0)),
            seed=int(obj.get("seed", 0)),
            events=tuple(
                CorruptionEvent.from_json_obj(e) for e in obj["events"]
            ),
            honest_outputs={
                int(node): value
                for node, value in obj.get("honest_outputs", {}).items()
            },
        )

    def save(self, path: str) -> None:
        """Write the trace as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_obj(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "CounterexampleTrace":
        """Read a trace saved by :meth:`save`."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_json_obj(json.load(handle))


def shrink_trace(trace: CounterexampleTrace) -> CounterexampleTrace:
    """Greedy deletion: 1-minimize a trace's corruption events.

    Repeatedly tries dropping each event; a deletion sticks whenever the
    replayed execution still violates the same invariant.  Loops to a
    fixed point, so the result is 1-minimal.  Each surviving candidate's
    honest outputs are re-recorded from its own replay.
    """
    events: List[CorruptionEvent] = list(trace.events)
    current = trace
    changed = True
    while changed:
        changed = False
        for index in range(len(events)):
            candidate_events = tuple(
                events[:index] + events[index + 1 :]
            )
            candidate = replace(current, events=candidate_events)
            outcome = candidate.replay(record_trace=False)
            if candidate.replay_violates(outcome):
                current = replace(
                    candidate, honest_outputs=dict(outcome.outputs)
                )
                events = list(candidate_events)
                changed = True
                break
    return current
