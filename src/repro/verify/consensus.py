"""Bounded model checking of the replicated control plane's consensus.

The object under test is :class:`repro.cluster.replica.RaftCore` — the
*same* pure message-in/messages-out class a live
:class:`~repro.cluster.replica.Replica` runs — plugged into
:class:`~repro.cluster.replica.MemoryLog` so durability is modeled
exactly: a crash discards the volatile core (role, vote tally, follower
cursors, volatile ``commit_index``) and keeps the log (term, vote,
entries), mirroring what a real ``SIGKILL`` preserves on disk.

The checker enumerates every interleaving of a small action alphabet —
election timeouts, message deliveries, leader heartbeats, client
appends, crashes and restarts — up to a depth bound, deduplicating
states by canonical-JSON sha256, and checks two safety invariants in
every reached state:

* ``election_safety`` — no term ever elects two leaders (tracked as
  history: once two distinct nodes have *ever* led the same term, the
  run is condemned even if one has since stepped down);
* ``committed_entries_never_lost`` — once any node's ``commit_index``
  covers a log index, that (index, term) binding is permanent: no node
  may later commit a different entry there, and no leader may hold a
  log that contradicts or misses it.

Violations come back as a 1-minimized, replayable
:class:`ConsensusTrace` — the exact action list re-executes through
fresh cores (:meth:`ConsensusTrace.replay`) and must reproduce the
violation, so a reported bug is never an artifact of the search.

The model is *bounded and finite* on purpose: at most ``crashes`` crash
events, ``appends`` client commands, and ``depth`` actions per
execution.  The in-flight network mirrors the real transport
(synchronous per-peer HTTP channels): messages between one ordered
pair of nodes deliver in FIFO order and duplicate in-flight sends
merge; *cross*-channel interleaving is fully explored, and message
loss is modeled by crashing the destination (a delivery into a crash
vanishes).  Within those bounds the search is exhaustive.

Quickstart::

    from repro.verify.consensus import check_consensus

    result = check_consensus(replicas=3, crashes=1, depth=8)
    assert result.ok, result.counterexample.describe()

CLI (the acceptance gate CI runs)::

    python -m repro.verify --protocol replica --replicas 3 --crashes 1
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.cluster.log import LogEntry
from repro.cluster.replica import MemoryLog, RaftCore

__all__ = [
    "COMMIT_SAFETY",
    "CONSENSUS_INVARIANTS",
    "ELECTION_SAFETY",
    "ConsensusAction",
    "ConsensusResult",
    "ConsensusTrace",
    "check_consensus",
]

ELECTION_SAFETY = "election_safety"
COMMIT_SAFETY = "committed_entries_never_lost"
CONSENSUS_INVARIANTS: Tuple[str, ...] = (ELECTION_SAFETY, COMMIT_SAFETY)

CoreFactory = Callable[[str, List[str], Any], Any]


def _canonical(obj: Any) -> str:
    """Canonical JSON (sorted keys, compact) — the dedup currency."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ConsensusAction:
    """One scheduler choice in the modeled execution.

    ``kind`` is one of ``timeout`` / ``heartbeat`` / ``append`` /
    ``crash`` / ``restart`` (all taking ``node``) or ``deliver``
    (taking the full ``message`` dict, so a shrunk trace still names
    *which* message it meant even after earlier sends were deleted).
    """

    kind: str
    node: Optional[int] = None
    message: Optional[Mapping[str, Any]] = None

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``deliver vote_req n0->n1``."""
        if self.kind == "deliver":
            m = self.message or {}
            return (
                f"deliver {m.get('type')} {m.get('from')}->{m.get('to')} "
                f"term={m.get('term')}"
            )
        return f"{self.kind} n{self.node}"

    def to_json_obj(self) -> Dict[str, Any]:
        """Plain-JSON form (inverse of :meth:`from_json_obj`)."""
        obj: Dict[str, Any] = {"kind": self.kind}
        if self.node is not None:
            obj["node"] = self.node
        if self.message is not None:
            obj["message"] = dict(self.message)
        return obj

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, Any]) -> "ConsensusAction":
        """Rebuild an action from its :meth:`to_json_obj` form."""
        node = obj.get("node")
        return cls(
            kind=str(obj["kind"]),
            node=None if node is None else int(node),
            message=obj.get("message"),
        )


class _ModelState:
    """One explored world: cores + durable logs + network + monitors.

    ``cores[i] is None`` means node *i* is crashed — its volatile state
    is gone but ``logs[i]`` (the modeled disk) survives for restart.
    The two safety monitors (``leaders_by_term``, ``committed``) are
    *history* accumulated along the path; they ride inside the dedup
    digest so two worlds with identical node state but different
    obligations are never conflated.
    """

    def __init__(self, replicas: int, core_factory: CoreFactory) -> None:
        self.ids = [f"n{i}" for i in range(replicas)]
        self.core_factory = core_factory
        self.logs = [MemoryLog() for _ in self.ids]
        self.cores: List[Optional[Any]] = [
            core_factory(self.ids[i], self.ids, self.logs[i])
            for i in range(replicas)
        ]
        self.network: List[Dict[str, Any]] = []
        self.appends_done = 0
        self.crashes_done = 0
        self.leaders_by_term: Dict[int, set] = {}
        # index -> (entry term, lowest term any observer committed it in)
        self.committed: Dict[int, Tuple[int, int]] = {}

    def clone(self) -> "_ModelState":
        """An independent copy (the checker forks before each action)."""
        other = _ModelState.__new__(_ModelState)
        other.ids = self.ids
        other.core_factory = self.core_factory
        other.logs = [log.clone() for log in self.logs]
        other.cores = []
        for i, core in enumerate(self.cores):
            if core is None:
                other.cores.append(None)
                continue
            copy = self.core_factory(self.ids[i], self.ids, other.logs[i])
            copy.role = core.role
            copy.leader_id = core.leader_id
            copy.commit_index = core.commit_index
            copy.votes = set(core.votes)
            copy.next_index = dict(core.next_index)
            copy.match_index = dict(core.match_index)
            other.cores.append(copy)
        other.network = [dict(m) for m in self.network]
        other.appends_done = self.appends_done
        other.crashes_done = self.crashes_done
        other.leaders_by_term = {
            term: set(nodes) for term, nodes in self.leaders_by_term.items()
        }
        other.committed = dict(self.committed)
        return other

    def digest(self) -> bytes:
        """sha256 over the canonical state (dedup identity)."""
        nodes = []
        for i, core in enumerate(self.cores):
            log = self.logs[i]
            node: Dict[str, Any] = {
                "term": log.term,
                "vote": log.voted_for,
                "entries": [[e.term, e.cmd] for e in log.entries],
            }
            if core is None:
                node["crashed"] = True
            else:
                node.update(
                    role=core.role,
                    leader=core.leader_id,
                    commit=core.commit_index,
                    votes=sorted(core.votes),
                    ni=sorted(core.next_index.items()),
                    mi=sorted(core.match_index.items()),
                )
            nodes.append(node)
        channels: Dict[str, List[str]] = {}
        for message in self.network:  # list order == send order
            key = f"{message.get('from')}>{message.get('to')}"
            channels.setdefault(key, []).append(_canonical(message))
        payload = _canonical(
            {
                "nodes": nodes,
                "net": channels,
                "appends": self.appends_done,
                "crashes": self.crashes_done,
                "leaders": {
                    str(t): sorted(v)
                    for t, v in self.leaders_by_term.items()
                },
                "committed": {
                    str(i): t for i, t in self.committed.items()
                },
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).digest()

    # -- transition relation -------------------------------------------

    def _send(self, messages: List[Dict[str, Any]]) -> None:
        """Merge provoked messages into the in-flight set."""
        have = {_canonical(m) for m in self.network}
        for message in messages:
            key = _canonical(message)
            if key not in have:
                have.add(key)
                self.network.append(message)

    def _heads(self) -> List[Dict[str, Any]]:
        """The deliverable messages: one FIFO head per (from, to) channel."""
        heads: Dict[Tuple[Any, Any], Dict[str, Any]] = {}
        for message in self.network:  # list order == send order
            channel = (message.get("from"), message.get("to"))
            heads.setdefault(channel, message)
        return [heads[key] for key in sorted(heads)]

    def enabled(self, crashes: int, appends: int) -> List[ConsensusAction]:
        """Every action the scheduler may take next, in canonical order."""
        actions: List[ConsensusAction] = []
        for message in self._heads():
            actions.append(ConsensusAction("deliver", message=message))
        for i, core in enumerate(self.cores):
            if core is None:
                actions.append(ConsensusAction("restart", node=i))
                continue
            if core.role == "leader":
                actions.append(ConsensusAction("heartbeat", node=i))
                if self.appends_done < appends:
                    actions.append(ConsensusAction("append", node=i))
            else:
                actions.append(ConsensusAction("timeout", node=i))
            if self.crashes_done < crashes:
                actions.append(ConsensusAction("crash", node=i))
        return actions

    def apply(self, action: ConsensusAction) -> None:
        """Mutate this state by one action (no-op if now inapplicable).

        The no-op tolerance is what makes shrinking sound: deleting an
        earlier action may disable a later one, and the later one must
        then do nothing rather than raise.
        """
        if action.kind == "deliver":
            # Deliver only if this exact message is currently the FIFO
            # head of its channel (shrinking can invalidate either).
            key = _canonical(action.message)
            wanted = (
                (action.message or {}).get("from"),
                (action.message or {}).get("to"),
            )
            index = next(
                (
                    k
                    for k, m in enumerate(self.network)
                    if (m.get("from"), m.get("to")) == wanted
                ),
                None,
            )
            if index is None or _canonical(self.network[index]) != key:
                return
            message = self.network.pop(index)
            try:
                target = self.ids.index(message.get("to"))
            except ValueError:
                return
            core = self.cores[target]
            if core is None:
                return  # delivered into a crash: the message is lost
            self._send(core.on_message(message))
            return
        if action.node is None:
            return
        i = action.node
        if not 0 <= i < len(self.cores):
            return
        core = self.cores[i]
        if action.kind == "timeout" and core is not None:
            if core.role != "leader":
                self._send(core.start_election())
        elif action.kind == "heartbeat" and core is not None:
            if core.role == "leader":
                self._send(
                    [core.make_append(peer) for peer in core.peers]
                )
        elif action.kind == "append" and core is not None:
            if core.role == "leader":
                core.client_append({"op": "cmd", "k": self.appends_done})
                self.appends_done += 1
        elif action.kind == "crash" and core is not None:
            self.cores[i] = None
            self.crashes_done += 1
        elif action.kind == "restart" and core is None:
            self.cores[i] = self.core_factory(
                self.ids[i], self.ids, self.logs[i]
            )

    # -- safety monitors -----------------------------------------------

    def violation(self) -> Optional[Tuple[str, str]]:
        """Update the monitors; returns (invariant, detail) on violation."""
        for core in self.cores:
            if core is None or core.role != "leader":
                continue
            holders = self.leaders_by_term.setdefault(core.term, set())
            holders.add(core.node_id)
            if len(holders) > 1:
                return (
                    ELECTION_SAFETY,
                    f"term {core.term} elected {sorted(holders)}",
                )
        for i, core in enumerate(self.cores):
            if core is None:
                continue
            for index in range(1, core.commit_index + 1):
                term = self.logs[i].term_at(index)
                if term is None:
                    continue
                known = self.committed.get(index)
                if known is None:
                    self.committed[index] = (term, self.logs[i].term)
                elif known[0] != term:
                    return (
                        COMMIT_SAFETY,
                        f"{self.ids[i]} commits term {term} at index "
                        f"{index}, but term {known[0]} was already "
                        f"committed there",
                    )
                elif self.logs[i].term < known[1]:
                    # A lower-term observer tightens the (sound upper)
                    # bound on the term the commit happened in.
                    self.committed[index] = (term, self.logs[i].term)
        for i, core in enumerate(self.cores):
            if core is None or core.role != "leader":
                continue
            for index, (term, observed) in self.committed.items():
                if core.term <= observed:
                    # A *stale* leader of an old term may legally hold a
                    # conflicting uncommitted entry — it can no longer
                    # commit anything (every quorum rejects its term).
                    # Leader completeness binds only the terms after
                    # the one the commit was observed in.
                    continue
                actual = self.logs[i].term_at(index)
                if actual != term:
                    return (
                        COMMIT_SAFETY,
                        f"leader {self.ids[i]} (term {core.term}) holds "
                        f"term {actual} at index {index}; committed "
                        f"term {term} is lost",
                    )
        return None


@dataclass(frozen=True)
class ConsensusTrace:
    """A minimal, replayable witness of a consensus-safety violation.

    ``actions`` is the exact scheduler play from the initial state;
    :meth:`replay` re-executes it through *fresh* cores and must
    reproduce the violation (:meth:`replay_violates`), so the artifact
    stands on its own — load it anywhere, run it, watch the bug.
    """

    protocol: str
    replicas: int
    crashes: int
    appends: int
    depth: int
    invariant: str
    detail: str
    actions: Tuple[ConsensusAction, ...]

    def replay(
        self, core_factory: CoreFactory = RaftCore
    ) -> Tuple[Optional[Tuple[str, str]], _ModelState]:
        """Re-run the action list; returns (first violation, end state).

        ``core_factory`` defaults to the production
        :class:`~repro.cluster.replica.RaftCore`; tests that check the
        *checker* pass their deliberately broken core here.
        """
        state = _ModelState(self.replicas, core_factory)
        violation = state.violation()
        for action in self.actions:
            if violation is not None:
                break
            state.apply(action)
            violation = state.violation()
        return violation, state

    def replay_violates(
        self, core_factory: CoreFactory = RaftCore
    ) -> bool:
        """Whether a fresh replay reproduces ``self.invariant``."""
        violation, _state = self.replay(core_factory)
        return violation is not None and violation[0] == self.invariant

    def describe(self) -> str:
        """Multi-line human-readable rendering of the whole trace."""
        lines = [
            f"replica consensus n={self.replicas} crashes<={self.crashes} "
            f"appends<={self.appends} depth<={self.depth} violates "
            f"{self.invariant!r} ({len(self.actions)} actions)",
            f"  {self.detail}",
        ]
        lines.extend(f"  {action.describe()}" for action in self.actions)
        return "\n".join(lines)

    def to_json_obj(self) -> Dict[str, Any]:
        """Plain-JSON form (inverse of :meth:`from_json_obj`)."""
        return {
            "protocol": self.protocol,
            "replicas": self.replicas,
            "crashes": self.crashes,
            "appends": self.appends,
            "depth": self.depth,
            "invariant": self.invariant,
            "detail": self.detail,
            "actions": [action.to_json_obj() for action in self.actions],
        }

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, Any]) -> "ConsensusTrace":
        """Rebuild a trace from its :meth:`to_json_obj` form."""
        return cls(
            protocol=str(obj.get("protocol", "replica")),
            replicas=int(obj["replicas"]),
            crashes=int(obj["crashes"]),
            appends=int(obj["appends"]),
            depth=int(obj["depth"]),
            invariant=str(obj["invariant"]),
            detail=str(obj.get("detail", "")),
            actions=tuple(
                ConsensusAction.from_json_obj(a) for a in obj["actions"]
            ),
        )

    def save(self, path: str) -> None:
        """Write the trace as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_obj(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ConsensusTrace":
        """Read a trace saved by :meth:`save`."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_json_obj(json.load(handle))


def shrink_consensus_trace(
    trace: ConsensusTrace, core_factory: CoreFactory = RaftCore
) -> ConsensusTrace:
    """Greedy deletion to a 1-minimal trace (same idea as dist traces).

    Repeatedly tries dropping each action; a deletion sticks whenever
    the replayed execution still violates the same invariant.  The
    no-op tolerance of :meth:`_ModelState.apply` keeps every candidate
    well-defined.
    """
    actions = list(trace.actions)
    current = trace
    changed = True
    while changed:
        changed = False
        for index in range(len(actions)):
            candidate = replace(
                current,
                actions=tuple(actions[:index] + actions[index + 1 :]),
            )
            violation, _state = candidate.replay(core_factory)
            if violation is not None and violation[0] == trace.invariant:
                current = replace(candidate, detail=violation[1])
                actions = list(candidate.actions)
                changed = True
                break
    return current


@dataclass(frozen=True)
class ConsensusResult:
    """The consensus checker's verdict plus exploration statistics.

    ``ok`` means every reachable state within the bounds satisfied both
    invariants; on failure ``counterexample`` holds the shrunk,
    replay-verified trace.  ``truncated`` flags a hit state cap — the
    verdict is then a bounded search, not an exhaustive one.
    """

    ok: bool
    replicas: int
    crashes: int
    appends: int
    depth: int
    invariants: Tuple[str, ...] = CONSENSUS_INVARIANTS
    states_explored: int = 0
    transitions: int = 0
    elapsed_s: float = 0.0
    counterexample: Optional[ConsensusTrace] = None
    truncated: bool = False

    def summary(self) -> str:
        """One-line verdict, e.g. for the CLI and CI logs."""
        verdict = "PASS" if self.ok else "FAIL"
        tail = ""
        if self.counterexample is not None:
            tail = (
                f" — {self.counterexample.invariant} violated with "
                f"{len(self.counterexample.actions)} action(s)"
            )
        if self.truncated:
            tail += " [truncated: state cap hit]"
        return (
            f"{verdict} replica n={self.replicas} "
            f"crashes<={self.crashes} appends<={self.appends} "
            f"depth<={self.depth}: {self.states_explored} states, "
            f"{self.transitions} transitions, "
            f"{self.elapsed_s * 1000.0:.1f} ms{tail}"
        )

    def to_json_obj(self) -> Dict[str, Any]:
        """Plain-JSON form of the verdict and statistics."""
        obj: Dict[str, Any] = {
            "ok": self.ok,
            "protocol": "replica",
            "replicas": self.replicas,
            "crashes": self.crashes,
            "appends": self.appends,
            "depth": self.depth,
            "invariants": list(self.invariants),
            "states_explored": self.states_explored,
            "transitions": self.transitions,
            "elapsed_s": round(self.elapsed_s, 6),
            "truncated": self.truncated,
        }
        if self.counterexample is not None:
            obj["counterexample"] = self.counterexample.to_json_obj()
        return obj


def check_consensus(
    replicas: int = 3,
    crashes: int = 1,
    appends: int = 1,
    depth: int = 8,
    max_states: int = 200_000,
    core_factory: CoreFactory = RaftCore,
    shrink: bool = True,
) -> ConsensusResult:
    """Exhaustive BFS over the bounded consensus state space.

    Explores every interleaving of at most ``depth`` actions (with at
    most ``crashes`` crash events and ``appends`` client commands) of a
    ``replicas``-node cluster, deduplicating by state digest, checking
    both safety invariants in every state.  BFS order means the first
    violation found is also a *shortest* one; it is then 1-minimized
    (unless ``shrink=False``) and replay-verified before being
    reported.

    ``core_factory`` swaps the consensus implementation under test —
    the checker's own tests hand it deliberately broken
    :class:`~repro.cluster.replica.RaftCore` subclasses and assert the
    violation is found, so a green gate is evidence the search has
    teeth, not just that the code is quiet.
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    started = time.perf_counter()
    initial = _ModelState(replicas, core_factory)
    states_explored = 1
    transitions = 0
    truncated = False

    def fail(
        violation: Tuple[str, str], actions: Tuple[ConsensusAction, ...]
    ) -> ConsensusResult:
        """Package a violation as a shrunk, replay-verified FAIL result."""
        trace = ConsensusTrace(
            protocol="replica",
            replicas=replicas,
            crashes=crashes,
            appends=appends,
            depth=depth,
            invariant=violation[0],
            detail=violation[1],
            actions=actions,
        )
        if shrink:
            trace = shrink_consensus_trace(trace, core_factory)
        assert trace.replay_violates(core_factory)
        return ConsensusResult(
            ok=False,
            replicas=replicas,
            crashes=crashes,
            appends=appends,
            depth=depth,
            states_explored=states_explored,
            transitions=transitions,
            elapsed_s=time.perf_counter() - started,
            counterexample=trace,
            truncated=truncated,
        )

    violation = initial.violation()
    if violation is not None:  # a broken core can fail at time zero
        return fail(violation, ())
    seen = {initial.digest()}
    frontier: deque = deque([(initial, ())])
    while frontier:
        state, path = frontier.popleft()
        if len(path) >= depth:
            continue
        for action in state.enabled(crashes, appends):
            child = state.clone()
            child.apply(action)
            transitions += 1
            child_path = path + (action,)
            violation = child.violation()
            if violation is not None:
                return fail(violation, child_path)
            key = child.digest()
            if key in seen:
                continue
            if states_explored >= max_states:
                truncated = True
                continue
            seen.add(key)
            states_explored += 1
            frontier.append((child, child_path))
    return ConsensusResult(
        ok=True,
        replicas=replicas,
        crashes=crashes,
        appends=appends,
        depth=depth,
        states_explored=states_explored,
        transitions=transitions,
        elapsed_s=time.perf_counter() - started,
        truncated=truncated,
    )
