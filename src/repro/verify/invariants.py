"""Invariants: named predicates the checker evaluates at the bound.

An :class:`Invariant` is a predicate over the honest outputs of a
terminal execution state (``Network.honest_outputs()``) plus an
:class:`InvariantContext` describing the model instance.  The built-in
trio is the Byzantine agreement specification of
:func:`repro.dist.agreement.check_agreement`, split into separately
nameable clauses so a counterexample says *which* clause broke:

* ``termination`` — every honest node decided within the horizon;
* ``agreement`` — all honest decisions are equal;
* ``validity`` — honest decisions equal the general's value, vacuously
  true when the general is faulty (the classical weakening).

Custom invariants are plain predicates — anything over the outputs
mapping — so the same checker gates future protocols (e.g. the
replicated coordinator's lease/quorum state machine) without change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

__all__ = [
    "AGREEMENT",
    "BYZANTINE_AGREEMENT",
    "INVARIANTS",
    "TERMINATION",
    "VALIDITY",
    "Invariant",
    "InvariantContext",
    "first_violation",
    "get_invariant",
]


@dataclass(frozen=True)
class InvariantContext:
    """The model instance a terminal state is judged against."""

    n: int
    t: int
    general_value: int
    faulty: frozenset

    @property
    def general_faulty(self) -> bool:
        """Whether the general (node 0) is adversary-controlled."""
        return 0 in self.faulty


Predicate = Callable[[Mapping[int, Any], InvariantContext], bool]


@dataclass(frozen=True)
class Invariant:
    """A named predicate over honest outputs; ``True`` means it holds."""

    name: str
    description: str
    predicate: Predicate

    def holds(self, outputs: Mapping[int, Any], ctx: InvariantContext) -> bool:
        """Evaluate the predicate on one terminal state."""
        return bool(self.predicate(outputs, ctx))


def _termination(outputs: Mapping[int, Any], ctx: InvariantContext) -> bool:
    return all(value is not None for value in outputs.values())


def _agreement(outputs: Mapping[int, Any], ctx: InvariantContext) -> bool:
    decided = [value for value in outputs.values() if value is not None]
    return len(set(decided)) <= 1


def _validity(outputs: Mapping[int, Any], ctx: InvariantContext) -> bool:
    if ctx.general_faulty:
        return True
    return all(
        value == ctx.general_value
        for value in outputs.values()
        if value is not None
    )


TERMINATION = Invariant(
    "termination",
    "every honest node has decided by the end of the horizon",
    _termination,
)
AGREEMENT = Invariant(
    "agreement",
    "all honest decisions are equal",
    _agreement,
)
VALIDITY = Invariant(
    "validity",
    "honest decisions equal the general's value (vacuous if it is faulty)",
    _validity,
)

BYZANTINE_AGREEMENT: Tuple[Invariant, ...] = (
    TERMINATION,
    AGREEMENT,
    VALIDITY,
)

INVARIANTS: Dict[str, Invariant] = {
    inv.name: inv for inv in BYZANTINE_AGREEMENT
}


def get_invariant(name: str) -> Invariant:
    """Look up a built-in invariant by name."""
    try:
        return INVARIANTS[name]
    except KeyError:
        known = ", ".join(sorted(INVARIANTS))
        raise KeyError(
            f"unknown invariant {name!r}; built-ins: {known}"
        ) from None


def first_violation(
    invariants: Sequence[Invariant],
    outputs: Mapping[int, Any],
    ctx: InvariantContext,
) -> Optional[str]:
    """The name of the first violated invariant, or ``None`` if all hold."""
    for invariant in invariants:
        if not invariant.holds(outputs, ctx):
            return invariant.name
    return None
