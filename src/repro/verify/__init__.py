"""repro.verify — bounded model checking over the dist simulator.

Generalizes :func:`repro.dist.agreement.search_for_disagreement` from a
hand-picked adversary family into an exhaustive, explicit-state bounded
model checker: every schedule of at most ``bound`` corruption events
(two-faced flips, omissions, crash times with partial reach) from a
finite alphabet, over every faulty coalition in the requested family,
checked against the Byzantine agreement invariants — with hash-consed
state deduplication in NumPy digest arrays and *minimal, replayable*
counterexample traces that re-execute through the unmodified simulator.

Quickstart::

    from repro.verify import check_model

    result = check_model("phase_king", n=4, t=1, bound=4)
    print(result.summary())          # PASS ... exhaustive up to the bound

    result = check_model("eig", n=3, t=1, bound=2)
    print(result.counterexample.describe())
    outcome = result.counterexample.replay()   # unmodified simulator
    assert not outcome.agreement

The same machinery certifies the replicated control plane: the
consensus checker (:mod:`repro.verify.consensus`) explores the *live*
:class:`repro.cluster.replica.RaftCore` under bounded crashes for
election safety and commit durability::

    from repro.verify import check_consensus

    result = check_consensus(replicas=3, crashes=1, depth=8)
    assert result.ok

CLI: ``python -m repro.verify --protocol phase_king --n 4 --t 1 --bound 4``
or ``--protocol replica --replicas 3 --crashes 1``.
See ``docs/verify.md`` for what a bound means and how to read a trace.
"""

from repro.verify.consensus import (
    COMMIT_SAFETY,
    CONSENSUS_INVARIANTS,
    ELECTION_SAFETY,
    ConsensusAction,
    ConsensusResult,
    ConsensusTrace,
    check_consensus,
)
from repro.verify.explorer import (
    ModelConfig,
    VerificationResult,
    check_model,
    coalition_family,
    model_horizon,
)
from repro.verify.invariants import (
    AGREEMENT,
    BYZANTINE_AGREEMENT,
    TERMINATION,
    VALIDITY,
    Invariant,
    InvariantContext,
    first_violation,
    get_invariant,
)
from repro.verify.states import (
    CorruptionAction,
    CorruptionAlphabet,
    DigestStore,
    apply_action,
    canonical_bytes,
    flip_payload,
    network_digest,
)
from repro.verify.traces import (
    CorruptionEvent,
    CounterexampleTrace,
    shrink_trace,
)

__all__ = [
    "AGREEMENT",
    "BYZANTINE_AGREEMENT",
    "COMMIT_SAFETY",
    "CONSENSUS_INVARIANTS",
    "ELECTION_SAFETY",
    "TERMINATION",
    "VALIDITY",
    "ConsensusAction",
    "ConsensusResult",
    "ConsensusTrace",
    "CorruptionAction",
    "CorruptionAlphabet",
    "CorruptionEvent",
    "CounterexampleTrace",
    "DigestStore",
    "Invariant",
    "InvariantContext",
    "ModelConfig",
    "VerificationResult",
    "apply_action",
    "canonical_bytes",
    "check_consensus",
    "check_model",
    "coalition_family",
    "first_violation",
    "flip_payload",
    "get_invariant",
    "model_horizon",
    "network_digest",
    "shrink_trace",
]
