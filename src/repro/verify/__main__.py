"""CLI for the bounded model checker.

Check a protocol exhaustively up to a corruption bound::

    python -m repro.verify --protocol phase_king --n 4 --t 1 --bound 4
    python -m repro.verify --protocol eig --n 3 --t 1 --bound 2 \\
        --trace-out disagreement.json

Certify the replicated control plane's consensus core (bounded crashes
over :class:`repro.cluster.replica.RaftCore` — the acceptance gate the
cluster CI job runs)::

    python -m repro.verify --protocol replica --replicas 3 --crashes 1

Replay a previously emitted counterexample through the unmodified
simulator (exit 0 iff the recorded violation reproduces)::

    python -m repro.verify --replay disagreement.json

Exit codes: ``0`` — checked and passed (or replay reproduced); ``1`` —
a violation was found (or a replay failed to reproduce); ``2`` — bad
arguments.  A found violation prints the minimal trace (and writes it
to ``--trace-out`` when given) so the exact execution can be shared,
diffed, and re-run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.verify.consensus import ConsensusTrace, check_consensus
from repro.verify.explorer import check_model
from repro.verify.states import CorruptionAlphabet
from repro.verify.traces import CounterexampleTrace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Exhaustive bounded model checking of Byzantine agreement "
            "protocols over the repro.dist simulator."
        ),
    )
    parser.add_argument(
        "--protocol",
        choices=("eig", "phase_king", "replica"),
        default="eig",
        help=(
            "protocol to check: an agreement protocol over the dist "
            "simulator, or 'replica' for the control plane's consensus "
            "core (default: eig)"
        ),
    )
    parser.add_argument("--n", type=int, default=4, help="number of players")
    parser.add_argument("--t", type=int, default=1, help="faulty players")
    parser.add_argument(
        "--bound",
        type=int,
        default=3,
        help="max corruption events per execution (default: 3)",
    )
    parser.add_argument(
        "--general-values",
        type=int,
        nargs="+",
        default=(0, 1),
        metavar="V",
        help="general's input values to check (default: 0 1)",
    )
    parser.add_argument(
        "--coalitions",
        default="family",
        help=(
            "faulty-coalition family: 'family' (the search_for_disagreement "
            "placements, default), 'all' (every size-t coalition), or a "
            "comma/space list like '1' or '0,2'"
        ),
    )
    parser.add_argument(
        "--flip-targets",
        choices=("honest", "all"),
        default="honest",
        help="flip-subset universe for the two-faced actions",
    )
    parser.add_argument(
        "--no-silence",
        action="store_true",
        help="drop one-round omission actions from the alphabet",
    )
    parser.add_argument(
        "--no-crash",
        action="store_true",
        help="drop crash actions from the alphabet",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report the first counterexample without 1-minimizing it",
    )
    replica = parser.add_argument_group(
        "replica protocol", "bounds for --protocol replica"
    )
    replica.add_argument(
        "--replicas", type=int, default=3, help="replica count (default: 3)"
    )
    replica.add_argument(
        "--crashes",
        type=int,
        default=1,
        help="max crash events per execution (default: 1)",
    )
    replica.add_argument(
        "--appends",
        type=int,
        default=1,
        help="max client appends per execution (default: 1)",
    )
    replica.add_argument(
        "--depth",
        type=int,
        default=8,
        help="max scheduler actions per execution (default: 8)",
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=500_000,
        help="per-config explored-state cap (default: 500000)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write the counterexample trace JSON here when a check fails",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the full verification result JSON here",
    )
    parser.add_argument(
        "--replay",
        metavar="PATH",
        help="replay a saved trace instead of checking a model",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the trace listing"
    )
    return parser


def _parse_coalitions(raw: str):
    if raw in ("family", "all"):
        return raw
    coalition = [int(x) for x in raw.replace(",", " ").split()]
    return [coalition]


def _replay(path: str, quiet: bool) -> int:
    with open(path, encoding="utf-8") as handle:
        protocol = json.load(handle).get("protocol")
    if protocol == "replica":
        return _replay_consensus(path, quiet)
    trace = CounterexampleTrace.load(path)
    outcome = trace.replay()
    reproduced = trace.replay_violates(outcome)
    if not quiet:
        print(trace.describe())
        print(
            f"replayed via {type(trace.to_adversary()).__name__}: "
            f"outputs={outcome.outputs} agreement={outcome.agreement} "
            f"validity={outcome.validity}"
        )
    if reproduced:
        print(f"replay reproduces the {trace.invariant!r} violation")
        return 0
    print(f"replay does NOT reproduce the {trace.invariant!r} violation")
    return 1


def _replay_consensus(path: str, quiet: bool) -> int:
    trace = ConsensusTrace.load(path)
    violation, _state = trace.replay()
    if not quiet:
        print(trace.describe())
    if violation is not None and violation[0] == trace.invariant:
        print(f"replay reproduces the {trace.invariant!r} violation")
        return 0
    print(f"replay does NOT reproduce the {trace.invariant!r} violation")
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.replay:
            return _replay(args.replay, args.quiet)
        if args.protocol == "replica":
            result = check_consensus(
                replicas=args.replicas,
                crashes=args.crashes,
                appends=args.appends,
                depth=args.depth,
                max_states=args.max_states,
                shrink=not args.no_shrink,
            )
        else:
            alphabet = CorruptionAlphabet(
                flip_targets=args.flip_targets,
                silence=not args.no_silence,
                crash=not args.no_crash,
            )
            result = check_model(
                args.protocol,
                args.n,
                args.t,
                bound=args.bound,
                general_values=tuple(args.general_values),
                coalitions=_parse_coalitions(args.coalitions),
                alphabet=alphabet,
                max_states=args.max_states,
                shrink=not args.no_shrink,
            )
    except (ValueError, KeyError, OSError) as exc:
        # Bad usage (invalid model params, malformed coalition specs,
        # unreadable trace files) exits 2 like argparse errors do.
        parser.exit(2, f"{parser.prog}: error: {exc}\n")
    return _report(result, args)


def _report(result, args) -> int:
    """Shared verdict printing/serialization; returns the exit code."""
    print(result.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_json_obj(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    trace = result.counterexample
    if trace is not None:
        if not args.quiet:
            print(trace.describe())
        if args.trace_out:
            trace.save(args.trace_out)
            print(f"minimal counterexample trace written to {args.trace_out}")
        replay = "reproduces" if trace.replay_violates() else "DIVERGES"
        print(f"replay through the unmodified implementation: {replay}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
