"""Canonical state hashing and the finite corruption alphabet.

The bounded model checker (:mod:`repro.verify.explorer`) identifies a
simulator state by the sha256 digest of a *canonical* byte encoding of
``(round, node states, pending inboxes, crash record)``.  Two execution
prefixes that land in the same state are explored once — the hash-consing
that makes exhaustive exploration of small models tractable.  Digests
live in sorted NumPy ``S32`` arrays (:class:`DigestStore`), so frontier
deduplication is a batched ``searchsorted``/``lexsort`` pass per round
rather than a per-state Python set probe.

The nondeterminism being explored is the adversary's: each round, each
live faulty node picks one :class:`CorruptionAction` from a finite
:class:`CorruptionAlphabet` —

* ``honest`` — forward the protocol-prescribed outbox unchanged (free);
* ``flip(targets)`` — the two-faced attack: flip every decision bit in
  messages to ``targets`` (exactly the transformation of
  :func:`repro.dist.agreement.two_faced_script`, one round at a time);
* ``silence`` — drop the whole outbox this round (omission fault);
* ``crash(reach)`` — fail-stop mid-broadcast: recipients ``< reach``
  still hear this round, then the node is dead forever (matching
  :class:`repro.dist.faults.CrashAdversary` semantics tick-for-tick);
* ``dead`` — the forced, free continuation of a crash.

Every non-honest, non-dead action spends one unit of the checker's
*bound*, so "exhaustive up to bound ``b``" means: every execution in
which the adversary corrupts at most ``b`` round-outboxes, for every
choice from the alphabet at each of them.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dist.simulator import Message, Network

__all__ = [
    "CRASH",
    "DEAD",
    "FLIP",
    "HONEST",
    "SILENCE",
    "CorruptionAction",
    "CorruptionAlphabet",
    "DigestStore",
    "apply_action",
    "canonical_bytes",
    "flip_payload",
    "inboxes_bytes",
    "message_bytes",
    "network_digest",
    "nodes_bytes",
    "state_digest",
]

HONEST = "honest"
FLIP = "flip"
SILENCE = "silence"
CRASH = "crash"
DEAD = "dead"

_KINDS = (HONEST, FLIP, SILENCE, CRASH, DEAD)


@dataclass(frozen=True)
class CorruptionAction:
    """One letter of the corruption alphabet, applied to one outbox.

    ``targets`` is meaningful for ``flip`` (the recipients whose payload
    bits are flipped); ``reach`` for ``crash`` (recipients ``< reach``
    still receive the crash-round messages, as in
    :class:`repro.dist.faults.CrashAdversary`).
    """

    kind: str
    targets: Tuple[int, ...] = ()
    reach: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown action kind {self.kind!r}; choose from {_KINDS}"
            )

    @property
    def is_corruption(self) -> bool:
        """Whether this action spends one unit of the checker's bound."""
        return self.kind in (FLIP, SILENCE, CRASH)

    def describe(self) -> str:
        """Human-readable one-liner (used in trace listings)."""
        if self.kind == FLIP:
            return f"flip->{list(self.targets)}"
        if self.kind == CRASH:
            return f"crash(reach={self.reach})"
        return self.kind

    def to_json_obj(self) -> Dict[str, Any]:
        """Plain-JSON form (inverse of :meth:`from_json_obj`)."""
        obj: Dict[str, Any] = {"kind": self.kind}
        if self.targets:
            obj["targets"] = list(self.targets)
        if self.kind == CRASH:
            obj["reach"] = self.reach
        return obj

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, Any]) -> "CorruptionAction":
        """Rebuild an action from its :meth:`to_json_obj` form."""
        return cls(
            kind=str(obj["kind"]),
            targets=tuple(int(x) for x in obj.get("targets", ())),
            reach=int(obj.get("reach", 0)),
        )


HONEST_ACTION = CorruptionAction(HONEST)
DEAD_ACTION = CorruptionAction(DEAD)


def flip_payload(value: Any) -> Any:
    """Flip every decision bit in a payload, recursing into structure.

    Identical semantics to the flip inside
    :func:`repro.dist.agreement.two_faced_script`: ints in ``{0, 1}``
    flip, bools and everything else pass through, containers recurse.
    Shared by the explorer and trace replay so both corrupt
    byte-identically.
    """
    if isinstance(value, dict):
        return {key: flip_payload(item) for key, item in value.items()}
    if isinstance(value, tuple):
        return tuple(flip_payload(item) for item in value)
    if isinstance(value, list):
        return [flip_payload(item) for item in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return 1 - value
    return value


def apply_action(
    action: CorruptionAction, outbox: Sequence[Message]
) -> List[Message]:
    """Apply one corruption action to an honest outbox.

    This is *the* definition of each alphabet letter: the explorer uses
    it to branch, and :class:`repro.verify.traces.CounterexampleTrace`
    replays through it, so explored and replayed executions agree
    byte-for-byte.
    """
    if action.kind in (HONEST,):
        return list(outbox)
    if action.kind == FLIP:
        targets = frozenset(action.targets)
        return [
            replace(message, payload=flip_payload(message.payload))
            if message.recipient in targets
            else message
            for message in outbox
        ]
    if action.kind in (SILENCE, DEAD):
        return []
    if action.kind == CRASH:
        return [m for m in outbox if m.recipient < action.reach]
    raise ValueError(f"unknown action kind {action.kind!r}")


@dataclass(frozen=True)
class CorruptionAlphabet:
    """The per-node, per-round menu of adversary choices.

    ``flip_targets`` selects the flip-subset universe: ``"honest"``
    (default — subsets of honest nodes, the family
    :func:`repro.dist.agreement.search_for_disagreement` draws from) or
    ``"all"`` (subsets of every node, including fellow faulty ones).
    ``crash_reaches`` defaults to every partial reach ``0..n``;
    ``max_flip_targets`` caps the flip-subset size to trim branching on
    larger models.
    """

    flips: bool = True
    flip_targets: str = "honest"
    silence: bool = True
    crash: bool = True
    max_flip_targets: Optional[int] = None
    crash_reaches: Optional[Tuple[int, ...]] = None

    def actions_for(
        self, node_id: int, n: int, faulty: Iterable[int]
    ) -> Tuple[CorruptionAction, ...]:
        """Enumerate the actions available to one live faulty node."""
        faulty_set = frozenset(faulty)
        actions: List[CorruptionAction] = [HONEST_ACTION]
        if self.flips:
            if self.flip_targets == "honest":
                universe = sorted(set(range(n)) - faulty_set)
            elif self.flip_targets == "all":
                universe = list(range(n))
            else:
                raise ValueError(
                    f"flip_targets must be 'honest' or 'all', "
                    f"got {self.flip_targets!r}"
                )
            cap = (
                len(universe)
                if self.max_flip_targets is None
                else min(self.max_flip_targets, len(universe))
            )
            for size in range(1, cap + 1):
                for combo in itertools.combinations(universe, size):
                    actions.append(CorruptionAction(FLIP, targets=combo))
        if self.silence:
            actions.append(CorruptionAction(SILENCE))
        if self.crash:
            reaches = (
                tuple(range(n + 1))
                if self.crash_reaches is None
                else self.crash_reaches
            )
            for reach in reaches:
                actions.append(CorruptionAction(CRASH, reach=reach))
        return tuple(actions)


# ----------------------------------------------------------------------
# Canonical encoding + digests
# ----------------------------------------------------------------------


def canonical_bytes(obj: Any) -> bytes:
    """Deterministically encode a state object to bytes.

    Type-tagged and order-normalized (dict items and set elements sorted
    by their own canonical encodings), so structurally equal states —
    including EIG trees keyed by tuples — encode identically regardless
    of insertion order.  Unknown types are a hard error: silent fallback
    would turn hash-consing into silent unsoundness.
    """
    out = bytearray()
    _encode(obj, out)
    return bytes(out)


def _encode(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += b"N"
    elif obj is True:
        out += b"T"
    elif obj is False:
        out += b"F"
    elif isinstance(obj, int):
        out += b"i%d;" % obj
    elif isinstance(obj, float):
        out += b"f" + repr(obj).encode("ascii") + b";"
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out += b"s%d:" % len(raw)
        out += raw
    elif isinstance(obj, bytes):
        out += b"b%d:" % len(obj)
        out += obj
    elif isinstance(obj, Message):
        out += b"M("
        _encode(obj.sender, out)
        _encode(obj.recipient, out)
        _encode(obj.payload, out)
        out += b")"
    elif isinstance(obj, tuple):
        out += b"("
        for item in obj:
            _encode(item, out)
        out += b")"
    elif isinstance(obj, list):
        out += b"["
        for item in obj:
            _encode(item, out)
        out += b"]"
    elif isinstance(obj, (set, frozenset)):
        out += b"{"
        for blob in sorted(canonical_bytes(item) for item in obj):
            out += blob
        out += b"}"
    elif isinstance(obj, dict):
        out += b"<"
        try:
            # Fast path: homogeneous sortable keys (str attribute names,
            # int node ids, tuple relay paths) sort directly.
            items = sorted(obj.items())
        except TypeError:
            items = None
        if items is not None:
            for key, value in items:
                _encode(key, out)
                _encode(value, out)
        else:
            for key_blob, value_blob in sorted(
                (canonical_bytes(k), canonical_bytes(v))
                for k, v in obj.items()
            ):
                out += key_blob
                out += value_blob
        out += b">"
    else:
        raise TypeError(
            f"cannot canonically encode {type(obj).__name__!r}; "
            "extend repro.verify.states._encode for new payload types"
        )


def message_bytes(
    message: Message, cache: Optional[Dict[Message, bytes]] = None
) -> bytes:
    """Canonical bytes of one message, memoized when hashable.

    Identical messages recur constantly across sibling states (every
    honest sender's traffic is shared by all children of a parent), so
    the explorer threads one cache through a whole config's exploration.
    Messages with unhashable payloads (EIG's dict trees) fall through to
    a direct encode.
    """
    if cache is not None:
        try:
            cached = cache.get(message)
        except TypeError:
            cached = None
            cache = None
        if cached is not None:
            return cached
    buf = bytearray()
    _encode(message, buf)
    blob = bytes(buf)
    if cache is not None:
        cache[message] = blob
    return blob


def inboxes_bytes(
    inboxes: Sequence[Sequence[Message]],
    cache: Optional[Dict[Message, bytes]] = None,
) -> bytes:
    """Canonical bytes of a pending-inbox vector (delivery order kept)."""
    out = bytearray(b"[")
    for inbox in inboxes:
        out += b"("
        for message in inbox:
            out += message_bytes(message, cache)
        out += b")"
    out += b"]"
    return bytes(out)


def nodes_bytes(nodes: Sequence[Any]) -> bytes:
    """Canonical bytes of every node's internal state.

    A node's ``__dict__`` *is* its protocol state, and all children of
    one explored parent share it verbatim (adversary actions only change
    what lands in the next inboxes), so the explorer computes this once
    per expansion.
    """
    return canonical_bytes(
        tuple((type(node).__name__, node.__dict__) for node in nodes)
    )


def state_digest(
    round_number: int,
    node_blob: bytes,
    inbox_blob: bytes,
    crashed: Mapping[int, int],
) -> bytes:
    """sha256 over pre-encoded state components (the hash-consing key)."""
    digest = hashlib.sha256()
    digest.update(b"(i%d;" % round_number)
    digest.update(node_blob)
    digest.update(inbox_blob)
    digest.update(canonical_bytes(tuple(sorted(crashed.items()))))
    digest.update(b")")
    return digest.digest()


def network_digest(net: Network, crashed: Mapping[int, int]) -> bytes:
    """sha256 of the canonical full execution state of a network.

    Covers the round number, every node's internal state (its
    ``__dict__``, which for protocol nodes is the whole state), the
    pending inboxes, and the crash record — everything the next round's
    behaviour can depend on.  Convenience composition of
    :func:`nodes_bytes` / :func:`inboxes_bytes` / :func:`state_digest`;
    the explorer calls the pieces directly to share work across sibling
    states.
    """
    return state_digest(
        net.round_number,
        nodes_bytes(net.nodes),
        inboxes_bytes(net.pending_inboxes()),
        crashed,
    )


class DigestStore:
    """Visited-state store: sorted sha256 digests in NumPy arrays.

    Alongside each digest the store keeps the best (highest) remaining
    corruption budget at which that state was reached.  A revisit with
    an equal-or-lower budget is *dominated* — the earlier visit could do
    everything this one can — so only strictly-budget-improving revisits
    re-enter the frontier.  Admission is a single vectorized pass:
    in-batch dedup by ``lexsort``, store lookup by ``searchsorted``.
    """

    def __init__(self) -> None:
        self._digests = np.empty(0, dtype="S32")
        self._budgets = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return int(self._digests.size)

    def admit(
        self, digests: Sequence[bytes], budgets: Sequence[int]
    ) -> np.ndarray:
        """Filter a batch of candidate states against everything seen.

        Returns the indices (into the batch) of candidates that survive:
        one representative per distinct digest (the max-budget one), and
        only if no dominating visit is already stored.  Surviving
        candidates are recorded as visited.
        """
        if len(digests) == 0:
            return np.empty(0, dtype=np.intp)
        cand = np.array(list(digests), dtype="S32")
        bud = np.asarray(list(budgets), dtype=np.int64)
        # In-batch dedup: per digest keep the max-budget representative.
        order = np.lexsort((-bud, cand))
        sorted_digests = cand[order]
        first = np.ones(order.size, dtype=bool)
        first[1:] = sorted_digests[1:] != sorted_digests[:-1]
        reps = order[first]  # batch indices, digest-sorted
        rep_digests = cand[reps]
        rep_budgets = bud[reps]
        # Against the store: dominated iff present with budget >= ours.
        pos = np.searchsorted(self._digests, rep_digests)
        present = np.zeros(reps.size, dtype=bool)
        in_range = pos < self._digests.size
        present[in_range] = self._digests[pos[in_range]] == rep_digests[in_range]
        dominated = present.copy()
        dominated[present] = (
            self._budgets[pos[present]] >= rep_budgets[present]
        )
        keep = ~dominated
        # Budget-improving revisits update in place; new digests merge in.
        improved = present & keep
        if improved.any():
            self._budgets[pos[improved]] = rep_budgets[improved]
        fresh = keep & ~present
        if fresh.any():
            merged_digests = np.concatenate(
                [self._digests, rep_digests[fresh]]
            )
            merged_budgets = np.concatenate(
                [self._budgets, rep_budgets[fresh]]
            )
            resort = np.argsort(merged_digests, kind="stable")
            self._digests = merged_digests[resort]
            self._budgets = merged_budgets[resort]
        return reps[keep]
