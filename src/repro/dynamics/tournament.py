"""Axelrod-style round-robin FRPD tournaments.

The paper: "tit-for-tat does exceedingly well in FRPD tournaments, where
computer programs play each other [Axelrod 1984]".  Experiment E13 runs
the round-robin and checks tit-for-tat's placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.games.classics import prisoners_dilemma
from repro.games.normal_form import NormalFormGame
from repro.games.repeated import RepeatedGame, RepeatedGameStrategy

__all__ = [
    "NoisyStrategy",
    "MatchRecord",
    "TournamentResult",
    "round_robin_tournament",
]


class NoisyStrategy:
    """Wrap a strategy so each action flips with probability ``noise``.

    Axelrod's later tournaments added execution noise; it is what
    separates forgiving strategies (tit-for-tat) from unforgiving ones
    (grim trigger).
    """

    def __init__(self, inner: RepeatedGameStrategy, noise: float, seed: int = 0):
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be a probability")
        self.inner = inner
        self.noise = noise
        self.seed = seed
        self.name = f"{getattr(inner, 'name', 'strategy')}+noise{noise:g}"
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self.inner.reset()
        self._rng = np.random.default_rng(self.seed)

    def act(self, opponent_history: Sequence[int]) -> int:
        action = self.inner.act(opponent_history)
        if self.noise > 0.0 and self._rng.random() < self.noise:
            return 1 - action
        return action


@dataclass
class MatchRecord:
    """One pairing's aggregate outcome."""

    name_a: str
    name_b: str
    score_a: float
    score_b: float
    cooperation_rate_a: float
    cooperation_rate_b: float


@dataclass
class TournamentResult:
    """Full round-robin outcome."""

    names: List[str]
    total_scores: np.ndarray
    match_records: List[MatchRecord]
    rounds: int
    repetitions: int

    def ranking(self) -> List[Tuple[str, float]]:
        """Strategies sorted by total score, best first."""
        order = np.argsort(-self.total_scores)
        return [(self.names[i], float(self.total_scores[i])) for i in order]

    def rank_of(self, name: str) -> int:
        """1-based placement of a strategy."""
        for position, (entry, _score) in enumerate(self.ranking(), start=1):
            if entry == name:
                return position
        raise KeyError(f"no entrant named {name!r}")

    def table(self) -> str:
        lines = [f"{'rank':>4}  {'strategy':<28} {'score':>10}"]
        for position, (name, score) in enumerate(self.ranking(), start=1):
            lines.append(f"{position:>4}  {name:<28} {score:>10.2f}")
        return "\n".join(lines)


def round_robin_tournament(
    strategies: Sequence[RepeatedGameStrategy],
    rounds: int = 200,
    delta: float = 1.0,
    noise: float = 0.0,
    repetitions: int = 1,
    include_self_play: bool = True,
    stage: Optional[NormalFormGame] = None,
    seed: int = 0,
) -> TournamentResult:
    """Every strategy meets every other (and itself, as in Axelrod 1984).

    Scores are summed discounted payoffs across all matches and
    repetitions.  With ``noise > 0`` strategies are wrapped in
    :class:`NoisyStrategy` (fresh seeds per match for independence).
    """
    stage = stage if stage is not None else prisoners_dilemma()
    game = RepeatedGame(stage, rounds=rounds, delta=delta)
    names = [getattr(s, "name", f"entry{i}") for i, s in enumerate(strategies)]
    if len(set(names)) != len(names):
        raise ValueError("strategy names must be unique")
    n = len(strategies)
    totals = np.zeros(n)
    records: List[MatchRecord] = []
    seed_counter = seed
    for i in range(n):
        for j in range(i, n):
            if i == j and not include_self_play:
                continue
            score_a = score_b = 0.0
            coop_a = coop_b = 0.0
            for _rep in range(repetitions):
                a: RepeatedGameStrategy = strategies[i]
                b: RepeatedGameStrategy = strategies[j]
                if noise > 0.0:
                    a = NoisyStrategy(a, noise, seed=seed_counter)
                    b = NoisyStrategy(b, noise, seed=seed_counter + 1)
                seed_counter += 2
                result = game.play(a, b)
                score_a += float(result.discounted[0])
                score_b += float(result.discounted[1])
                coop_a += np.mean([act[0] == 0 for act in result.actions])
                coop_b += np.mean([act[1] == 0 for act in result.actions])
            score_a /= repetitions
            score_b /= repetitions
            coop_a /= repetitions
            coop_b /= repetitions
            records.append(
                MatchRecord(
                    name_a=names[i],
                    name_b=names[j],
                    score_a=score_a,
                    score_b=score_b,
                    cooperation_rate_a=coop_a,
                    cooperation_rate_b=coop_b,
                )
            )
            totals[i] += score_a
            if i != j:
                totals[j] += score_b
    return TournamentResult(
        names=names,
        total_scores=totals,
        match_records=records,
        rounds=rounds,
        repetitions=repetitions,
    )
