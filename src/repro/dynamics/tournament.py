"""Axelrod-style round-robin FRPD tournaments.

The paper: "tit-for-tat does exceedingly well in FRPD tournaments, where
computer programs play each other [Axelrod 1984]".  Experiment E13 runs
the round-robin and checks tit-for-tat's placement.

Noise-free matches between deterministic memory-one entrants (the bulk
of the classic zoo — see :func:`repro.machines.strategies.memory_one_spec`)
are played for *all* pairs at once by :func:`memory_one_match_grid`: the
joint action of every pairing advances through one fancy-indexed array
recurrence per round instead of per-match Python playouts.  Entrants
without a memory-one form (randomized, longer memory, or noise-wrapped)
still play through the generic strategy-object path, and the two paths
produce identical scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.games.classics import prisoners_dilemma
from repro.games.normal_form import NormalFormGame
from repro.games.repeated import RepeatedGame, RepeatedGameStrategy
from repro.machines.strategies import memory_one_spec

__all__ = [
    "NoisyStrategy",
    "MatchRecord",
    "MemoryOneGrid",
    "TournamentResult",
    "memory_one_match_grid",
    "round_robin_tournament",
]


@dataclass
class MemoryOneGrid:
    """All-pairs match outcomes of memory-one entrants.

    Entry ``[i, j]`` describes the match where entrant ``i`` sits as
    player 0 and entrant ``j`` as player 1 (``None`` rows/columns in the
    spec list leave NaN holes for non-memory-one entrants).
    """

    discounted_0: np.ndarray
    discounted_1: np.ndarray
    cooperation_0: np.ndarray
    cooperation_1: np.ndarray


def memory_one_match_grid(
    specs: Sequence[Optional[Tuple[int, Tuple[Tuple[int, int], Tuple[int, int]]]]],
    game: RepeatedGame,
) -> MemoryOneGrid:
    """Play every ordered pair of memory-one specs in one batched pass.

    Each spec is ``(initial_action, table)`` with ``table[own][opp]``
    the follow-up action; ``None`` entries (non-memory-one entrants) are
    simulated as self-cooperators and masked to NaN afterwards.  The
    recurrence applies the per-round float operations in the same order
    as :meth:`repro.games.repeated.RepeatedGame.play`, so grid entries
    match the object path's discounted scores exactly.
    """
    m = len(specs)
    present = np.array([spec is not None for spec in specs])
    init = np.array(
        [spec[0] if spec is not None else 0 for spec in specs], dtype=np.int64
    )
    table = np.array(
        [
            spec[1] if spec is not None else ((0, 0), (0, 0))
            for spec in specs
        ],
        dtype=np.int64,
    )
    p0 = game.stage.payoffs[0]
    p1 = game.stage.payoffs[1]
    row = np.broadcast_to(np.arange(m)[:, None], (m, m))
    col = np.broadcast_to(np.arange(m)[None, :], (m, m))
    a = np.broadcast_to(init[:, None], (m, m)).copy()
    b = np.broadcast_to(init[None, :], (m, m)).copy()
    disc0 = np.zeros((m, m))
    disc1 = np.zeros((m, m))
    coop0 = np.zeros((m, m))
    coop1 = np.zeros((m, m))
    for t in range(game.rounds):
        weight = game.delta ** (t + 1)
        disc0 += weight * p0[a, b]
        disc1 += weight * p1[a, b]
        coop0 += a == 0
        coop1 += b == 0
        a, b = table[row, a, b], table[col, b, a]
    hole = ~(present[:, None] & present[None, :])
    for grid in (disc0, disc1, coop0, coop1):
        grid[hole] = np.nan
    rounds = max(game.rounds, 1)
    return MemoryOneGrid(
        discounted_0=disc0,
        discounted_1=disc1,
        cooperation_0=coop0 / rounds,
        cooperation_1=coop1 / rounds,
    )


class NoisyStrategy:
    """Wrap a strategy so each action flips with probability ``noise``.

    Axelrod's later tournaments added execution noise; it is what
    separates forgiving strategies (tit-for-tat) from unforgiving ones
    (grim trigger).
    """

    def __init__(self, inner: RepeatedGameStrategy, noise: float, seed: int = 0):
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be a probability")
        self.inner = inner
        self.noise = noise
        self.seed = seed
        self.name = f"{getattr(inner, 'name', 'strategy')}+noise{noise:g}"
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self.inner.reset()
        self._rng = np.random.default_rng(self.seed)

    def act(self, opponent_history: Sequence[int]) -> int:
        action = self.inner.act(opponent_history)
        if self.noise > 0.0 and self._rng.random() < self.noise:
            return 1 - action
        return action


@dataclass
class MatchRecord:
    """One pairing's aggregate outcome."""

    name_a: str
    name_b: str
    score_a: float
    score_b: float
    cooperation_rate_a: float
    cooperation_rate_b: float


@dataclass
class TournamentResult:
    """Full round-robin outcome."""

    names: List[str]
    total_scores: np.ndarray
    match_records: List[MatchRecord]
    rounds: int
    repetitions: int

    def ranking(self) -> List[Tuple[str, float]]:
        """Strategies sorted by total score, best first."""
        order = np.argsort(-self.total_scores)
        return [(self.names[i], float(self.total_scores[i])) for i in order]

    def rank_of(self, name: str) -> int:
        """1-based placement of a strategy."""
        for position, (entry, _score) in enumerate(self.ranking(), start=1):
            if entry == name:
                return position
        raise KeyError(f"no entrant named {name!r}")

    def table(self) -> str:
        lines = [f"{'rank':>4}  {'strategy':<28} {'score':>10}"]
        for position, (name, score) in enumerate(self.ranking(), start=1):
            lines.append(f"{position:>4}  {name:<28} {score:>10.2f}")
        return "\n".join(lines)


def round_robin_tournament(
    strategies: Sequence[RepeatedGameStrategy],
    rounds: int = 200,
    delta: float = 1.0,
    noise: float = 0.0,
    repetitions: int = 1,
    include_self_play: bool = True,
    stage: Optional[NormalFormGame] = None,
    seed: int = 0,
) -> TournamentResult:
    """Every strategy meets every other (and itself, as in Axelrod 1984).

    Scores are summed discounted payoffs across all matches and
    repetitions.  With ``noise > 0`` strategies are wrapped in
    :class:`NoisyStrategy` (fresh seeds per match for independence).
    """
    stage = stage if stage is not None else prisoners_dilemma()
    game = RepeatedGame(stage, rounds=rounds, delta=delta)
    names = [getattr(s, "name", f"entry{i}") for i, s in enumerate(strategies)]
    if len(set(names)) != len(names):
        raise ValueError("strategy names must be unique")
    n = len(strategies)
    specs = [memory_one_spec(s) for s in strategies]
    grid = (
        memory_one_match_grid(specs, game)
        if noise == 0.0 and any(spec is not None for spec in specs)
        else None
    )
    totals = np.zeros(n)
    records: List[MatchRecord] = []
    seed_counter = seed
    for i in range(n):
        for j in range(i, n):
            if i == j and not include_self_play:
                continue
            if grid is not None and specs[i] is not None and specs[j] is not None:
                # Deterministic memory-one pairing: every repetition
                # replays the same match, so the batched grid entry is
                # the per-repetition score.
                seed_counter += 2 * repetitions
                score_a = float(grid.discounted_0[i, j])
                score_b = float(grid.discounted_1[i, j])
                coop_a = float(grid.cooperation_0[i, j])
                coop_b = float(grid.cooperation_1[i, j])
                records.append(
                    MatchRecord(
                        name_a=names[i],
                        name_b=names[j],
                        score_a=score_a,
                        score_b=score_b,
                        cooperation_rate_a=coop_a,
                        cooperation_rate_b=coop_b,
                    )
                )
                totals[i] += score_a
                if i != j:
                    totals[j] += score_b
                continue
            score_a = score_b = 0.0
            coop_a = coop_b = 0.0
            for _rep in range(repetitions):
                a: RepeatedGameStrategy = strategies[i]
                b: RepeatedGameStrategy = strategies[j]
                if noise > 0.0:
                    a = NoisyStrategy(a, noise, seed=seed_counter)
                    b = NoisyStrategy(b, noise, seed=seed_counter + 1)
                seed_counter += 2
                result = game.play(a, b)
                score_a += float(result.discounted[0])
                score_b += float(result.discounted[1])
                coop_a += np.mean([act[0] == 0 for act in result.actions])
                coop_b += np.mean([act[1] == 0 for act in result.actions])
            score_a /= repetitions
            score_b /= repetitions
            coop_a /= repetitions
            coop_b /= repetitions
            records.append(
                MatchRecord(
                    name_a=names[i],
                    name_b=names[j],
                    score_a=score_a,
                    score_b=score_b,
                    cooperation_rate_a=coop_a,
                    cooperation_rate_b=coop_b,
                )
            )
            totals[i] += score_a
            if i != j:
                totals[j] += score_b
    return TournamentResult(
        names=names,
        total_scores=totals,
        match_records=records,
        rounds=rounds,
        repetitions=repetitions,
    )
