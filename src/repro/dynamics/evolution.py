"""Evolutionary tournament: replicator dynamics over a strategy zoo.

Builds the empirical pairwise-payoff matrix of repeated-game strategies
and runs single-population replicator dynamics on it — Axelrod's
"ecological" tournament.  Used to show the defection-heavy strategies
wash out while reciprocators take over the population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dynamics.tournament import memory_one_match_grid
from repro.games.classics import prisoners_dilemma
from repro.games.normal_form import NormalFormGame
from repro.games.repeated import RepeatedGame, RepeatedGameStrategy
from repro.machines.strategies import memory_one_spec
from repro.solvers.replicator import replicator_dynamics

__all__ = ["EvolutionResult", "evolutionary_tournament", "empirical_payoff_matrix"]


@dataclass
class EvolutionResult:
    """Terminal population of an ecological tournament."""

    names: List[str]
    initial: np.ndarray
    final: np.ndarray
    iterations: int
    converged: bool

    def dominant(self, threshold: float = 0.01) -> List[Tuple[str, float]]:
        """Strategies with terminal share above ``threshold``, sorted."""
        pairs = [
            (name, float(share))
            for name, share in zip(self.names, self.final)
            if share > threshold
        ]
        return sorted(pairs, key=lambda p: -p[1])


def empirical_payoff_matrix(
    strategies: Sequence[RepeatedGameStrategy],
    rounds: int = 200,
    delta: float = 1.0,
    stage: Optional[NormalFormGame] = None,
) -> np.ndarray:
    """Average per-round payoff of strategy ``i`` against strategy ``j``.

    Pairs of deterministic memory-one strategies fill in from one
    batched all-pairs recurrence (:func:`memory_one_match_grid`); only
    pairings that involve a strategy with no memory-one form fall back
    to per-match object playouts.
    """
    stage = stage if stage is not None else prisoners_dilemma()
    game = RepeatedGame(stage, rounds=rounds, delta=delta)
    n = len(strategies)
    specs = [memory_one_spec(s) for s in strategies]
    matrix = np.zeros((n, n))
    if any(spec is not None for spec in specs):
        grid = memory_one_match_grid(specs, game)
        matrix = grid.discounted_0 / rounds
    for i in range(n):
        for j in range(n):
            if specs[i] is None or specs[j] is None:
                result = game.play(strategies[i], strategies[j])
                matrix[i, j] = float(result.discounted[0]) / rounds
    return matrix


def evolutionary_tournament(
    strategies: Sequence[RepeatedGameStrategy],
    rounds: int = 200,
    delta: float = 1.0,
    iterations: int = 5_000,
    step: float = 0.1,
    initial: Optional[Sequence[float]] = None,
    stage: Optional[NormalFormGame] = None,
) -> EvolutionResult:
    """Replicator dynamics over the empirical strategy-vs-strategy matrix."""
    names = [getattr(s, "name", f"entry{i}") for i, s in enumerate(strategies)]
    matrix = empirical_payoff_matrix(
        strategies, rounds=rounds, delta=delta, stage=stage
    )
    game = NormalFormGame(
        np.stack([matrix, matrix.T]),
        action_labels=[names, names],
        name="ecological tournament",
    )
    n = len(strategies)
    start = (
        np.full(n, 1.0 / n)
        if initial is None
        else np.asarray(initial, dtype=float)
    )
    result = replicator_dynamics(
        game, initial=start, iterations=iterations, step=step
    )
    return EvolutionResult(
        names=names,
        initial=start,
        final=np.asarray(result.final[0]),
        iterations=result.iterations,
        converged=result.converged,
    )
