"""Tournament and evolutionary dynamics (Axelrod's setting, Section 3)."""

from repro.dynamics.tournament import (
    MatchRecord,
    NoisyStrategy,
    TournamentResult,
    round_robin_tournament,
)
from repro.dynamics.evolution import (
    EvolutionResult,
    evolutionary_tournament,
)

__all__ = [
    "EvolutionResult",
    "MatchRecord",
    "NoisyStrategy",
    "TournamentResult",
    "evolutionary_tournament",
    "round_robin_tournament",
]
