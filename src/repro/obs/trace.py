"""Cross-process tracing: 128-bit trace ids, spans, and the wire header.

One client sweep fans out across four processes (client → asyncio
server → replicated coordinator → workers).  This module gives every
hop the same causal key:

* a :class:`TraceContext` — ``(trace_id, span_id)`` — carried inside a
  process by a :mod:`contextvars` variable, and between processes by
  the ``X-Repro-Trace`` HTTP header (:func:`format_header` /
  :func:`parse_header`);
* :func:`span` context managers that time a section and append a
  :class:`Span` record to a bounded :class:`SpanRecorder` ring buffer
  — but only when a trace is active, so untraced load-test traffic
  records nothing;
* JSON export/ingest (:meth:`SpanRecorder.export` /
  :meth:`SpanRecorder.ingest`) so workers and clients can push their
  finished spans to a server's ``POST /v1/trace`` endpoint and
  ``python -m repro.obs scrape --trace <id>`` can stitch one trace
  from the whole fleet.

Trace ids are 128 bits (32 hex chars) and span ids 64 bits (16 hex
chars), both from ``os.urandom``.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "HEADER",
    "Span",
    "SpanRecorder",
    "TraceContext",
    "activate",
    "current_context",
    "default_recorder",
    "format_header",
    "new_trace",
    "parse_header",
    "set_default_recorder",
    "span",
    "span_for_trace_id",
]

HEADER = "X-Repro-Trace"
"""The HTTP header carrying ``<trace_id 32hex>-<span_id 16hex>``."""


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one trace: trace id + current span id."""

    trace_id: str
    span_id: str

    def child(self) -> "TraceContext":
        """A new context in the same trace with a fresh span id."""
        return TraceContext(self.trace_id, _new_span_id())


_CURRENT: contextvars.ContextVar[Optional[TraceContext]] = contextvars.ContextVar(
    "repro_trace", default=None
)


def _new_span_id() -> str:
    """A fresh 64-bit span id as 16 hex chars."""
    return os.urandom(8).hex()


def new_trace() -> TraceContext:
    """A fresh root context: 128-bit trace id, 64-bit span id."""
    return TraceContext(os.urandom(16).hex(), _new_span_id())


def current_context() -> Optional[TraceContext]:
    """The active :class:`TraceContext`, or ``None`` outside any trace."""
    return _CURRENT.get()


@contextlib.contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Make ``ctx`` the active context for the enclosed block.

    Pass the parsed inbound context explicitly when crossing an
    executor boundary — ``run_in_executor`` does not propagate
    contextvars.
    """
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


def format_header(ctx: TraceContext) -> str:
    """Encode a context as the ``X-Repro-Trace`` header value."""
    return f"{ctx.trace_id}-{ctx.span_id}"


def parse_header(value: Optional[str]) -> Optional[TraceContext]:
    """Decode a header value; malformed input yields ``None``, never an error."""
    if not value:
        return None
    value = value.strip()
    trace_id, _, span_id = value.partition("-")
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    return TraceContext(trace_id.lower(), span_id.lower())


@dataclass
class Span:
    """One timed, named section of work inside a trace."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    component: str
    start_wall: float
    duration: float
    attrs: Dict[str, Any]

    def to_json_obj(self) -> Dict[str, Any]:
        """Plain-dict form for JSON export and the ingest endpoint."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "component": self.component,
            "start_wall": self.start_wall,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_json_obj(cls, obj: Dict[str, Any]) -> "Span":
        """Rebuild a span from its :meth:`to_json_obj` dict."""
        return cls(
            trace_id=str(obj["trace_id"]),
            span_id=str(obj["span_id"]),
            parent_id=obj.get("parent_id"),
            name=str(obj.get("name", "")),
            component=str(obj.get("component", "")),
            start_wall=float(obj.get("start_wall", 0.0)),
            duration=float(obj.get("duration", 0.0)),
            attrs=dict(obj.get("attrs") or {}),
        )


class SpanRecorder:
    """A bounded, thread-safe ring buffer of finished spans.

    Old spans fall off the back once ``capacity`` is reached;
    :meth:`ingest` deduplicates on ``(trace_id, span_id)`` so pushing
    the same batch twice (client retries are idempotent) stores one
    copy.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._spans: deque = deque(maxlen=capacity)
        self._seen: "deque[tuple]" = deque(maxlen=capacity)
        self._seen_set: set = set()
        self._lock = threading.Lock()

    def record(self, span: Span) -> None:
        """Append one locally-produced span."""
        self._add(span)

    def _add(self, span: Span) -> bool:
        """Add a span unless its id was already seen; True if stored."""
        key = (span.trace_id, span.span_id)
        with self._lock:
            if key in self._seen_set:
                return False
            if len(self._seen) == self._seen.maxlen:
                self._seen_set.discard(self._seen[0])
            self._seen.append(key)
            self._seen_set.add(key)
            self._spans.append(span)
            return True

    def ingest(self, objs: List[Dict[str, Any]]) -> int:
        """Store pushed span dicts (deduplicated); returns how many stuck."""
        added = 0
        for obj in objs:
            try:
                span = Span.from_json_obj(obj)
            except (KeyError, TypeError, ValueError):
                continue
            if self._add(span):
                added += 1
        return added

    def for_trace(self, trace_id: str) -> List[Span]:
        """All retained spans of one trace, ordered by start time."""
        with self._lock:
            spans = [s for s in self._spans if s.trace_id == trace_id]
        return sorted(spans, key=lambda s: s.start_wall)

    def export(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Retained spans as JSON dicts (optionally one trace only)."""
        if trace_id is not None:
            return [s.to_json_obj() for s in self.for_trace(trace_id)]
        with self._lock:
            spans = list(self._spans)
        return [s.to_json_obj() for s in sorted(spans, key=lambda s: s.start_wall)]

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return all retained spans (for best-effort pushes)."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
        return [s.to_json_obj() for s in spans]

    def __len__(self) -> int:
        """Number of retained spans."""
        with self._lock:
            return len(self._spans)


_DEFAULT_RECORDER = SpanRecorder()


def default_recorder() -> SpanRecorder:
    """The process-wide recorder spans land in by default."""
    return _DEFAULT_RECORDER


def set_default_recorder(recorder: SpanRecorder) -> SpanRecorder:
    """Replace the process default recorder; returns the previous one."""
    global _DEFAULT_RECORDER
    previous = _DEFAULT_RECORDER
    _DEFAULT_RECORDER = recorder
    return previous


@contextlib.contextmanager
def span(
    name: str,
    component: str,
    ctx: Optional[TraceContext] = None,
    recorder: Optional[SpanRecorder] = None,
    attrs: Optional[Dict[str, Any]] = None,
) -> Iterator[Optional[TraceContext]]:
    """Time a section as one span of the active (or given) trace.

    The inbound context (explicit ``ctx`` or the contextvar) becomes the
    parent; the block runs with a child context active, so nested spans
    and outbound headers chain correctly.  Outside any trace this is a
    no-op that records nothing — instrumentation is free on untraced
    traffic.
    """
    parent = ctx if ctx is not None else _CURRENT.get()
    if parent is None:
        yield None
        return
    child = parent.child()
    start_wall = time.time()
    start = time.monotonic()
    token = _CURRENT.set(child)
    try:
        yield child
    finally:
        _CURRENT.reset(token)
        duration = time.monotonic() - start
        target = recorder if recorder is not None else _DEFAULT_RECORDER
        target.record(
            Span(
                trace_id=parent.trace_id,
                span_id=child.span_id,
                parent_id=parent.span_id,
                name=name,
                component=component,
                start_wall=start_wall,
                duration=duration,
                attrs=dict(attrs or {}),
            )
        )


def span_for_trace_id(
    name: str,
    component: str,
    trace_id: Optional[str],
    recorder: Optional[SpanRecorder] = None,
    attrs: Optional[Dict[str, Any]] = None,
):
    """A :func:`span` joined to a bare trace id (no parent span known).

    Workers receive only the sweep's ``trace_id`` through the lease
    payload; this builds a context with a fresh span id so their
    execution still lands in the same stitched trace.
    """
    if not trace_id:
        return span(name, component, None, recorder, attrs)
    ctx = TraceContext(str(trace_id), _new_span_id())
    return span(name, component, ctx, recorder, attrs)
