"""Self-contained HTML dashboard for the fleet watchdog.

:func:`render_dash` turns one :class:`repro.obs.watch.Watchdog` into a
single HTML document with **zero external assets**: styles are an inline
``<style>`` block (CSS custom properties with a selected dark mode, not
an automatic flip) and every chart is inline SVG, so the page works from
``curl -o dash.html`` on an air-gapped box.

Layout: a fleet topology table (role/term/commit per endpoint, health as
icon + label — never color alone), the alert board with the rule
lifecycle state, term/leader/commit-index sparklines with one fixed
categorical color per endpoint (assigned in slot order, never cycled;
endpoints past the third fold to a muted series), request-rate stat
tiles, and a latency-percentile table computed from scraped histogram
bucket deltas.  A ``<meta http-equiv="refresh">`` keeps it live without
JavaScript.
"""

from __future__ import annotations

import html
import time
from typing import Any, Dict, List, Optional, Tuple

from .rules import histogram_quantile

__all__ = ["render_dash"]

_SLOTS = 3  # categorical slots validated all-pairs; extras fold to muted

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-other: #898781;
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --grid: #2c2c2a;
  --baseline: #383835;
  --border: rgba(255, 255, 255, 0.10);
  --series-1: #3987e5;
  --series-2: #d95926;
  --series-3: #199e70;
}
* { box-sizing: border-box; }
body {
  margin: 0;
  padding: 24px;
  background: var(--page);
  color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px;
}
h1 { font-size: 18px; margin: 0 0 4px; }
h2 { font-size: 14px; margin: 24px 0 8px; color: var(--text-secondary); }
.sub { color: var(--text-muted); font-size: 12px; margin-bottom: 16px; }
.card {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 16px;
  margin-bottom: 16px;
}
table { border-collapse: collapse; width: 100%; }
th {
  text-align: left;
  color: var(--text-muted);
  font-weight: 500;
  font-size: 12px;
  padding: 4px 12px 4px 0;
  border-bottom: 1px solid var(--grid);
}
td {
  padding: 6px 12px 6px 0;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
  color: var(--text-primary);
}
tr:last-child td { border-bottom: none; }
.status { font-weight: 600; }
.status.good { color: var(--status-good); }
.status.warning { color: var(--status-warning); }
.status.critical { color: var(--status-critical); }
.row { display: flex; flex-wrap: wrap; gap: 16px; }
.tile { flex: 1 1 160px; }
.tile .value { font-size: 26px; font-weight: 600; }
.tile .label { color: var(--text-secondary); font-size: 12px; }
.legend { margin-top: 6px; font-size: 12px; color: var(--text-secondary); }
.legend span.swatch {
  display: inline-block;
  width: 10px;
  height: 10px;
  border-radius: 2px;
  margin: 0 4px 0 10px;
  vertical-align: baseline;
}
.spark-minmax { font-size: 11px; color: var(--text-muted); }
svg text { font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
"""


def _slot_color(index: int) -> str:
    """The CSS variable for one endpoint's fixed categorical slot."""
    if index < _SLOTS:
        return f"var(--series-{index + 1})"
    return "var(--series-other)"


def _status_span(state: str) -> str:
    """Health/alert state as icon + label (never color alone)."""
    classes = {
        "ok": ("good", "✓"),
        "up": ("good", "✓"),
        "resolved": ("good", "✓"),
        "pending": ("warning", "⚠"),
        "firing": ("critical", "✕"),
        "down": ("critical", "✕"),
    }
    css, icon = classes.get(state, ("warning", "⚠"))
    return (
        f'<span class="status {css}">{icon}&nbsp;'
        f"{html.escape(state)}</span>"
    )


def _sparkline(
    series: List[Tuple[str, List[Tuple[float, float]], int]],
    width: int = 280,
    height: int = 56,
) -> str:
    """Inline-SVG sparkline: 2px lines, one color per endpoint slot.

    ``series`` entries are ``(label, [(ts, value), ...], slot_index)``.
    All series share one time axis and one value axis (never two
    scales); the min/max of the shared value range label the left edge
    in muted ink.
    """
    drawable = [(label, pts, slot) for label, pts, slot in series if pts]
    if not drawable:
        return '<div class="spark-minmax">no samples yet</div>'
    t_min = min(p[0] for _l, pts, _s in drawable for p in pts)
    t_max = max(p[0] for _l, pts, _s in drawable for p in pts)
    v_min = min(p[1] for _l, pts, _s in drawable for p in pts)
    v_max = max(p[1] for _l, pts, _s in drawable for p in pts)
    if t_max - t_min <= 0:
        t_max = t_min + 1.0
    if v_max - v_min <= 0:
        v_max = v_min + 1.0
    pad = 4.0
    plot_w = width - 2 * pad
    plot_h = height - 2 * pad

    def scale(ts: float, value: float) -> Tuple[float, float]:
        """Map one data point into SVG pixel space."""
        x = pad + (ts - t_min) / (t_max - t_min) * plot_w
        y = pad + (1.0 - (value - v_min) / (v_max - v_min)) * plot_h
        return x, y

    lines = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">',
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="var(--baseline)" stroke-width="1"/>',
    ]
    for _label, points, slot in drawable:
        coords = " ".join(
            f"{x:.1f},{y:.1f}" for x, y in (scale(ts, v) for ts, v in points)
        )
        lines.append(
            f'<polyline points="{coords}" fill="none" '
            f'stroke="{_slot_color(slot)}" stroke-width="2" '
            f'stroke-linejoin="round" stroke-linecap="round"/>'
        )
    lines.append("</svg>")
    legend = "".join(
        f'<span class="swatch" style="background:{_slot_color(slot)}"></span>'
        f"{html.escape(label)}"
        for label, _pts, slot in drawable
    )
    minmax = (
        f'<div class="spark-minmax">min {v_min:g} &middot; max {v_max:g}'
        "</div>"
    )
    return (
        "".join(lines)
        + (f'<div class="legend">{legend}</div>' if len(drawable) > 1 else "")
        + minmax
    )


def _endpoint_short(endpoint: str) -> str:
    """A compact display label for one endpoint URL."""
    return endpoint.split("//", 1)[-1]


def _gauge_sparks(watchdog: Any, metric: str) -> str:
    """One sparkline panel of a gauge's raw history for every endpoint."""
    series = []
    for index, endpoint in enumerate(watchdog.endpoints):
        points = watchdog.tsdb.raw_points(endpoint, metric)
        series.append((_endpoint_short(endpoint), points, index))
    return _sparkline(series)


def _fmt_seconds(value: Optional[float]) -> str:
    """A latency in milliseconds, or a dash when unknown."""
    if value is None:
        return "&ndash;"
    return f"{value * 1000.0:.1f}ms"


def render_dash(watchdog: Any) -> str:
    """Render the watchdog's live state as one self-contained HTML page."""
    now = time.time()
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f'<meta http-equiv="refresh" content="{max(2, int(watchdog.interval * 2))}">',
        "<title>repro watch</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>repro fleet watchdog</h1>",
        f'<div class="sub">tick {watchdog.ticks} &middot; '
        f"{len(watchdog.healthy())}/{len(watchdog.endpoints)} endpoints "
        f"healthy &middot; rendered "
        f"{time.strftime('%H:%M:%S', time.localtime(now))}</div>",
    ]

    # -- topology ------------------------------------------------------
    health = watchdog.endpoint_health()
    statuses: Dict[str, Dict[str, Any]] = getattr(watchdog, "_statuses", {})
    parts.append('<div class="card"><h2>fleet topology</h2><table>')
    parts.append(
        "<tr><th>endpoint</th><th>health</th><th>role</th><th>term</th>"
        "<th>commit</th><th>applied</th><th>leader</th></tr>"
    )
    for index, endpoint in enumerate(watchdog.endpoints):
        info = health.get(endpoint, {})
        raft = statuses.get(endpoint, {})
        state = "down" if info.get("down") else "up"
        swatch = (
            f'<span class="swatch" style="background:{_slot_color(index)};'
            'display:inline-block;width:10px;height:10px;'
            'border-radius:2px;margin-right:6px"></span>'
        )
        role = raft.get("role")
        leader_hint = raft.get("leader")
        parts.append(
            "<tr>"
            f"<td>{swatch}{html.escape(_endpoint_short(endpoint))}</td>"
            f"<td>{_status_span(state)}</td>"
            f"<td>{html.escape(str(role)) if role else '&ndash;'}</td>"
            f"<td>{raft.get('term', '&ndash;')}</td>"
            f"<td>{raft.get('commit_index', '&ndash;')}</td>"
            f"<td>{raft.get('applied_index', '&ndash;')}</td>"
            f"<td>{html.escape(_endpoint_short(str(leader_hint))) if leader_hint else '&ndash;'}</td>"
            "</tr>"
        )
    parts.append("</table></div>")

    # -- alerts --------------------------------------------------------
    parts.append('<div class="card"><h2>alerts</h2><table>')
    parts.append(
        "<tr><th>rule</th><th>kind</th><th>state</th><th>message</th></tr>"
    )
    for alert in watchdog.alerts.snapshot():
        parts.append(
            "<tr>"
            f"<td>{html.escape(alert['rule'])}</td>"
            f"<td>{html.escape(alert['kind'])}</td>"
            f"<td>{_status_span(alert['state'])}</td>"
            f"<td>{html.escape(alert['message'] or '')}</td>"
            "</tr>"
        )
    parts.append("</table></div>")

    # -- consensus history ---------------------------------------------
    parts.append('<div class="card"><h2>consensus history</h2><div class="row">')
    for title, metric in (
        ("term", "repro_raft_term"),
        ("leader flag", "repro_raft_is_leader"),
        ("commit index", "repro_raft_commit_index"),
    ):
        parts.append(
            f'<div class="tile"><div class="label">{title}</div>'
            f"{_gauge_sparks(watchdog, metric)}</div>"
        )
    parts.append("</div></div>")

    # -- serving -------------------------------------------------------
    parts.append('<div class="card"><h2>serving</h2><div class="row">')
    for index, endpoint in enumerate(watchdog.endpoints):
        rate = 0.0
        seen = False
        for key in watchdog.tsdb.keys():
            if key[0] != endpoint or key[1] != "repro_http_requests_total":
                continue
            per_second = watchdog.tsdb.rate(endpoint, key[1], key[2], 60.0, now)
            if per_second is not None:
                rate += per_second
                seen = True
        value = f"{rate:.1f}/s" if seen else "&ndash;"
        parts.append(
            f'<div class="tile"><div class="value">{value}</div>'
            f'<div class="label">'
            f'<span class="swatch" style="background:{_slot_color(index)};'
            'display:inline-block;width:10px;height:10px;'
            'border-radius:2px;margin-right:4px"></span>'
            f"req rate &middot; {html.escape(_endpoint_short(endpoint))}"
            "</div></div>"
        )
    parts.append("</div>")

    parts.append("<table><tr><th>endpoint</th><th>http p50</th>"
                 "<th>http p99</th><th>loop lag p99</th><th>fsync p99</th></tr>")
    for endpoint in watchdog.endpoints:
        p50 = histogram_quantile(
            watchdog.tsdb, endpoint, "repro_http_request_seconds", 0.50, 300.0, now
        )
        p99 = histogram_quantile(
            watchdog.tsdb, endpoint, "repro_http_request_seconds", 0.99, 300.0, now
        )
        lag = histogram_quantile(
            watchdog.tsdb, endpoint, "repro_event_loop_lag_seconds", 0.99, 300.0, now
        )
        fsync = histogram_quantile(
            watchdog.tsdb, endpoint, "repro_log_fsync_seconds", 0.99, 300.0, now
        )
        parts.append(
            "<tr>"
            f"<td>{html.escape(_endpoint_short(endpoint))}</td>"
            f"<td>{_fmt_seconds(p50)}</td><td>{_fmt_seconds(p99)}</td>"
            f"<td>{_fmt_seconds(lag)}</td><td>{_fmt_seconds(fsync)}</td>"
            "</tr>"
        )
    parts.append("</table></div>")

    parts.append("</body></html>")
    return "".join(parts)
