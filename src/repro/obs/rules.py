"""Declarative invariant/SLO rules evaluated on every watchdog tick.

Each :class:`Rule` inspects one scrape-tick :class:`RuleContext` (the
TSDB history plus the newest parsed samples per endpoint) and returns a
violation message or ``None``.  The :class:`AlertManager` drives the
alert lifecycle per rule — ``ok → pending → firing → resolved`` — so a
persistent violation fires exactly once instead of re-alerting every
tick, and every transition is a structured
:func:`repro.obs.logs.log_event` line (``watch.alert``).

Two rule families ship by default (:func:`default_rules`):

**Protocol invariants** — the live-fleet counterparts of the properties
``repro.verify`` proves offline on the bounded model:

* ``raft.one_leader`` — exactly one ``repro_raft_is_leader`` flag is
  set fleet-wide (election safety, checked by the model checker as
  *at most one leader per term*);
* ``raft.term_monotonic`` — no endpoint's term gauge ever decreases;
* ``raft.term_convergent`` — healthy endpoints agree on the term once
  an election settles;
* ``raft.commit_monotonic`` — no committed-index regression on a
  continuously-up endpoint (commit_index is volatile across a real
  restart, so a detected process restart suppresses one tick);
* ``cluster.quarantine_votes`` — a quarantined worker's vote count
  never increases afterwards (quarantined workers never vote).

**SLOs** — serving-quality ceilings:

* ``slo.http_p99`` — p99 request latency from bucket deltas;
* ``slo.error_burn`` — multi-window 5xx error-budget burn (both the
  short and long window must burn, so a single bad scrape cannot
  fire it and a sustained burn cannot hide);
* ``slo.loop_lag_p99`` — event-loop scheduling lag ceiling;
* ``slo.fsync_p99`` — durable-log fsync latency ceiling.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .logs import log_event
from .tsdb import TSDB

__all__ = [
    "Alert",
    "AlertManager",
    "Rule",
    "RuleContext",
    "default_rules",
    "histogram_quantile",
]

Samples = Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]


@dataclass
class RuleContext:
    """Everything one evaluation tick can see.

    ``healthy`` lists endpoints whose latest scrape succeeded;
    ``restarted`` flags endpoints whose process identity changed since
    the previous scrape (any counter went backwards), which suppresses
    monotonicity checks for one tick.
    """

    tsdb: TSDB
    now: float
    interval: float
    healthy: List[str]
    samples: Dict[str, Samples]
    previous: Dict[str, Samples]
    statuses: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    workers: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    restarted: Dict[str, bool] = field(default_factory=dict)

    def value(
        self, endpoint: str, metric: str, labels: Tuple[Tuple[str, str], ...] = ()
    ) -> Optional[float]:
        """The endpoint's newest value for one sample, if scraped."""
        return self.samples.get(endpoint, {}).get((metric, labels))

    def previous_value(
        self, endpoint: str, metric: str, labels: Tuple[Tuple[str, str], ...] = ()
    ) -> Optional[float]:
        """The endpoint's value one scrape earlier, if present."""
        return self.previous.get(endpoint, {}).get((metric, labels))


@dataclass
class Rule:
    """One named check: a predicate over the tick context.

    ``check`` returns a violation message (the rule is breached this
    tick) or ``None``.  ``for_seconds`` is the dwell before a pending
    violation fires; ``0`` fires on the first breached tick.
    """

    name: str
    kind: str  # "invariant" | "slo"
    description: str
    check: Callable[[RuleContext], Optional[str]]
    for_seconds: float = 0.0


@dataclass
class Alert:
    """One rule's live alert state."""

    rule: str
    kind: str
    state: str = "ok"  # ok | pending | firing | resolved
    since: float = 0.0
    message: str = ""
    transitions: int = 0

    def to_json_obj(self) -> Dict[str, Any]:
        """Plain-dict form for ``/v1/watch/status`` and the bundle."""
        return {
            "rule": self.rule,
            "kind": self.kind,
            "state": self.state,
            "since": self.since,
            "message": self.message,
            "transitions": self.transitions,
        }


class AlertManager:
    """Drives every rule's ``ok → pending → firing → resolved`` machine.

    ``on_firing`` (when given) runs once per pending→firing edge —
    the watchdog hooks the flight recorder there.  All transitions
    append to a bounded ``alert_log`` and emit ``watch.alert`` events,
    so tests and CI can assert the exact lifecycle a fault produced.
    """

    def __init__(
        self,
        rules: List[Rule],
        on_firing: Optional[Callable[[Alert, RuleContext], None]] = None,
        log_capacity: int = 1024,
    ) -> None:
        """Build one alert per rule, all starting in the ok state."""
        self.rules = list(rules)
        self.on_firing = on_firing
        self.alerts: Dict[str, Alert] = {
            rule.name: Alert(rule.name, rule.kind) for rule in self.rules
        }
        self.alert_log: List[Dict[str, Any]] = []
        self._log_capacity = int(log_capacity)
        self._lock = threading.Lock()

    def _transition(
        self, alert: Alert, state: str, ctx: RuleContext, message: str
    ) -> None:
        """Move one alert to ``state``, logging the edge."""
        alert.state = state
        alert.since = ctx.now
        alert.message = message
        alert.transitions += 1
        entry = {
            "ts": time.time(),
            "mono": ctx.now,
            "rule": alert.rule,
            "kind": alert.kind,
            "state": state,
            "message": message,
        }
        with self._lock:
            self.alert_log.append(entry)
            if len(self.alert_log) > self._log_capacity:
                del self.alert_log[: -self._log_capacity]
        log_event(
            "watch.alert",
            "watch",
            rule=alert.rule,
            kind=alert.kind,
            state=state,
            message=message,
        )

    def evaluate(self, ctx: RuleContext) -> List[Alert]:
        """Run every rule once against ``ctx``; returns changed alerts."""
        changed: List[Alert] = []
        for rule in self.rules:
            alert = self.alerts[rule.name]
            try:
                violation = rule.check(ctx)
            except Exception as exc:  # a broken rule must not kill the loop
                violation = None
                log_event(
                    "watch.rule_error",
                    "watch",
                    rule=rule.name,
                    error=f"{type(exc).__name__}: {exc}",
                )
            if violation is not None:
                if alert.state in ("ok", "resolved"):
                    self._transition(alert, "pending", ctx, violation)
                    changed.append(alert)
                if (
                    alert.state == "pending"
                    and ctx.now - alert.since >= rule.for_seconds
                ):
                    self._transition(alert, "firing", ctx, violation)
                    changed.append(alert)
                    if self.on_firing is not None:
                        try:
                            self.on_firing(alert, ctx)
                        except Exception as exc:
                            log_event(
                                "watch.forensics_error",
                                "watch",
                                rule=alert.rule,
                                error=f"{type(exc).__name__}: {exc}",
                            )
            else:
                if alert.state == "firing":
                    self._transition(alert, "resolved", ctx, alert.message)
                    changed.append(alert)
                elif alert.state == "pending":
                    self._transition(alert, "ok", ctx, "")
                    changed.append(alert)
        return changed

    def firing(self) -> List[Alert]:
        """Alerts currently in the firing state."""
        return [a for a in self.alerts.values() if a.state == "firing"]

    def snapshot(self) -> List[Dict[str, Any]]:
        """Every rule's alert state as JSON-ready dicts."""
        return [self.alerts[rule.name].to_json_obj() for rule in self.rules]

    def log_snapshot(self) -> List[Dict[str, Any]]:
        """The transition history, oldest first."""
        with self._lock:
            return list(self.alert_log)


# -- histogram math over scraped buckets --------------------------------


def histogram_quantile(
    tsdb: TSDB,
    endpoint: str,
    metric: str,
    q: float,
    window: float,
    now: float,
) -> Optional[float]:
    """The ``q``-quantile of a scraped histogram over a trailing window.

    Works on bucket *deltas*: for every ``<metric>_bucket`` series of
    the endpoint (all label sets, summed per ``le``), take the
    reset-aware increase over the window, then interpolate inside the
    winning bucket exactly like
    :meth:`repro.obs.metrics.Histogram.percentile`.  ``None`` when the
    window saw no observations.
    """
    per_le: Dict[float, float] = {}
    for key in tsdb.keys():
        series_endpoint, name, labels = key
        if series_endpoint != endpoint or name != f"{metric}_bucket":
            continue
        le_value: Optional[float] = None
        for label_name, label_value in labels:
            if label_name == "le":
                le_value = float(label_value)
        if le_value is None:
            continue
        delta = tsdb.increase(endpoint, name, labels, window, now)
        if delta:
            per_le[le_value] = per_le.get(le_value, 0.0) + delta
    if not per_le:
        return None
    bounds = sorted(per_le)
    total = per_le[bounds[-1]]  # +Inf parses to math.inf and sorts last
    if total <= 0.0:
        return None
    rank = q * total
    previous_cumulative = 0.0
    previous_bound = 0.0
    finite = [b for b in bounds if b != float("inf")]
    for bound in bounds:
        cumulative = per_le[bound]
        if cumulative >= rank:
            if bound == float("inf"):
                return finite[-1] if finite else 0.0
            in_bucket = cumulative - previous_cumulative
            if in_bucket <= 0.0:
                return bound
            fraction = (rank - previous_cumulative) / in_bucket
            return previous_bound + (bound - previous_bound) * min(
                max(fraction, 0.0), 1.0
            )
        previous_cumulative = cumulative
        if bound != float("inf"):
            previous_bound = bound
    return finite[-1] if finite else 0.0


# -- the built-in rule catalog ------------------------------------------


def _check_one_leader(ctx: RuleContext) -> Optional[str]:
    """Exactly one leader among healthy endpoints reporting the gauge."""
    flags = {
        endpoint: ctx.value(endpoint, "repro_raft_is_leader")
        for endpoint in ctx.healthy
    }
    reporting = {e: v for e, v in flags.items() if v is not None}
    if not reporting:
        return None  # not a raft fleet (plain service/coordinator)
    leaders = [e for e, v in reporting.items() if v >= 1.0]
    if len(leaders) == 1:
        return None
    return f"{len(leaders)} leaders among {sorted(reporting)} (want exactly 1)"


def _check_term_monotonic(ctx: RuleContext) -> Optional[str]:
    """No endpoint's term gauge ever goes backwards."""
    for endpoint in ctx.healthy:
        current = ctx.value(endpoint, "repro_raft_term")
        previous = ctx.previous_value(endpoint, "repro_raft_term")
        if current is None or previous is None:
            continue
        if ctx.restarted.get(endpoint):
            continue  # term is durable, but don't judge a fresh process
        if current < previous:
            return f"{endpoint} term regressed {previous:g} -> {current:g}"
    return None


def _check_term_convergent(ctx: RuleContext) -> Optional[str]:
    """Healthy endpoints agree on the term once elections settle."""
    terms = {}
    for endpoint in ctx.healthy:
        value = ctx.value(endpoint, "repro_raft_term")
        if value is not None:
            terms[endpoint] = value
    if len(terms) < 2:
        return None
    if max(terms.values()) - min(terms.values()) > 0:
        return f"terms diverge: { {e: int(t) for e, t in sorted(terms.items())} }"
    return None


def _check_commit_monotonic(ctx: RuleContext) -> Optional[str]:
    """No committed-index regression on a continuously-up endpoint."""
    for endpoint in ctx.healthy:
        current = ctx.value(endpoint, "repro_raft_commit_index")
        previous = ctx.previous_value(endpoint, "repro_raft_commit_index")
        if current is None or previous is None:
            continue
        if ctx.restarted.get(endpoint):
            continue  # commit_index is volatile across a real restart
        if current < previous:
            return (
                f"{endpoint} commit_index regressed "
                f"{previous:g} -> {current:g}"
            )
    return None


class _QuarantineVotes:
    """Stateful check: a quarantined worker's votes never increase.

    Remembers each worker's vote count the first tick it is seen
    quarantined; any later increase means the coordinator accepted a
    vote from a worker it had already banned.
    """

    def __init__(self) -> None:
        """No baselines yet; they latch on first sight of a quarantine."""
        self._at_quarantine: Dict[str, float] = {}

    def __call__(self, ctx: RuleContext) -> Optional[str]:
        """Evaluate the invariant against this tick's worker registry."""
        for endpoint, workers in ctx.workers.items():
            for worker in workers:
                if not worker.get("quarantined"):
                    continue
                worker_id = str(worker.get("worker_id"))
                votes = float(worker.get("votes_cast", 0))
                baseline = self._at_quarantine.setdefault(worker_id, votes)
                if votes > baseline:
                    return (
                        f"quarantined worker {worker.get('name', worker_id)} "
                        f"voted after quarantine ({baseline:g} -> {votes:g})"
                    )
        return None


def _slo_quantile_check(
    metric: str, q: float, ceiling: float, window: float
) -> Callable[[RuleContext], Optional[str]]:
    """A check asserting a histogram quantile stays under a ceiling."""

    def check(ctx: RuleContext) -> Optional[str]:
        """Evaluate the quantile ceiling per healthy endpoint."""
        for endpoint in ctx.healthy:
            value = histogram_quantile(
                ctx.tsdb, endpoint, metric, q, window, ctx.now
            )
            if value is not None and value > ceiling:
                return (
                    f"{endpoint} {metric} p{int(q * 100)} "
                    f"{value * 1000.0:.1f}ms > {ceiling * 1000.0:.0f}ms"
                )
        return None

    return check


def _error_burn_check(
    budget: float, short_window: float, long_window: float
) -> Callable[[RuleContext], Optional[str]]:
    """Multi-window error-budget burn over ``repro_http_requests_total``.

    Fires only when the 5xx ratio exceeds the budget in **both**
    windows — the standard fast-burn guard: the short window catches
    the spike, the long window proves it is sustained.
    """

    def ratio(ctx: RuleContext, endpoint: str, window: float) -> Optional[float]:
        """The endpoint's 5xx / total request ratio over one window."""
        total = 0.0
        errors = 0.0
        for key in ctx.tsdb.keys():
            series_endpoint, name, labels = key
            if series_endpoint != endpoint or name != "repro_http_requests_total":
                continue
            delta = ctx.tsdb.increase(endpoint, name, labels, window, ctx.now)
            if not delta:
                continue
            total += delta
            status = dict(labels).get("status", "")
            if status.startswith("5"):
                errors += delta
        if total <= 0.0:
            return None
        return errors / total

    def check(ctx: RuleContext) -> Optional[str]:
        """Evaluate the two-window burn per healthy endpoint."""
        for endpoint in ctx.healthy:
            short = ratio(ctx, endpoint, short_window)
            long_ = ratio(ctx, endpoint, long_window)
            if short is None or long_ is None:
                continue
            if short > budget and long_ > budget:
                return (
                    f"{endpoint} 5xx ratio {short:.2%} (short) / "
                    f"{long_:.2%} (long) > budget {budget:.2%}"
                )
        return None

    return check


def default_rules(
    interval: float = 1.0,
    http_p99_ceiling: float = 0.5,
    loop_lag_p99_ceiling: float = 0.25,
    fsync_p99_ceiling: float = 1.0,
    error_budget: float = 0.01,
    slo_window: float = 60.0,
) -> List[Rule]:
    """The built-in rule catalog, dwell times scaled to the interval.

    Invariant dwells default to a couple of scrape ticks so a mid-
    election scrape does not fire ``one_leader`` on a healthy fleet,
    while a real leader loss (detection latency = the failure
    detector's timeout, cf. the eventually-perfect detector ◊P) still
    fires within seconds.
    """
    dwell = 2.0 * interval
    return [
        Rule(
            "raft.one_leader",
            "invariant",
            "Exactly one repro_raft_is_leader flag fleet-wide.",
            _check_one_leader,
            for_seconds=dwell,
        ),
        Rule(
            "raft.term_monotonic",
            "invariant",
            "Term gauges never decrease on a live endpoint.",
            _check_term_monotonic,
        ),
        Rule(
            "raft.term_convergent",
            "invariant",
            "Healthy endpoints agree on the consensus term.",
            _check_term_convergent,
            for_seconds=max(dwell, 5.0 * interval),
        ),
        Rule(
            "raft.commit_monotonic",
            "invariant",
            "Committed index never regresses on a continuously-up endpoint.",
            _check_commit_monotonic,
        ),
        Rule(
            "cluster.quarantine_votes",
            "invariant",
            "Quarantined workers never vote again.",
            _QuarantineVotes(),
        ),
        Rule(
            "slo.http_p99",
            "slo",
            f"p99 request latency <= {http_p99_ceiling * 1000.0:.0f}ms.",
            _slo_quantile_check(
                "repro_http_request_seconds", 0.99, http_p99_ceiling, slo_window
            ),
            for_seconds=dwell,
        ),
        Rule(
            "slo.error_burn",
            "slo",
            f"5xx error-budget burn <= {error_budget:.2%} in both windows.",
            _error_burn_check(error_budget, slo_window / 4.0, slo_window),
            for_seconds=dwell,
        ),
        Rule(
            "slo.loop_lag_p99",
            "slo",
            f"p99 event-loop lag <= {loop_lag_p99_ceiling * 1000.0:.0f}ms.",
            _slo_quantile_check(
                "repro_event_loop_lag_seconds",
                0.99,
                loop_lag_p99_ceiling,
                slo_window,
            ),
            for_seconds=dwell,
        ),
        Rule(
            "slo.fsync_p99",
            "slo",
            f"p99 fsync latency <= {fsync_p99_ceiling * 1000.0:.0f}ms.",
            _slo_quantile_check(
                "repro_log_fsync_seconds", 0.99, fsync_p99_ceiling, slo_window
            ),
            for_seconds=dwell,
        ),
    ]
