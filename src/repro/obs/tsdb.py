"""A bounded in-memory time-series database for scraped fleet metrics.

The watchdog (:mod:`repro.obs.watch`) polls every fleet endpoint's
``/v1/metrics``, parses the exposition text with
:func:`repro.obs.metrics.parse_prometheus`, and feeds each sample into
a :class:`TSDB`.  The design constraints:

* **fixed memory budget** — every series is a ring: the raw tier keeps
  the newest ``raw_capacity`` samples at scrape resolution, and each
  rollup tier folds them into wider buckets (10 s and 60 s by default)
  so hours of history fit in a few hundred tuples per series.  The
  series population itself is bounded (``max_series``); samples past
  the bound are dropped and counted, never silently absorbed.
* **counters stay usable** — :meth:`TSDB.rate` derives a per-second
  rate from raw samples with counter-reset detection (a value drop is
  a process restart, not a negative rate), which is what the SLO rules
  and the dashboard's throughput sparkline consume.
* **queryable as JSON** — :meth:`TSDB.query` answers the
  ``GET /v1/watch/query`` endpoint: filter by metric name, endpoint,
  and label subset; choose a tier; get ``[[ts, value], ...]`` points.

A rollup bucket keeps ``(bucket_ts, count, sum, min, max, last)`` so a
query can ask for ``avg``/``min``/``max``/``last`` per bucket without
the raw samples that produced it.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["SeriesKey", "TSDB"]

SeriesKey = Tuple[str, str, Tuple[Tuple[str, str], ...]]
"""One series' identity: ``(endpoint, metric_name, sorted_label_pairs)``."""

_DEFAULT_TIERS: Tuple[Tuple[float, int], ...] = ((10.0, 360), (60.0, 240))
# (bucket_width_seconds, capacity) per rollup tier: 10 s buckets for an
# hour, 60 s buckets for four — on top of the raw ring this holds hours
# of history in a fixed budget.


class _Series:
    """One metric stream: a raw ring plus one open+closed ring per tier."""

    __slots__ = ("raw", "tiers")

    def __init__(self, raw_capacity: int, tiers: Sequence[Tuple[float, int]]) -> None:
        """Allocate the raw ring and one empty ring per rollup tier."""
        self.raw: deque = deque(maxlen=raw_capacity)
        # Per tier: a ring of closed buckets; the newest element is the
        # still-open bucket and is updated in place until ts crosses
        # its right edge.
        self.tiers: List[Tuple[float, deque]] = [
            (float(width), deque(maxlen=capacity)) for width, capacity in tiers
        ]

    def add(self, ts: float, value: float) -> None:
        """Append one raw sample and fold it into every rollup tier."""
        self.raw.append((ts, value))
        for width, ring in self.tiers:
            bucket_ts = ts - (ts % width)
            if ring and ring[-1][0] == bucket_ts:
                _, count, total, low, high, _ = ring[-1]
                ring[-1] = (
                    bucket_ts,
                    count + 1,
                    total + value,
                    min(low, value),
                    max(high, value),
                    value,
                )
            else:
                ring.append((bucket_ts, 1, value, value, value, value))


def _labels_match(
    series_labels: Tuple[Tuple[str, str], ...], wanted: Dict[str, str]
) -> bool:
    """True when every wanted label pair appears in the series labels."""
    if not wanted:
        return True
    have = dict(series_labels)
    return all(have.get(k) == v for k, v in wanted.items())


class TSDB:
    """Bounded per-series history over scraped fleet samples.

    Thread-safe: the watchdog's scrape thread writes while HTTP query
    handlers (and the dashboard renderer) read.
    """

    def __init__(
        self,
        raw_capacity: int = 600,
        tiers: Sequence[Tuple[float, int]] = _DEFAULT_TIERS,
        max_series: int = 8192,
    ) -> None:
        """Fix the retention geometry; series allocate lazily on ingest."""
        self.raw_capacity = int(raw_capacity)
        self.tiers = tuple((float(w), int(c)) for w, c in tiers)
        self.max_series = int(max_series)
        self.dropped_series = 0
        self._series: Dict[SeriesKey, _Series] = {}
        self._lock = threading.Lock()

    # -- ingest --------------------------------------------------------

    def record(
        self,
        endpoint: str,
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        value: float,
        ts: float,
    ) -> None:
        """Insert one sample (creates the series on first sight)."""
        key = (endpoint, name, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                if len(self._series) >= self.max_series:
                    self.dropped_series += 1
                    return
                series = _Series(self.raw_capacity, self.tiers)
                self._series[key] = series
            series.add(ts, value)

    def record_scrape(
        self,
        endpoint: str,
        samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float],
        ts: float,
    ) -> int:
        """Insert one parsed ``/v1/metrics`` scrape; returns sample count."""
        for (name, labels), value in samples.items():
            self.record(endpoint, name, labels, value, ts)
        return len(samples)

    # -- introspection -------------------------------------------------

    def series_count(self) -> int:
        """Number of live series."""
        with self._lock:
            return len(self._series)

    def point_count(self) -> int:
        """Total retained points across all series and tiers."""
        with self._lock:
            total = 0
            for series in self._series.values():
                total += len(series.raw)
                for _width, ring in series.tiers:
                    total += len(ring)
            return total

    def keys(self) -> List[SeriesKey]:
        """All live series identities, sorted."""
        with self._lock:
            return sorted(self._series.keys())

    # -- reads ---------------------------------------------------------

    def latest(
        self,
        metric: str,
        endpoint: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> Dict[SeriesKey, Tuple[float, float]]:
        """The newest ``(ts, value)`` per matching series."""
        wanted = labels or {}
        out: Dict[SeriesKey, Tuple[float, float]] = {}
        with self._lock:
            for key, series in self._series.items():
                if key[1] != metric or not series.raw:
                    continue
                if endpoint is not None and key[0] != endpoint:
                    continue
                if not _labels_match(key[2], wanted):
                    continue
                out[key] = series.raw[-1]
        return out

    def raw_points(
        self,
        endpoint: str,
        metric: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        start: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """One series' raw ``(ts, value)`` samples, oldest first."""
        with self._lock:
            series = self._series.get((endpoint, metric, labels))
            points = list(series.raw) if series is not None else []
        if start is not None:
            points = [p for p in points if p[0] >= start]
        return points

    def rate(
        self,
        endpoint: str,
        metric: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        window: float = 60.0,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Per-second increase of a counter over the trailing window.

        Counter resets (a sample below its predecessor — the process
        restarted) contribute the post-reset value instead of a
        negative delta, mirroring Prometheus ``rate()``.  ``None``
        until two samples exist in the window.
        """
        points = self.raw_points(endpoint, metric, labels)
        if now is None and points:
            now = points[-1][0]
        if now is not None:
            points = [p for p in points if p[0] >= now - window]
        if len(points) < 2:
            return None
        increase = 0.0
        previous = points[0][1]
        for _ts, value in points[1:]:
            if value >= previous:
                increase += value - previous
            else:  # counter reset: count the value accumulated since
                increase += value
            previous = value
        elapsed = points[-1][0] - points[0][0]
        if elapsed <= 0.0:
            return None
        return increase / elapsed

    def increase(
        self,
        endpoint: str,
        metric: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        window: float = 60.0,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Reset-aware total increase of a counter over the window."""
        per_second = self.rate(endpoint, metric, labels, window, now)
        if per_second is None:
            return None
        points = self.raw_points(endpoint, metric, labels)
        if now is not None:
            points = [p for p in points if p[0] >= now - window]
        elapsed = points[-1][0] - points[0][0] if len(points) >= 2 else 0.0
        return per_second * elapsed

    def query(
        self,
        metric: str,
        endpoint: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
        tier: float = 0.0,
        agg: str = "last",
    ) -> List[Dict[str, Any]]:
        """Range-query matching series as JSON-ready dicts.

        ``tier`` selects resolution: ``0`` is the raw scrape ring; any
        other value picks the rollup tier with that bucket width (the
        nearest one if no exact match).  ``agg`` chooses the rollup
        value per bucket: ``last``, ``avg``, ``min``, ``max``, or
        ``count`` (ignored on the raw tier).
        """
        wanted = labels or {}
        out: List[Dict[str, Any]] = []
        with self._lock:
            matches = [
                (key, series)
                for key, series in self._series.items()
                if key[1] == metric
                and (endpoint is None or key[0] == endpoint)
                and _labels_match(key[2], wanted)
            ]
            snapshots = [
                (key, list(series.raw), [(w, list(r)) for w, r in series.tiers])
                for key, series in matches
            ]
        for key, raw, tiers in sorted(snapshots, key=lambda item: item[0]):
            if tier and tiers:
                width, ring = min(tiers, key=lambda t: abs(t[0] - tier))
                points = [(b[0], _bucket_value(b, agg)) for b in ring]
            else:
                width = 0.0
                points = raw
            if start is not None:
                points = [p for p in points if p[0] >= start]
            if end is not None:
                points = [p for p in points if p[0] <= end]
            out.append(
                {
                    "endpoint": key[0],
                    "metric": key[1],
                    "labels": dict(key[2]),
                    "tier": width,
                    "points": [[ts, value] for ts, value in points],
                }
            )
        return out

    def export_window(
        self, window: float, now: float, metrics: Optional[Iterable[str]] = None
    ) -> List[Dict[str, Any]]:
        """Raw samples of the trailing window (the forensics bundle).

        ``metrics`` optionally restricts to a name allowlist; the
        default exports everything the window retains.
        """
        allowed = None if metrics is None else set(metrics)
        start = now - window
        out: List[Dict[str, Any]] = []
        with self._lock:
            items = sorted(self._series.items())
            snapshots = [(key, list(series.raw)) for key, series in items]
        for key, raw in snapshots:
            if allowed is not None and key[1] not in allowed:
                continue
            points = [[ts, value] for ts, value in raw if ts >= start]
            if not points:
                continue
            out.append(
                {
                    "endpoint": key[0],
                    "metric": key[1],
                    "labels": dict(key[2]),
                    "points": points,
                }
            )
        return out


def _bucket_value(bucket: Tuple[float, int, float, float, float, float], agg: str) -> float:
    """One rollup bucket reduced to a scalar by the chosen aggregate."""
    _ts, count, total, low, high, last = bucket
    if agg == "avg":
        return total / count if count else 0.0
    if agg == "min":
        return low
    if agg == "max":
        return high
    if agg == "count":
        return float(count)
    return last
