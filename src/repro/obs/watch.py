"""The fleet watchdog: scrape loop, failure detector, alerting, forensics.

:class:`Watchdog` polls every configured endpoint's ``/v1/metrics`` (plus
``/v1/raft/status``, ``/v1/cluster``, and the ``/v1/events`` cursor) on a
fixed interval, feeds samples into a bounded :class:`repro.obs.tsdb.TSDB`,
and evaluates the :mod:`repro.obs.rules` catalog every tick.  Three jobs
hang off that loop:

* **failure detection** — an endpoint that misses ``suspect_after``
  consecutive scrapes is marked down (``watch.endpoint_down`` event) and
  excluded from invariant evaluation until it answers again.  This is the
  classic timeout-based eventually-perfect detector: wrong while the
  timeout is too short, accurate once the fleet is stable.
* **alerting** — rule violations walk ``pending → firing → resolved``
  through :class:`repro.obs.rules.AlertManager`; every transition is a
  structured ``watch.alert`` event.
* **flight recording** — the pending→firing edge snapshots a forensic
  bundle (recent TSDB window, fleet event tail, raft status digests,
  active spans, the full alert log) to ``forensics_dir`` so the state
  that *preceded* the violation survives the incident.

The watchdog runs embedded (a :class:`~repro.cluster.replica.Replica` or
coordinator process serves ``/v1/watch/*`` from its own API) or
standalone (``python -m repro.obs watch --endpoints ...``), where
:func:`serve_watch_http` exposes the same three routes from a stdlib
threading HTTP server.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qsl, urlsplit

from .logs import log_event
from .metrics import MetricsRegistry, parse_prometheus
from .rules import Alert, AlertManager, Rule, RuleContext, default_rules
from .trace import default_recorder
from .tsdb import TSDB

__all__ = ["Watchdog", "serve_watch_http"]

_FORENSICS_WINDOW = 120.0  # seconds of raw TSDB history per bundle
_EVENT_RING_CAPACITY = 4096


def _fetch_json(url: str, timeout: float) -> Tuple[int, Any]:
    """GET ``url`` and parse the JSON body; returns ``(status, payload)``.

    4xx/5xx responses come back as their status code with the parsed
    body when possible (``None`` otherwise) instead of raising, so the
    caller can distinguish "follower said 421" from "process is gone".
    Network-level failures still raise.
    """
    request = urllib.request.Request(url, headers={"Accept": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except Exception:
            payload = None
        return exc.code, payload


def _fetch_text(url: str, timeout: float) -> str:
    """GET ``url`` and return the body text; raises on any failure."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        if response.status != 200:
            raise urllib.error.HTTPError(
                url, response.status, "bad status", response.headers, None
            )
        return response.read().decode("utf-8")


class _EndpointState:
    """Per-endpoint scrape bookkeeping (health + cursors + last samples)."""

    __slots__ = (
        "consecutive_failures",
        "down",
        "event_cursor",
        "events_dropped",
        "last_error",
        "last_scrape_ts",
        "previous_samples",
        "samples",
    )

    def __init__(self) -> None:
        """Start healthy: no failures, cursor at the ring's origin."""
        self.consecutive_failures = 0
        self.down = False
        self.event_cursor = 0
        self.events_dropped = 0
        self.last_error = ""
        self.last_scrape_ts = 0.0
        self.previous_samples: Dict[Any, float] = {}
        self.samples: Dict[Any, float] = {}


class Watchdog:
    """Scrapes a fleet, keeps history, evaluates rules, records forensics.

    ``endpoints`` are base URLs (``http://host:port``).  ``tick()`` runs
    one scrape+evaluate round synchronously (tests drive it directly);
    ``start()``/``stop()`` run it on a daemon thread every ``interval``
    seconds; ``run(duration)`` loops inline for the CLI.
    """

    def __init__(
        self,
        endpoints: Sequence[str],
        interval: float = 1.0,
        tsdb: Optional[TSDB] = None,
        rules: Optional[List[Rule]] = None,
        forensics_dir: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        timeout: float = 2.0,
        suspect_after: int = 3,
    ) -> None:
        """Wire the TSDB, rule catalog, self-metrics, and per-endpoint state."""
        self.endpoints = [e.rstrip("/") for e in endpoints]
        self.interval = float(interval)
        self.timeout = float(timeout)
        self.suspect_after = int(suspect_after)
        self.forensics_dir = forensics_dir
        self.tsdb = tsdb if tsdb is not None else TSDB()
        self.alerts = AlertManager(
            rules if rules is not None else default_rules(interval=self.interval),
            on_firing=self._record_flight,
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self._states: Dict[str, _EndpointState] = {
            endpoint: _EndpointState() for endpoint in self.endpoints
        }
        self._statuses: Dict[str, Dict[str, Any]] = {}
        self._workers: Dict[str, List[Dict[str, Any]]] = {}
        self._events: deque = deque(maxlen=_EVENT_RING_CAPACITY)
        self._bundles: List[str] = []
        self.ticks = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

        self._scrapes = self.registry.counter(
            "repro_watch_scrapes_total", "Fleet metric scrapes attempted."
        )
        self._scrape_errors = self.registry.counter(
            "repro_watch_scrape_errors_total", "Fleet metric scrapes that failed."
        )
        self._forensics_written = self.registry.counter(
            "repro_watch_forensics_total", "Forensic bundles written."
        )
        self.registry.gauge(
            "repro_watch_ticks", "Watchdog evaluation rounds completed."
        ).set_fn(lambda: float(self.ticks))
        self.registry.gauge(
            "repro_watch_alerts_firing",
            "Rules currently in the firing state.",
        ).set_fn(lambda: float(len(self.alerts.firing())))
        self.registry.gauge(
            "repro_watch_series",
            "Live time series retained by the watchdog TSDB.",
        ).set_fn(lambda: float(self.tsdb.series_count()))
        self.registry.gauge(
            "repro_watch_endpoints_healthy",
            "Endpoints answering their last scrape.",
        ).set_fn(lambda: float(len(self.healthy())))

    # -- scraping ------------------------------------------------------

    def healthy(self) -> List[str]:
        """Endpoints not currently marked down by the failure detector."""
        return [e for e in self.endpoints if not self._states[e].down]

    def fresh(self) -> List[str]:
        """Endpoints whose *latest* scrape succeeded.

        Rule evaluation uses this stricter set: a just-killed endpoint
        would otherwise keep contributing its stale samples (e.g. a
        dead leader's ``is_leader=1``) for the ``suspect_after`` grace
        ticks and mask the very violation the kill caused.
        """
        return [
            e
            for e in self.endpoints
            if self._states[e].consecutive_failures == 0
            and self._states[e].last_scrape_ts > 0.0
        ]

    def _scrape_endpoint(self, endpoint: str, now: float) -> bool:
        """One endpoint's full scrape; returns True when metrics landed."""
        state = self._states[endpoint]
        self._scrapes.inc()
        try:
            text = _fetch_text(f"{endpoint}/v1/metrics", self.timeout)
            samples = parse_prometheus(text)
        except Exception as exc:
            self._scrape_errors.inc()
            state.consecutive_failures += 1
            state.last_error = f"{type(exc).__name__}: {exc}"
            if (
                not state.down
                and state.consecutive_failures >= self.suspect_after
            ):
                state.down = True
                log_event(
                    "watch.endpoint_down",
                    "watch",
                    endpoint=endpoint,
                    failures=state.consecutive_failures,
                    error=state.last_error,
                )
            return False

        if state.down:
            log_event("watch.endpoint_up", "watch", endpoint=endpoint)
        state.down = False
        state.consecutive_failures = 0
        state.last_error = ""
        state.previous_samples = state.samples
        state.samples = samples
        state.last_scrape_ts = now
        self.tsdb.record_scrape(endpoint, samples, now)

        status_code, status = _fetch_json_quiet(
            f"{endpoint}/v1/raft/status", self.timeout
        )
        if status_code == 200 and isinstance(status, dict):
            self._statuses[endpoint] = status

        cluster_code, cluster = _fetch_json_quiet(
            f"{endpoint}/v1/cluster", self.timeout
        )
        if cluster_code == 200 and isinstance(cluster, dict):
            workers = cluster.get("workers")
            if isinstance(workers, list):
                self._workers[endpoint] = workers

        self._pull_events(endpoint, state)
        return True

    def _pull_events(self, endpoint: str, state: _EndpointState) -> None:
        """Advance the endpoint's ``/v1/events`` cursor into the ring."""
        code, payload = _fetch_json_quiet(
            f"{endpoint}/v1/events?since={state.event_cursor}&limit=200",
            self.timeout,
        )
        if code != 200 or not isinstance(payload, dict):
            return
        events = payload.get("events", [])
        with self._lock:
            for event in events:
                if isinstance(event, dict):
                    tagged = dict(event)
                    tagged["endpoint"] = endpoint
                    self._events.append(tagged)
        next_since = payload.get("next_since")
        if isinstance(next_since, (int, float)):
            state.event_cursor = int(next_since)
        dropped = payload.get("dropped", 0)
        if dropped:
            state.events_dropped += int(dropped)

    def _restarted(self, state: _EndpointState) -> bool:
        """Whether any counter went backwards since the previous scrape.

        A monotone counter can only decrease when the process restarted;
        one tick of grace suppresses the monotonicity invariants so a
        deliberate replica restart is not a false alarm.
        """
        previous = state.previous_samples
        if not previous:
            return False
        for key, value in state.samples.items():
            if not key[0].endswith("_total"):
                continue
            before = previous.get(key)
            if before is not None and value < before - 1e-9:
                return True
        return False

    def tick(self, now: Optional[float] = None) -> List[Alert]:
        """One scrape + rule-evaluation round; returns changed alerts."""
        now = time.time() if now is None else now
        for endpoint in self.endpoints:
            self._scrape_endpoint(endpoint, now)
        ctx = RuleContext(
            tsdb=self.tsdb,
            now=now,
            interval=self.interval,
            healthy=self.fresh(),
            samples={e: self._states[e].samples for e in self.endpoints},
            previous={
                e: self._states[e].previous_samples for e in self.endpoints
            },
            statuses=dict(self._statuses),
            workers=dict(self._workers),
            restarted={
                e: self._restarted(self._states[e]) for e in self.endpoints
            },
        )
        changed = self.alerts.evaluate(ctx)
        self.ticks += 1
        return changed

    # -- loop control --------------------------------------------------

    def start(self) -> None:
        """Run the scrape loop on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background loop and join the thread."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=self.timeout + self.interval + 5.0)
        self._thread = None

    def _loop(self) -> None:
        """The background scrape loop body."""
        while not self._stop.is_set():
            started = time.time()
            try:
                self.tick(started)
            except Exception as exc:  # the loop must survive anything
                log_event(
                    "watch.tick_error",
                    "watch",
                    error=f"{type(exc).__name__}: {exc}",
                )
            elapsed = time.time() - started
            self._stop.wait(max(0.0, self.interval - elapsed))

    def run(self, duration: float) -> None:
        """Loop inline for ``duration`` seconds (the CLI entry point)."""
        deadline = time.time() + duration
        while time.time() < deadline:
            started = time.time()
            self.tick(started)
            remaining = deadline - time.time()
            if remaining <= 0:
                break
            time.sleep(min(max(0.0, self.interval - (time.time() - started)), remaining))

    # -- forensics -----------------------------------------------------

    def _record_flight(self, alert: Alert, ctx: RuleContext) -> None:
        """Snapshot a forensic bundle on the pending→firing edge."""
        if self.forensics_dir is None:
            return
        bundle = self.build_bundle(alert, ctx.now)
        os.makedirs(self.forensics_dir, exist_ok=True)
        slug = alert.rule.replace(".", "-")
        path = os.path.join(
            self.forensics_dir, f"bundle-{slug}-{int(ctx.now * 1000)}.json"
        )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, indent=2, sort_keys=True)
        self._bundles.append(path)
        self._forensics_written.inc()
        log_event(
            "watch.forensics", "watch", rule=alert.rule, bundle=path
        )

    def build_bundle(self, alert: Optional[Alert], now: float) -> Dict[str, Any]:
        """The forensic snapshot as a JSON-ready dict."""
        with self._lock:
            events = list(self._events)
        return {
            "version": 1,
            "created_ts": now,
            "alert": None if alert is None else alert.to_json_obj(),
            "alerts": self.alerts.snapshot(),
            "alert_log": self.alerts.log_snapshot(),
            "endpoints": self.endpoint_health(),
            "raft": dict(self._statuses),
            "tsdb": self.tsdb.export_window(_FORENSICS_WINDOW, now),
            "events": events[-1000:],
            "spans": default_recorder().export()[-200:],
        }

    def bundles(self) -> List[str]:
        """Paths of every forensic bundle written this run."""
        return list(self._bundles)

    # -- read surfaces -------------------------------------------------

    def endpoint_health(self) -> Dict[str, Dict[str, Any]]:
        """Per-endpoint failure-detector state."""
        out: Dict[str, Dict[str, Any]] = {}
        for endpoint in self.endpoints:
            state = self._states[endpoint]
            out[endpoint] = {
                "down": state.down,
                "consecutive_failures": state.consecutive_failures,
                "last_scrape_ts": state.last_scrape_ts,
                "last_error": state.last_error,
                "events_dropped": state.events_dropped,
            }
        return out

    def fleet_events(self, limit: int = 200) -> List[Dict[str, Any]]:
        """The newest fleet events pulled through the cursors."""
        with self._lock:
            events = list(self._events)
        return events[-limit:]

    def status(self) -> Dict[str, Any]:
        """The ``/v1/watch/status`` payload."""
        return {
            "endpoints": self.endpoint_health(),
            "alerts": self.alerts.snapshot(),
            "alert_log": self.alerts.log_snapshot()[-100:],
            "ticks": self.ticks,
            "interval": self.interval,
            "tsdb": {
                "series": self.tsdb.series_count(),
                "points": self.tsdb.point_count(),
                "dropped_series": self.tsdb.dropped_series,
            },
            "bundles": self.bundles(),
        }

    def query_from_params(self, params: Dict[str, str]) -> Dict[str, Any]:
        """Answer ``/v1/watch/query`` from parsed query parameters.

        Recognised parameters: ``metric`` (required), ``endpoint``,
        ``tier`` (bucket width, 0 = raw), ``agg``, ``window`` (trailing
        seconds), ``start``/``end`` (absolute unix seconds), plus any
        number of ``label.<name>=<value>`` filters.
        """
        metric = params.get("metric")
        if not metric:
            raise ValueError("query requires a 'metric' parameter")
        labels = {
            key[len("label."):]: value
            for key, value in params.items()
            if key.startswith("label.")
        }
        now = time.time()
        start = float(params["start"]) if "start" in params else None
        end = float(params["end"]) if "end" in params else None
        if "window" in params:
            start = now - float(params["window"])
        series = self.tsdb.query(
            metric,
            endpoint=params.get("endpoint") or None,
            labels=labels or None,
            start=start,
            end=end,
            tier=float(params.get("tier", 0.0)),
            agg=params.get("agg", "last"),
        )
        return {"now": now, "series": series}


def _fetch_json_quiet(url: str, timeout: float) -> Tuple[int, Any]:
    """:func:`_fetch_json` that swallows network errors as ``(0, None)``."""
    try:
        return _fetch_json(url, timeout)
    except (OSError, socket.timeout, ValueError):
        return 0, None


# -- standalone HTTP surface -------------------------------------------


def serve_watch_http(
    watchdog: Watchdog,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Serve ``/v1/watch/{status,query,dash}`` for a standalone watchdog.

    Returns the started :class:`ThreadingHTTPServer` (listening on a
    daemon thread); ``server.server_address[1]`` is the bound port and
    ``server.shutdown()`` stops it.  The embedded path — a replica or
    coordinator process serving the same routes from its own asyncio
    server — does not use this; the standalone CLI does.
    """
    from .dash import render_dash  # local import: dash pulls in no extras

    class Handler(BaseHTTPRequestHandler):
        """Routes the three watch endpoints plus the watchdog's metrics."""

        def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
            """Dispatch one GET request."""
            split = urlsplit(self.path)
            params = dict(parse_qsl(split.query))
            try:
                if split.path == "/v1/watch/status":
                    self._send_json(200, watchdog.status())
                elif split.path == "/v1/watch/query":
                    self._send_json(200, watchdog.query_from_params(params))
                elif split.path in ("/", "/v1/watch/dash"):
                    body = render_dash(watchdog).encode("utf-8")
                    self._send(200, body, "text/html; charset=utf-8")
                elif split.path == "/v1/metrics":
                    from .metrics import render_prometheus

                    body = render_prometheus(watchdog.registry).encode("utf-8")
                    self._send(200, body, "text/plain; version=0.0.4")
                else:
                    self._send_json(404, {"error": "not found"})
            except ValueError as exc:
                self._send_json(400, {"error": str(exc)})
            except Exception as exc:  # keep the server alive
                self._send_json(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )

        def _send_json(self, status: int, payload: Any) -> None:
            """Write one JSON response."""
            self._send(
                status,
                json.dumps(payload).encode("utf-8"),
                "application/json",
            )

        def _send(self, status: int, body: bytes, content_type: str) -> None:
            """Write one response with explicit content type."""
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt: str, *args: Any) -> None:
            """Suppress per-request stderr lines unless verbose."""
            if not quiet:
                BaseHTTPRequestHandler.log_message(self, fmt, *args)

    server = ThreadingHTTPServer((host, port), Handler)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-watch-http", daemon=True
    )
    thread.start()
    return server
