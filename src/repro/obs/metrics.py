"""Process-local metrics: counters, gauges, log-bucket histograms.

A :class:`MetricsRegistry` owns a flat namespace of metric *families*
(:class:`Counter` / :class:`Gauge` / :class:`Histogram`), each of which
fans out into labelled children.  The design constraints come straight
from the serving hot path:

* **thread-safe** — the asyncio loop, the POST executor threads, the
  job-manager worker threads, and the cluster channel threads all write
  concurrently; every mutation takes one uncontended lock.
* **zero-allocation hot path** — ``Counter.inc`` / ``Histogram.observe``
  touch pre-allocated ints only; callers cache the child object once
  (``registry.counter(...)`` is get-or-create, so module- or
  instance-level caching is natural).
* **a no-op registry when disabled** — :func:`null_registry` returns a
  registry whose metrics are shared do-nothing singletons, so
  instrumented code pays one attribute call and nothing else.  The
  ``BENCH_obs`` benchmark holds the instrumented/no-op warm-fetch gap
  under 5%.
* **derivable percentiles** — histograms use fixed log-spaced buckets
  (:data:`DEFAULT_BUCKETS`), from which :meth:`Histogram.percentile`
  interpolates p50/p95/p99; the load generator and the server report
  from the same bucket math.

Rendering is Prometheus text exposition (:func:`render_prometheus`),
served by ``GET /v1/metrics`` on every server and parsed back by
:func:`parse_prometheus` (the fleet-scrape CLI and the round-trip
tests).
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "null_registry",
    "parse_prometheus",
    "render_prometheus",
    "set_default_registry",
]


def _log_spaced_buckets(
    lo: float = 1e-4, hi: float = 64.0, per_decade: int = 4
) -> Tuple[float, ...]:
    """Fixed log-spaced bucket upper bounds from ``lo`` to past ``hi``.

    Four buckets per decade keeps relative quantile error under ~40%
    per bucket step while the whole seconds-scale range (100 µs to a
    minute) costs 24 slots — small enough that ``observe`` is one
    ``bisect`` over a tuple that lives in cache.
    """
    bounds: List[float] = []
    value = lo
    factor = 10.0 ** (1.0 / per_decade)
    while value <= hi:
        bounds.append(float(f"{value:.6g}"))
        value *= factor
    return tuple(bounds)


DEFAULT_BUCKETS = _log_spaced_buckets()
"""Default histogram bounds (seconds): log-spaced, 100 µs … ~64 s."""


class Counter:
    """A monotonically increasing count (one labelled child of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        with self._lock:
            self._value += amount

    def inc_unlocked(self) -> None:
        """Lock-free ``inc(1)`` for single-writer hot paths.

        Safe only when every increment comes from one thread (e.g. an
        asyncio event loop): the single float add cannot be lost, and
        scrape-time readers see an atomic value under the GIL.
        """
        self._value += 1.0

    @property
    def value(self) -> float:
        """The current count."""
        return self._value


class Gauge:
    """A value that can go up and down, or be computed at scrape time."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self._value -= amount

    def set_fn(self, fn: Callable[[], float]) -> None:
        """Pull mode: compute the value by calling ``fn`` at scrape time.

        The natural fit for values another object already tracks (open
        connections, raft term, applied index): registration costs one
        closure and the hot path pays nothing at all.
        """
        self._fn = fn

    @property
    def value(self) -> float:
        """The current value (``fn()`` in pull mode; 0.0 if it fails)."""
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:
                return 0.0
        return self._value


class Histogram:
    """Fixed-bucket distribution of observations (seconds by default).

    Buckets are cumulative-ready counts per upper bound plus a +Inf
    overflow slot; ``observe`` is one bisect and three integer adds
    under the lock.  Percentiles are derived by linear interpolation
    inside the winning bucket, which is the same math on the client
    (:mod:`benchmarks.loadgen`) and the server.
    """

    __slots__ = ("_lock", "bounds", "counts", "_sum", "_count")

    def __init__(
        self, lock: threading.Lock, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        self._lock = lock
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # +Inf overflow last
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_unlocked(self, value: float) -> None:
        """Lock-free ``observe`` for single-writer hot paths.

        Safe only when every observation comes from one thread (e.g. an
        asyncio event loop); no update can be lost.  A concurrent scrape
        may see ``count`` lead ``sum`` by the in-flight observation —
        one-sample skew, irrelevant at monitoring resolution.
        """
        self.counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) interpolated from the buckets.

        Exact to within one bucket's width: the answer interpolates
        linearly between the winning bucket's lower and upper bound.
        Observations past the last bound clamp to it.
        """
        with self._lock:
            counts = list(self.counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for i, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if i >= len(self.bounds):
                    return self.bounds[-1] if self.bounds else 0.0
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                if bucket_count == 0:
                    return upper
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.bounds[-1] if self.bounds else 0.0

    def percentiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99)) -> List[float]:
        """Several quantiles at once (default p50/p95/p99)."""
        return [self.percentile(q) for q in qs]


class _Family:
    """One named metric family: type, help text, and labelled children."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "_children", "_lock")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Sequence[float]],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def _make_child(self) -> Any:
        """Construct one child metric of this family's kind."""
        if self.kind == "counter":
            return Counter(self._lock)
        if self.kind == "gauge":
            return Gauge(self._lock)
        return Histogram(self._lock, self.buckets or DEFAULT_BUCKETS)

    def labels(self, *values: str) -> Any:
        """Get-or-create the child for one label-value tuple.

        Callers on hot paths should cache the returned child; the
        lookup itself is one dict hit under the family lock.
        """
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    # Unlabelled families proxy straight to their single child, so
    # ``registry.counter("x", "...").inc()`` needs no ``.labels()``.

    def _default(self) -> Any:
        """The single child of an unlabelled family."""
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled child (counter/gauge families)."""
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the unlabelled child (gauge families)."""
        self._default().dec(amount)

    def set(self, value: float) -> None:
        """Set the unlabelled child (gauge families)."""
        self._default().set(value)

    def set_fn(self, fn: Callable[[], float]) -> None:
        """Attach a pull callback to the unlabelled child (gauges)."""
        self._default().set_fn(fn)

    def observe(self, value: float) -> None:
        """Observe into the unlabelled child (histogram families)."""
        self._default().observe(value)

    @property
    def value(self) -> float:
        """The unlabelled child's value (counter/gauge families)."""
        return self._default().value

    @property
    def count(self) -> int:
        """The unlabelled child's observation count (histograms)."""
        return self._default().count

    @property
    def sum(self) -> float:
        """The unlabelled child's observation sum (histograms)."""
        return self._default().sum

    def percentile(self, q: float) -> float:
        """The unlabelled child's interpolated quantile (histograms)."""
        return self._default().percentile(q)

    def percentiles(
        self, qs: Sequence[float] = (0.5, 0.95, 0.99)
    ) -> List[float]:
        """The unlabelled child's quantiles (histogram families)."""
        return self._default().percentiles(qs)

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """Snapshot of (label values, child) pairs, sorted by labels."""
        with self._lock:
            return sorted(self._children.items())


class _NullMetric:
    """The do-nothing metric every :class:`_NullRegistry` call returns.

    One shared instance stands in for counters, gauges, and histograms
    alike: every method is a constant-cost no-op returning neutral
    values, so instrumented code runs unchanged — and unmeasurably —
    with observability disabled.
    """

    __slots__ = ()

    def labels(self, *values: str) -> "_NullMetric":
        """Return self: labelled children are the same no-op object."""
        return self

    def inc(self, amount: float = 1.0) -> None:
        """Do nothing."""

    def inc_unlocked(self) -> None:
        """Do nothing."""

    def dec(self, amount: float = 1.0) -> None:
        """Do nothing."""

    def set(self, value: float) -> None:
        """Do nothing."""

    def set_fn(self, fn: Callable[[], float]) -> None:
        """Do nothing (the callback is never stored or called)."""

    def observe(self, value: float) -> None:
        """Do nothing."""

    def observe_unlocked(self, value: float) -> None:
        """Do nothing."""

    def percentile(self, q: float) -> float:
        """Always 0.0."""
        return 0.0

    def percentiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99)) -> List[float]:
        """All zeros."""
        return [0.0 for _ in qs]

    @property
    def value(self) -> float:
        """Always 0.0."""
        return 0.0

    @property
    def count(self) -> int:
        """Always 0."""
        return 0

    @property
    def sum(self) -> float:
        """Always 0.0."""
        return 0.0


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """A thread-safe, process-local namespace of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers the family, later calls return the same object (help
    text and labels from the first registration win), so independent
    components can share one registry without coordination.
    """

    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        """Get-or-create one family; kind conflicts are an error."""
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.setdefault(
                    name,
                    _Family(name, kind, help_text, tuple(labels), buckets),
                )
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}"
            )
        return family

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Any:
        """Register (or fetch) a counter family."""
        return self._family(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Any:
        """Register (or fetch) a gauge family."""
        return self._family(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Any:
        """Register (or fetch) a histogram family."""
        return self._family(name, "histogram", help_text, labels, buckets)

    def families(self) -> List[_Family]:
        """Snapshot of all registered families, sorted by name."""
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def render(self) -> str:
        """This registry in Prometheus text exposition format."""
        return render_prometheus(self)


class _NullRegistry(MetricsRegistry):
    """A registry whose every metric is the shared no-op singleton."""

    enabled = False

    def _family(self, name, kind, help_text, labels, buckets=None):  # type: ignore[override]
        """Return the no-op metric for every registration."""
        return _NULL_METRIC

    def families(self) -> List[_Family]:
        """Always empty."""
        return []


_NULL_REGISTRY = _NullRegistry()
_DEFAULT_REGISTRY: MetricsRegistry = (
    _NULL_REGISTRY if os.environ.get("REPRO_OBS_DISABLED") else MetricsRegistry()
)


def default_registry() -> MetricsRegistry:
    """The process-wide default registry components fall back to.

    Starts as a live registry (or the no-op one when the
    ``REPRO_OBS_DISABLED`` environment variable is set); swap it with
    :func:`set_default_registry`.
    """
    return _DEFAULT_REGISTRY


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process default registry; returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous


def null_registry() -> MetricsRegistry:
    """The shared no-op registry (for disabling instrumentation)."""
    return _NULL_REGISTRY


def _format_value(value: float) -> str:
    """Render one sample value per the exposition format.

    Non-finite values use the spec spellings ``+Inf``/``-Inf``/``NaN``;
    integral floats drop the trailing ``.0``.
    """
    value = float(value)
    if value != value:
        return "NaN"
    if value == _INF:
        return "+Inf"
    if value == -_INF:
        return "-Inf"
    if value.is_integer():
        return str(int(value))
    return repr(value)


_INF = float("inf")


def _escape_label_value(value: str) -> str:
    """Escape ``\\``, ``"``, and newline per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape_label_value(raw: str) -> str:
    """Invert :func:`_escape_label_value` with one sequential pass.

    A naive chain of ``str.replace`` calls corrupts values like
    ``\\\\n`` (an escaped backslash followed by ``n``), so this walks
    the escapes left to right.
    """
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        raw = raw[1:-1]
    out: List[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\" and i + 1 < len(raw):
            nxt = raw[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:  # unknown escape: keep both chars (parser stays total)
                out.append(ch)
                out.append(nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def _label_str(names: Sequence[str], values: Sequence[str]) -> str:
    """Render a ``{name="value",...}`` label block ('' when unlabelled)."""
    if not names:
        return ""
    pairs = ",".join(
        '%s="%s"' % (n, _escape_label_value(v))
        for n, v in zip(names, values)
    )
    return "{%s}" % pairs


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in Prometheus text exposition format (v0.0.4).

    Counters and gauges emit one sample per labelled child; histograms
    emit cumulative ``_bucket{le=...}`` samples plus ``_sum`` and
    ``_count``, exactly the shape a Prometheus scraper (or
    :func:`parse_prometheus`) expects.
    """
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.children():
            labels = _label_str(family.label_names, values)
            if family.kind == "histogram":
                cumulative = 0
                with child._lock:
                    counts = list(child.counts)
                    total = child._count
                    total_sum = child._sum
                for bound, bucket_count in zip(child.bounds, counts):
                    cumulative += bucket_count
                    le = _label_str(
                        tuple(family.label_names) + ("le",),
                        tuple(values) + (_format_value(bound),),
                    )
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                inf = _label_str(
                    tuple(family.label_names) + ("le",),
                    tuple(values) + ("+Inf",),
                )
                lines.append(f"{family.name}_bucket{inf} {total}")
                lines.append(f"{family.name}_sum{labels} {repr(total_sum)}")
                lines.append(f"{family.name}_count{labels} {total}")
            else:
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse text exposition back into ``{(name, labels): value}``.

    Labels are a sorted tuple of ``(name, value)`` pairs.  Only the
    subset of the format :func:`render_prometheus` emits is understood
    — enough for the fleet-scrape CLI and the watchdog's scrape loop —
    but the parser is **total**: malformed lines are skipped, escaped
    label values (``\\\\``, ``\\"``, ``\\n``) round-trip exactly, and
    ``NaN``/``+Inf``/``-Inf`` sample values parse to their floats.
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name_part, value_part = line.rsplit(" ", 1)
            value = float(value_part)  # accepts NaN / +Inf / -Inf
        except ValueError:
            continue
        labels: List[Tuple[str, str]] = []
        if "{" in name_part:
            name, _, label_block = name_part.partition("{")
            label_block = label_block.rstrip("}")
            for pair in _split_labels(label_block):
                key, _, raw = pair.partition("=")
                labels.append((key, _unescape_label_value(raw)))
        else:
            name = name_part
        if not name:
            continue
        out[(name, tuple(sorted(labels)))] = value
    return out


def _split_labels(block: str) -> List[str]:
    """Split a label block on commas outside quoted values."""
    parts: List[str] = []
    current: List[str] = []
    quoted = False
    escape = False
    for ch in block:
        if escape:
            current.append(ch)
            escape = False
            continue
        if ch == "\\":
            current.append(ch)
            escape = True
            continue
        if ch == '"':
            quoted = not quoted
            current.append(ch)
            continue
        if ch == "," and not quoted:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in parts if p]
