"""Command-line entry point: ``python -m repro.obs``.

Subcommands::

    scrape   fetch /v1/metrics from every URL and print an aggregate
             table (or, with --trace, stitch one trace from the fleet)
    tail     poll the fleet's /v1/events and print new structured log
             lines as they appear

Examples::

    python -m repro.obs scrape \\
        --url http://127.0.0.1:8661,http://127.0.0.1:8662,http://127.0.0.1:8663
    python -m repro.obs scrape --url ... --trace 4f2a...c9 --json
    python -m repro.obs tail --url http://127.0.0.1:8661 --interval 1.0

``scrape`` exits nonzero if any endpoint is unreachable unless
``--allow-down`` is passed, so CI can assert the whole fleet answers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import parse_prometheus

_Sample = Tuple[str, Tuple[Tuple[str, str], ...]]


def _fetch(url: str, timeout: float) -> bytes:
    """GET one URL, returning the raw body (raises on HTTP/socket error)."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


def _split_urls(raw: str) -> List[str]:
    """Parse the comma-separated ``--url`` list into clean base URLs."""
    return [u.strip().rstrip("/") for u in raw.split(",") if u.strip()]


def _scrape_metrics(
    urls: List[str], timeout: float, allow_down: bool
) -> Tuple[Dict[str, Dict[_Sample, float]], List[str]]:
    """Fetch and parse ``/v1/metrics`` from every URL.

    Returns per-endpoint parsed samples plus the list of endpoints that
    did not answer (fatal unless ``allow_down``).
    """
    per_endpoint: Dict[str, Dict[_Sample, float]] = {}
    down: List[str] = []
    for url in urls:
        try:
            body = _fetch(f"{url}/v1/metrics", timeout)
        except (OSError, urllib.error.URLError) as exc:
            down.append(url)
            print(f"# {url}: DOWN ({exc})", file=sys.stderr)
            continue
        per_endpoint[url] = parse_prometheus(body.decode("utf-8", "replace"))
    if down and not allow_down:
        raise SystemExit(f"unreachable endpoints: {', '.join(down)}")
    return per_endpoint, down


def _cmd_scrape(args: argparse.Namespace) -> int:
    """Aggregate fleet metrics, or stitch one trace with ``--trace``."""
    urls = _split_urls(args.url)
    if args.trace:
        return _scrape_trace(urls, args.trace, args.timeout, args.json)
    per_endpoint, _down = _scrape_metrics(urls, args.timeout, args.allow_down)
    if args.json:
        payload = {
            url: {
                _render_key(key): value for key, value in sorted(samples.items())
            }
            for url, samples in per_endpoint.items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    names: Dict[_Sample, Dict[str, float]] = {}
    for url, samples in per_endpoint.items():
        for key, value in samples.items():
            names.setdefault(key, {})[url] = value
    width = max((len(_render_key(k)) for k in names), default=10)
    header = "  ".join(f"{url.split('//')[-1]:>21}" for url in per_endpoint)
    print(f"{'metric':<{width}}  {header}")
    for key in sorted(names):
        if key[0].endswith("_bucket"):
            continue  # bucket-level samples would swamp the table
        row = "  ".join(
            f"{names[key].get(url, float('nan')):>21.6g}" for url in per_endpoint
        )
        print(f"{_render_key(key):<{width}}  {row}")
    return 0


def _render_key(key: _Sample) -> str:
    """One parsed sample key as ``name{a=b,...}`` for display."""
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def _scrape_trace(
    urls: List[str], trace_id: str, timeout: float, as_json: bool
) -> int:
    """Stitch one trace from every endpoint's ``/v1/trace/<id>``."""
    spans: Dict[str, Dict[str, Any]] = {}
    for url in urls:
        try:
            body = _fetch(f"{url}/v1/trace/{trace_id}", timeout)
        except (OSError, urllib.error.URLError):
            continue
        try:
            payload = json.loads(body)
        except ValueError:
            continue
        for obj in payload.get("spans", []):
            span_id = str(obj.get("span_id"))
            spans.setdefault(span_id, obj)
    ordered = sorted(spans.values(), key=lambda s: s.get("start_wall", 0.0))
    if as_json:
        print(json.dumps({"trace_id": trace_id, "spans": ordered}, indent=2))
        return 0 if ordered else 1
    if not ordered:
        print(f"no spans found for trace {trace_id}", file=sys.stderr)
        return 1
    t0 = ordered[0].get("start_wall", 0.0)
    print(f"trace {trace_id}: {len(ordered)} spans")
    for obj in ordered:
        offset = (obj.get("start_wall", 0.0) - t0) * 1000.0
        duration = obj.get("duration", 0.0) * 1000.0
        print(
            f"  +{offset:9.2f}ms  {duration:9.2f}ms  "
            f"{obj.get('component', '?'):<12} {obj.get('name', '?')}"
        )
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    """Poll ``/v1/events`` on every URL and print new lines forever."""
    urls = _split_urls(args.url)
    seen: set = set()
    deadline = None if args.duration is None else time.monotonic() + args.duration
    while True:
        for url in urls:
            try:
                body = _fetch(f"{url}/v1/events?limit={args.limit}", args.timeout)
                events = json.loads(body).get("events", [])
            except (OSError, ValueError, urllib.error.URLError):
                continue
            for record in events:
                key = (url, record.get("mono"), record.get("event"))
                if key in seen:
                    continue
                seen.add(key)
                record["endpoint"] = url
                print(json.dumps(record, default=str), flush=True)
        if deadline is not None and time.monotonic() >= deadline:
            return 0
        time.sleep(args.interval)


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Fleet-wide metrics scraping and trace stitching.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scrape = sub.add_parser(
        "scrape", help="aggregate /v1/metrics (or stitch one trace)"
    )
    scrape.add_argument(
        "--url",
        required=True,
        help="comma-separated list of server base URLs",
    )
    scrape.add_argument(
        "--trace",
        default=None,
        help="stitch this trace id from every endpoint instead of metrics",
    )
    scrape.add_argument("--timeout", type=float, default=5.0)
    scrape.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    scrape.add_argument(
        "--allow-down",
        action="store_true",
        help="tolerate unreachable endpoints instead of exiting nonzero",
    )
    scrape.set_defaults(fn=_cmd_scrape)

    tail = sub.add_parser("tail", help="follow the fleet's structured events")
    tail.add_argument(
        "--url",
        required=True,
        help="comma-separated list of server base URLs",
    )
    tail.add_argument("--interval", type=float, default=1.0)
    tail.add_argument("--limit", type=int, default=200)
    tail.add_argument("--timeout", type=float, default=5.0)
    tail.add_argument(
        "--duration",
        type=float,
        default=None,
        help="stop after this many seconds (default: run forever)",
    )
    tail.set_defaults(fn=_cmd_tail)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
