"""Command-line entry point: ``python -m repro.obs``.

Subcommands::

    scrape     fetch /v1/metrics from every URL and print an aggregate
               table (or, with --trace, stitch one trace from the fleet)
    tail       follow the fleet's /v1/events with the ?since= cursor and
               print new structured log lines exactly once
    watch      run the standalone fleet watchdog: TSDB history,
               invariant/SLO alerting, flight-recorder forensics, and
               (with --serve-port) the live HTML dashboard
    forensics  pretty-print one forensic bundle's timeline

Examples::

    python -m repro.obs scrape \\
        --url http://127.0.0.1:8661,http://127.0.0.1:8662,http://127.0.0.1:8663
    python -m repro.obs scrape --url ... --trace 4f2a...c9 --json
    python -m repro.obs tail --url http://127.0.0.1:8661 --interval 1.0
    python -m repro.obs watch \\
        --endpoints http://127.0.0.1:8661,http://127.0.0.1:8662 \\
        --forensics-dir .watch --serve-port 9090
    python -m repro.obs watch --endpoints ... --duration 30 \\
        --fail-on-alert invariant
    python -m repro.obs forensics .watch/bundle-raft-one_leader-....json

``scrape`` exits nonzero if any endpoint is unreachable unless
``--allow-down`` is passed, and ``watch --fail-on-alert`` exits nonzero
when any alert of the given kind (or ``all``) went pending/firing — so
CI can assert both that the fleet answers and that it is invariant-clean.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import parse_prometheus

_Sample = Tuple[str, Tuple[Tuple[str, str], ...]]


def _fetch(url: str, timeout: float) -> bytes:
    """GET one URL, returning the raw body (raises on HTTP/socket error)."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


def _split_urls(raw: str) -> List[str]:
    """Parse the comma-separated ``--url`` list into clean base URLs."""
    return [u.strip().rstrip("/") for u in raw.split(",") if u.strip()]


def _scrape_metrics(
    urls: List[str], timeout: float, allow_down: bool
) -> Tuple[Dict[str, Dict[_Sample, float]], List[str]]:
    """Fetch and parse ``/v1/metrics`` from every URL.

    Returns per-endpoint parsed samples plus the list of endpoints that
    did not answer (fatal unless ``allow_down``).
    """
    per_endpoint: Dict[str, Dict[_Sample, float]] = {}
    down: List[str] = []
    for url in urls:
        try:
            body = _fetch(f"{url}/v1/metrics", timeout)
        except (OSError, urllib.error.URLError) as exc:
            down.append(url)
            print(f"# {url}: DOWN ({exc})", file=sys.stderr)
            continue
        per_endpoint[url] = parse_prometheus(body.decode("utf-8", "replace"))
    if down and not allow_down:
        raise SystemExit(f"unreachable endpoints: {', '.join(down)}")
    return per_endpoint, down


def _cmd_scrape(args: argparse.Namespace) -> int:
    """Aggregate fleet metrics, or stitch one trace with ``--trace``."""
    urls = _split_urls(args.url)
    if args.trace:
        return _scrape_trace(urls, args.trace, args.timeout, args.json)
    per_endpoint, _down = _scrape_metrics(urls, args.timeout, args.allow_down)
    if args.json:
        payload = {
            url: {
                _render_key(key): value for key, value in sorted(samples.items())
            }
            for url, samples in per_endpoint.items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    names: Dict[_Sample, Dict[str, float]] = {}
    for url, samples in per_endpoint.items():
        for key, value in samples.items():
            names.setdefault(key, {})[url] = value
    width = max((len(_render_key(k)) for k in names), default=10)
    header = "  ".join(f"{url.split('//')[-1]:>21}" for url in per_endpoint)
    print(f"{'metric':<{width}}  {header}")
    for key in sorted(names):
        if key[0].endswith("_bucket"):
            continue  # bucket-level samples would swamp the table
        row = "  ".join(
            f"{names[key].get(url, float('nan')):>21.6g}" for url in per_endpoint
        )
        print(f"{_render_key(key):<{width}}  {row}")
    return 0


def _render_key(key: _Sample) -> str:
    """One parsed sample key as ``name{a=b,...}`` for display."""
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def _scrape_trace(
    urls: List[str], trace_id: str, timeout: float, as_json: bool
) -> int:
    """Stitch one trace from every endpoint's ``/v1/trace/<id>``."""
    spans: Dict[str, Dict[str, Any]] = {}
    for url in urls:
        try:
            body = _fetch(f"{url}/v1/trace/{trace_id}", timeout)
        except (OSError, urllib.error.URLError):
            continue
        try:
            payload = json.loads(body)
        except ValueError:
            continue
        for obj in payload.get("spans", []):
            span_id = str(obj.get("span_id"))
            spans.setdefault(span_id, obj)
    ordered = sorted(spans.values(), key=lambda s: s.get("start_wall", 0.0))
    if as_json:
        print(json.dumps({"trace_id": trace_id, "spans": ordered}, indent=2))
        return 0 if ordered else 1
    if not ordered:
        print(f"no spans found for trace {trace_id}", file=sys.stderr)
        return 1
    t0 = ordered[0].get("start_wall", 0.0)
    print(f"trace {trace_id}: {len(ordered)} spans")
    for obj in ordered:
        offset = (obj.get("start_wall", 0.0) - t0) * 1000.0
        duration = obj.get("duration", 0.0) * 1000.0
        print(
            f"  +{offset:9.2f}ms  {duration:9.2f}ms  "
            f"{obj.get('component', '?'):<12} {obj.get('name', '?')}"
        )
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    """Poll ``/v1/events`` on every URL and print new lines forever.

    Uses the ``?since=<seq>`` cursor, so an event is printed exactly
    once per endpoint and ring wrap shows up as an explicit warning
    line instead of a silent gap.
    """
    urls = _split_urls(args.url)
    cursors: Dict[str, int] = {url: 0 for url in urls}
    deadline = None if args.duration is None else time.monotonic() + args.duration
    while True:
        for url in urls:
            try:
                body = _fetch(
                    f"{url}/v1/events?since={cursors[url]}&limit={args.limit}",
                    args.timeout,
                )
                payload = json.loads(body)
            except (OSError, ValueError, urllib.error.URLError):
                continue
            dropped = payload.get("dropped", 0)
            if dropped:
                print(
                    f"# {url}: {dropped} events dropped (ring wrapped "
                    "faster than the poll interval)",
                    file=sys.stderr,
                )
            for record in payload.get("events", []):
                record["endpoint"] = url
                print(json.dumps(record, default=str), flush=True)
            next_since = payload.get("next_since")
            if isinstance(next_since, int):
                cursors[url] = next_since
        if deadline is not None and time.monotonic() >= deadline:
            return 0
        time.sleep(args.interval)


def _cmd_watch(args: argparse.Namespace) -> int:
    """Run the standalone fleet watchdog against live endpoints."""
    from repro.obs.rules import default_rules
    from repro.obs.watch import Watchdog, serve_watch_http

    urls = _split_urls(args.endpoints)
    rules = None
    if args.invariant_dwell is not None:
        # CI chaos runs shrink the dwell so even a sub-second
        # leaderless window (a fast re-election) still walks the full
        # pending -> firing -> resolved lifecycle instead of clearing
        # from pending before the default two-tick dwell elapses.
        rules = default_rules(interval=args.interval)
        for rule in rules:
            if rule.kind == "invariant":
                rule.for_seconds = args.invariant_dwell
    watchdog = Watchdog(
        urls,
        interval=args.interval,
        rules=rules,
        forensics_dir=args.forensics_dir,
        timeout=args.timeout,
        suspect_after=args.suspect_after,
    )
    server = None
    if args.serve_port is not None:
        server = serve_watch_http(watchdog, port=args.serve_port, quiet=False)
        host, port = server.server_address[:2]
        print(f"# watch dashboard: http://{host}:{port}/v1/watch/dash",
              file=sys.stderr)
    try:
        if args.duration is not None:
            watchdog.run(args.duration)
        else:
            watchdog.start()
            while True:
                time.sleep(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        watchdog.stop()
        if server is not None:
            server.shutdown()
    status = watchdog.status()
    if args.status_out:
        with open(args.status_out, "w", encoding="utf-8") as handle:
            json.dump(status, handle, indent=2, sort_keys=True)
    print(json.dumps(status, indent=2, sort_keys=True))
    if args.fail_on_alert:
        noisy = [
            entry
            for entry in watchdog.alerts.log_snapshot()
            if entry["state"] in ("pending", "firing")
            and (args.fail_on_alert == "all" or entry["kind"] == args.fail_on_alert)
        ]
        if noisy:
            print(
                f"error: {len(noisy)} alert transitions on a run that "
                "expected none",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_forensics(args: argparse.Namespace) -> int:
    """Pretty-print one forensic bundle's timeline."""
    with open(args.bundle, "r", encoding="utf-8") as handle:
        bundle = json.load(handle)
    alert = bundle.get("alert") or {}
    print(
        f"bundle v{bundle.get('version')}  rule={alert.get('rule')}  "
        f"state={alert.get('state')}  created={bundle.get('created_ts')}"
    )
    print(f"  message: {alert.get('message', '')}")
    print("endpoints:")
    for endpoint, info in sorted(bundle.get("endpoints", {}).items()):
        state = "DOWN" if info.get("down") else "up"
        print(
            f"  {endpoint:<28} {state:<5} "
            f"failures={info.get('consecutive_failures', 0)}"
        )
    print("raft:")
    for endpoint, status in sorted(bundle.get("raft", {}).items()):
        print(
            f"  {endpoint:<28} role={status.get('role'):<9} "
            f"term={status.get('term')} commit={status.get('commit_index')}"
        )
    timeline: List[Tuple[float, str]] = []
    for entry in bundle.get("alert_log", []):
        timeline.append(
            (
                float(entry.get("ts", 0.0)),
                f"ALERT {entry.get('rule')} -> {entry.get('state')} "
                f"{entry.get('message', '')}",
            )
        )
    for event in bundle.get("events", []):
        detail = {
            k: v
            for k, v in event.items()
            if k not in ("ts", "mono", "seq", "trace_id")
        }
        timeline.append(
            (float(event.get("ts", 0.0)), f"EVENT {json.dumps(detail, default=str)}")
        )
    timeline.sort(key=lambda item: item[0])
    print(f"timeline ({len(timeline)} entries):")
    t0 = timeline[0][0] if timeline else 0.0
    for ts, line in timeline[-args.limit:]:
        print(f"  +{ts - t0:9.3f}s  {line}")
    term_series = [
        s for s in bundle.get("tsdb", []) if s.get("metric") == "repro_raft_term"
    ]
    if term_series:
        print("term history:")
        for series in term_series:
            points = series.get("points", [])
            values = " ".join(f"{v:g}" for _ts, v in points[-20:])
            print(f"  {series.get('endpoint', '?'):<28} {values}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Fleet-wide metrics scraping and trace stitching.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scrape = sub.add_parser(
        "scrape", help="aggregate /v1/metrics (or stitch one trace)"
    )
    scrape.add_argument(
        "--url",
        required=True,
        help="comma-separated list of server base URLs",
    )
    scrape.add_argument(
        "--trace",
        default=None,
        help="stitch this trace id from every endpoint instead of metrics",
    )
    scrape.add_argument("--timeout", type=float, default=5.0)
    scrape.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    scrape.add_argument(
        "--allow-down",
        action="store_true",
        help="tolerate unreachable endpoints instead of exiting nonzero",
    )
    scrape.set_defaults(fn=_cmd_scrape)

    tail = sub.add_parser("tail", help="follow the fleet's structured events")
    tail.add_argument(
        "--url",
        required=True,
        help="comma-separated list of server base URLs",
    )
    tail.add_argument("--interval", type=float, default=1.0)
    tail.add_argument("--limit", type=int, default=200)
    tail.add_argument("--timeout", type=float, default=5.0)
    tail.add_argument(
        "--duration",
        type=float,
        default=None,
        help="stop after this many seconds (default: run forever)",
    )
    tail.set_defaults(fn=_cmd_tail)

    watch = sub.add_parser(
        "watch", help="run the standalone fleet watchdog"
    )
    watch.add_argument(
        "--endpoints",
        required=True,
        help="comma-separated base URLs of the fleet to monitor",
    )
    watch.add_argument("--interval", type=float, default=1.0)
    watch.add_argument("--timeout", type=float, default=2.0)
    watch.add_argument(
        "--suspect-after",
        type=int,
        default=3,
        help="consecutive scrape failures before an endpoint is down",
    )
    watch.add_argument(
        "--duration",
        type=float,
        default=None,
        help="run this many seconds then print status (default: forever)",
    )
    watch.add_argument(
        "--forensics-dir",
        default=None,
        help="write forensic bundles here when an alert fires",
    )
    watch.add_argument(
        "--serve-port",
        type=int,
        default=None,
        help="serve /v1/watch/{dash,query,status} on this port",
    )
    watch.add_argument(
        "--status-out",
        default=None,
        help="also write the final status JSON to this file",
    )
    watch.add_argument(
        "--invariant-dwell",
        type=float,
        default=None,
        help="override every invariant rule's pending dwell (seconds); "
        "0 fires on the first breached scrape",
    )
    watch.add_argument(
        "--fail-on-alert",
        choices=["invariant", "slo", "all"],
        default=None,
        help="exit nonzero if any alert of this kind went pending/firing",
    )
    watch.set_defaults(fn=_cmd_watch)

    forensics = sub.add_parser(
        "forensics", help="pretty-print one forensic bundle"
    )
    forensics.add_argument("bundle", help="path to a bundle-*.json file")
    forensics.add_argument(
        "--limit",
        type=int,
        default=200,
        help="newest timeline entries to print",
    )
    forensics.set_defaults(fn=_cmd_forensics)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
