"""repro.obs — dependency-free observability for the replicated fabric.

Stdlib-only modules threaded through every layer of the service stack:

* :mod:`repro.obs.metrics` — a thread-safe process-local
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  log-bucket histograms (p50/p95/p99 derivation, zero-allocation hot
  path, a no-op registry when disabled), rendered as Prometheus text
  exposition on every server's ``GET /v1/metrics``.
* :mod:`repro.obs.trace` — 128-bit trace ids propagated via the
  ``X-Repro-Trace`` header and ``contextvars``, so one client sweep
  stitches submit → job → lease → worker execution → quorum accept →
  store write across processes; spans live in a bounded ring exported
  by ``GET /v1/trace/<trace_id>``.
* :mod:`repro.obs.logs` — structured JSON line logging for the state
  transitions that used to be silent (elections, 421 redirects, lease
  expiry, quarantine, snapshot catch-up), with a monotonic ``seq``
  cursor for exactly-once follow (``/v1/events?since=``).
* :mod:`repro.obs.tsdb` / :mod:`repro.obs.rules` /
  :mod:`repro.obs.watch` / :mod:`repro.obs.dash` — the fleet
  **watchdog**: a bounded in-memory time-series ring over scraped
  metrics, a declarative invariant/SLO rule engine with a
  pending→firing→resolved alert lifecycle, flight-recorder forensic
  bundles, and a self-contained HTML dashboard.

``python -m repro.obs scrape|tail|watch|forensics`` drives all of it
against a live fleet; see ``docs/observability.md``.
"""

from .logs import events_since, log_event, recent_events, set_log_quiet
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    null_registry,
    parse_prometheus,
    render_prometheus,
    set_default_registry,
)
from .trace import (
    HEADER,
    Span,
    SpanRecorder,
    TraceContext,
    activate,
    current_context,
    default_recorder,
    format_header,
    new_trace,
    parse_header,
    set_default_recorder,
    span,
    span_for_trace_id,
)
from .dash import render_dash
from .rules import (
    Alert,
    AlertManager,
    Rule,
    RuleContext,
    default_rules,
    histogram_quantile,
)
from .tsdb import TSDB, SeriesKey
from .watch import Watchdog, serve_watch_http

__all__ = [
    "Alert",
    "AlertManager",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "HEADER",
    "Histogram",
    "MetricsRegistry",
    "Rule",
    "RuleContext",
    "SeriesKey",
    "Span",
    "SpanRecorder",
    "TSDB",
    "TraceContext",
    "Watchdog",
    "activate",
    "current_context",
    "default_recorder",
    "default_registry",
    "default_rules",
    "events_since",
    "format_header",
    "histogram_quantile",
    "log_event",
    "new_trace",
    "null_registry",
    "parse_header",
    "parse_prometheus",
    "recent_events",
    "render_dash",
    "render_prometheus",
    "serve_watch_http",
    "set_default_recorder",
    "set_default_registry",
    "set_log_quiet",
    "span",
    "span_for_trace_id",
]
