"""Structured JSON line logging for state transitions.

Every previously-silent transition in the fabric — elections, 421
redirects, lease expiry and reassignment, quarantines, snapshot
catch-up — becomes one :func:`log_event` call: a single JSON object per
line with a stable shape (``event``, ``component``, ``trace_id``,
monotonic + wall timestamps, then event-specific fields).

Lines go to ``stderr`` (never mixed into protocol streams) and are
retained in a bounded in-process ring so ``python -m repro.obs tail``
and tests can read recent events without scraping the terminal.
Emission is off by default in quiet processes: pass ``quiet=True`` at
the call site or set the ``REPRO_OBS_QUIET`` environment variable to
suppress the stderr write while still retaining the ring entry.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from .trace import current_context

__all__ = ["events_since", "log_event", "recent_events", "set_log_quiet"]

_RING: deque = deque(maxlen=2048)
_LOCK = threading.Lock()
_QUIET = bool(os.environ.get("REPRO_OBS_QUIET"))
_SEQ = 0  # monotonic per-process sequence; cursor for /v1/events?since=


def set_log_quiet(quiet: bool) -> bool:
    """Suppress (or restore) stderr emission; returns the previous mode.

    The in-process ring keeps recording either way.
    """
    global _QUIET
    previous = _QUIET
    _QUIET = bool(quiet)
    return previous


def log_event(event: str, component: str, quiet: Optional[bool] = None, **fields: Any) -> Dict[str, Any]:
    """Record one structured event; returns the emitted record.

    The record carries ``event``, ``component``, the active trace id
    (if any), wall-clock ``ts`` and monotonic ``mono`` timestamps, a
    per-process monotonic ``seq`` (the ``/v1/events?since=`` cursor),
    and every keyword passed.  Written as one JSON line to stderr
    unless quieted, and always appended to the bounded ring.
    """
    global _SEQ
    ctx = current_context()
    record: Dict[str, Any] = {
        "event": event,
        "component": component,
        "trace_id": ctx.trace_id if ctx is not None else None,
        "ts": time.time(),
        "mono": time.monotonic(),
    }
    record.update(fields)
    with _LOCK:
        _SEQ += 1
        record["seq"] = _SEQ
        _RING.append(record)
    suppress = _QUIET if quiet is None else quiet
    if not suppress:
        try:
            print(json.dumps(record, default=str), file=sys.stderr, flush=True)
        except (OSError, ValueError):
            pass
    return record


def recent_events(
    limit: int = 100,
    event: Optional[str] = None,
    component: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """The newest retained events, optionally filtered, oldest first."""
    with _LOCK:
        records = list(_RING)
    if event is not None:
        records = [r for r in records if r.get("event") == event]
    if component is not None:
        records = [r for r in records if r.get("component") == component]
    return records[-limit:]


def events_since(
    since: int = 0, limit: int = 200
) -> Tuple[List[Dict[str, Any]], int, int]:
    """Cursor read: events with ``seq > since``, oldest first.

    Returns ``(events, next_since, dropped)`` where ``next_since`` is
    the cursor to pass on the next call and ``dropped`` counts events
    that fell off the bounded ring before this read could see them
    (``0`` when the cursor kept up).  A follower polling with the
    returned cursor therefore never re-reads an event and always knows
    when ring wrap lost some.
    """
    with _LOCK:
        records = list(_RING)
    matched = [r for r in records if r.get("seq", 0) > since]
    dropped = 0
    if records and since:
        oldest_retained = records[0].get("seq", 0)
        if oldest_retained > since + 1:
            dropped = oldest_retained - since - 1
    matched = matched[:limit]
    next_since = matched[-1]["seq"] if matched else since
    return matched, int(next_since), int(dropped)
