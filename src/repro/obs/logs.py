"""Structured JSON line logging for state transitions.

Every previously-silent transition in the fabric — elections, 421
redirects, lease expiry and reassignment, quarantines, snapshot
catch-up — becomes one :func:`log_event` call: a single JSON object per
line with a stable shape (``event``, ``component``, ``trace_id``,
monotonic + wall timestamps, then event-specific fields).

Lines go to ``stderr`` (never mixed into protocol streams) and are
retained in a bounded in-process ring so ``python -m repro.obs tail``
and tests can read recent events without scraping the terminal.
Emission is off by default in quiet processes: pass ``quiet=True`` at
the call site or set the ``REPRO_OBS_QUIET`` environment variable to
suppress the stderr write while still retaining the ring entry.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from .trace import current_context

__all__ = ["log_event", "recent_events", "set_log_quiet"]

_RING: deque = deque(maxlen=2048)
_LOCK = threading.Lock()
_QUIET = bool(os.environ.get("REPRO_OBS_QUIET"))


def set_log_quiet(quiet: bool) -> bool:
    """Suppress (or restore) stderr emission; returns the previous mode.

    The in-process ring keeps recording either way.
    """
    global _QUIET
    previous = _QUIET
    _QUIET = bool(quiet)
    return previous


def log_event(event: str, component: str, quiet: Optional[bool] = None, **fields: Any) -> Dict[str, Any]:
    """Record one structured event; returns the emitted record.

    The record carries ``event``, ``component``, the active trace id
    (if any), wall-clock ``ts`` and monotonic ``mono`` timestamps, and
    every keyword passed.  Written as one JSON line to stderr unless
    quieted, and always appended to the bounded ring.
    """
    ctx = current_context()
    record: Dict[str, Any] = {
        "event": event,
        "component": component,
        "trace_id": ctx.trace_id if ctx is not None else None,
        "ts": time.time(),
        "mono": time.monotonic(),
    }
    record.update(fields)
    with _LOCK:
        _RING.append(record)
    suppress = _QUIET if quiet is None else quiet
    if not suppress:
        try:
            print(json.dumps(record, default=str), file=sys.stderr, flush=True)
        except (OSError, ValueError):
            pass
    return record


def recent_events(
    limit: int = 100,
    event: Optional[str] = None,
    component: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """The newest retained events, optionally filtered, oldest first."""
    with _LOCK:
        records = list(_RING)
    if event is not None:
        records = [r for r in records if r.get("event") == event]
    if component is not None:
        records = [r for r in records if r.get("component") == component]
    return records[-limit:]
