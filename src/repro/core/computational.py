"""Bayesian machine games and computational Nash equilibrium (Section 3).

The Halpern–Pass framework, implemented over *finite, declared machine
sets*: each player chooses a machine; the player's type is the machine's
input; the machine's output is the action; a complexity is associated
with each (machine, input) pair; utilities depend on the type profile,
the action profile, **and the complexity profile** (the paper stresses
the whole profile: "i might be happy as long as his machine takes fewer
steps than j's").

With standard games a Nash equilibrium always exists; with machine games
it need not — :func:`roshambo_machine_game` reproduces Example 3.3's
nonexistence, and :func:`frpd_machine_game` reproduces Example 3.2's
tit-for-tat equilibrium under memory costs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.games.classics import prisoners_dilemma
from repro.games.normal_form import NormalFormGame
from repro.games.repeated import RepeatedGame
from repro.machines.automata import (
    FiniteAutomaton,
    constant_automaton,
    counting_defector,
    grim_trigger_automaton,
    tit_for_tat_automaton,
)
from repro.machines.vm import (
    Program,
    constant_program,
    fermat_primality_program,
    miller_rabin_cost_model,
    run_program,
    trial_division_program,
)

__all__ = [
    "Machine",
    "ConstantMachine",
    "LambdaMachine",
    "VMMachine",
    "RandomizingMachine",
    "ComplexityFunction",
    "MachineProfile",
    "MachineGame",
    "is_computational_nash",
    "computational_nash_equilibria",
    "primality_machine_game",
    "frpd_machine_game",
    "roshambo_machine_game",
]

ComplexityFunction = Callable[[Hashable], float]
MachineProfile = Tuple["Machine", ...]


class Machine:
    """A strategy machine: type in, action distribution out, with a cost."""

    name: str = "machine"

    def action_distribution(self, type_value: Hashable) -> Dict[int, float]:
        """Distribution over actions on this input."""
        raise NotImplementedError

    def complexity(self, type_value: Hashable) -> float:
        """The complexity of running this machine on this input."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Machine {self.name}>"


class ConstantMachine(Machine):
    """Ignores the input; plays one action at a fixed cost."""

    def __init__(self, action: int, cost: float = 1.0, name: str = "") -> None:
        self.action = int(action)
        self.cost = float(cost)
        self.name = name or f"const_{action}"

    def action_distribution(self, type_value):
        """Point mass on the constant action, for every type."""
        return {self.action: 1.0}

    def complexity(self, type_value):
        """The fixed declared cost, independent of type."""
        return self.cost


class LambdaMachine(Machine):
    """Arbitrary deterministic machine given by Python callables.

    ``act(type) -> action``; ``cost(type) -> float``.
    """

    def __init__(
        self,
        act: Callable[[Hashable], int],
        cost: Callable[[Hashable], float],
        name: str = "lambda",
    ) -> None:
        self._act = act
        self._cost = cost
        self.name = name

    def action_distribution(self, type_value):
        """Point mass on ``act(type)``."""
        return {int(self._act(type_value)): 1.0}

    def complexity(self, type_value):
        """Evaluate the supplied ``cost(type)`` callable."""
        return float(self._cost(type_value))


class RandomizingMachine(Machine):
    """Plays a fixed mixed action; costs more than determinism.

    Example 3.3 charges randomizing machines complexity 2 versus 1 for
    deterministic ones ("programs involving randomization are more
    complicated than those that do not randomize").
    """

    def __init__(
        self, distribution: Dict[int, float], cost: float = 2.0, name: str = ""
    ) -> None:
        total = sum(distribution.values())
        if abs(total - 1.0) > 1e-9 or any(v < 0 for v in distribution.values()):
            raise ValueError("distribution must be a probability distribution")
        self.distribution = {int(a): float(p) for a, p in distribution.items()}
        self.cost = float(cost)
        self.name = name or "randomizer"

    def action_distribution(self, type_value):
        """The fixed mixed action, for every type."""
        return dict(self.distribution)

    def complexity(self, type_value):
        """The declared randomization cost, independent of type."""
        return self.cost


class VMMachine(Machine):
    """A machine backed by a VM program; complexity = executed steps.

    ``output_to_action`` maps the program's integer output to a game
    action (default: identity).
    """

    def __init__(
        self,
        program: Program,
        input_register: str = "x",
        output_to_action: Optional[Callable[[int], int]] = None,
        name: str = "",
    ) -> None:
        self.program = program
        self.input_register = input_register
        self.output_to_action = output_to_action or (lambda v: int(v))
        self.name = name or program.name or "vm"
        self._cache: Dict[Hashable, Tuple[int, int]] = {}

    def _run(self, type_value: Hashable) -> Tuple[int, int]:
        if type_value not in self._cache:
            result = run_program(
                self.program, inputs={self.input_register: int(type_value)}
            )
            self._cache[type_value] = (
                self.output_to_action(result.output),
                result.steps,
            )
        return self._cache[type_value]

    def action_distribution(self, type_value):
        """Point mass on the action the VM program outputs for this type."""
        action, _ = self._run(type_value)
        return {action: 1.0}

    def complexity(self, type_value):
        """Executed VM steps on this type (the Section 3 complexity measure)."""
        _, steps = self._run(type_value)
        return float(steps)


class MachineGame:
    """A Bayesian machine game over finite machine sets.

    Parameters
    ----------
    type_spaces:
        One list of (hashable) type values per player.
    prior:
        Dict mapping type profiles (tuples) to probabilities.
    machine_sets:
        One list of candidate :class:`Machine` per player.  Equilibrium
        statements are *relative to these sets* (the checkable core of
        the quantify-over-all-TMs definition; see DESIGN.md).
    utility_fn:
        ``utility_fn(types, actions, complexities) -> n utilities``.
    """

    def __init__(
        self,
        type_spaces: Sequence[Sequence[Hashable]],
        prior: Dict[Tuple[Hashable, ...], float],
        machine_sets: Sequence[Sequence[Machine]],
        utility_fn: Callable,
        name: str = "",
    ) -> None:
        self.type_spaces = [list(s) for s in type_spaces]
        self.n_players = len(self.type_spaces)
        if len(machine_sets) != self.n_players:
            raise ValueError("need one machine set per player")
        self.machine_sets = [list(s) for s in machine_sets]
        for i, machines in enumerate(self.machine_sets):
            if not machines:
                raise ValueError(f"player {i} has an empty machine set")
        total = sum(prior.values())
        if abs(total - 1.0) > 1e-9 or any(v < 0 for v in prior.values()):
            raise ValueError("prior must be a probability distribution")
        for types in prior:
            if len(types) != self.n_players:
                raise ValueError(f"type profile {types} has wrong arity")
            for i, t in enumerate(types):
                if t not in self.type_spaces[i]:
                    raise ValueError(
                        f"type {t!r} not in player {i}'s type space"
                    )
        self.prior = dict(prior)
        self.utility_fn = utility_fn
        self.name = name

    # ------------------------------------------------------------------

    def expected_utility(
        self, player: int, profile: Sequence[Machine]
    ) -> float:
        """Ex-ante expected utility of ``player`` under a machine profile."""
        if len(profile) != self.n_players:
            raise ValueError("need one machine per player")
        total = 0.0
        for types, p in self.prior.items():
            if p == 0.0:
                continue
            distributions = [
                profile[i].action_distribution(types[i])
                for i in range(self.n_players)
            ]
            complexities = tuple(
                profile[i].complexity(types[i]) for i in range(self.n_players)
            )
            for combo in itertools.product(
                *(list(d.items()) for d in distributions)
            ):
                actions = tuple(action for action, _ in combo)
                weight = p
                for _, q in combo:
                    weight *= q
                if weight == 0.0:
                    continue
                utilities = self.utility_fn(types, actions, complexities)
                total += weight * float(utilities[player])
        return total

    def expected_utilities(self, profile: Sequence[Machine]) -> np.ndarray:
        """All players' expected utilities under a machine profile."""
        return np.array(
            [self.expected_utility(i, profile) for i in range(self.n_players)]
        )

    def best_response(
        self, player: int, profile: Sequence[Machine]
    ) -> Tuple[Machine, float]:
        """Best machine (within the declared set) for ``player``."""
        best_machine, best_value = None, -np.inf
        for machine in self.machine_sets[player]:
            candidate = list(profile)
            candidate[player] = machine
            value = self.expected_utility(player, candidate)
            if value > best_value:
                best_machine, best_value = machine, value
        assert best_machine is not None
        return best_machine, best_value

    def regret(self, player: int, profile: Sequence[Machine]) -> float:
        """Gain available to ``player`` by switching to their best machine."""
        _, best = self.best_response(player, profile)
        return best - self.expected_utility(player, profile)

    def profiles(self):
        """Iterate over every pure machine profile of the declared sets."""
        return itertools.product(*self.machine_sets)


def is_computational_nash(
    game: MachineGame, profile: Sequence[Machine], tol: float = 1e-9
) -> bool:
    """No player can gain more than ``tol`` by switching machines."""
    return all(
        game.regret(player, profile) <= tol
        for player in range(game.n_players)
    )


def computational_nash_equilibria(
    game: MachineGame, tol: float = 1e-9
) -> List[MachineProfile]:
    """All machine profiles that are computational Nash equilibria."""
    return [
        tuple(profile)
        for profile in game.profiles()
        if is_computational_nash(game, profile, tol=tol)
    ]


# ---------------------------------------------------------------------------
# Example 3.1: the primality game
# ---------------------------------------------------------------------------

SAY_PRIME, SAY_COMPOSITE, PLAY_SAFE = 0, 1, 2


def primality_machine_game(
    numbers: Sequence[int],
    step_price: float = 0.001,
    reward_correct: float = 10.0,
    penalty_wrong: float = -10.0,
    reward_safe: float = 1.0,
) -> MachineGame:
    """Example 3.1 as a 1-player Bayesian machine game.

    The type is the number ``x`` (uniform over ``numbers``); machines are
    the trial-division VM program, a Miller–Rabin cost model, "play safe"
    and the two blind guesses.  Utility = game payoff minus
    ``step_price *`` steps.  As ``numbers`` grow, the equilibrium machine
    flips from a primality tester to "play safe" — Nash equilibrium
    ceases to predict "give the right answer" once computation is priced.
    """
    numbers = [int(x) for x in numbers]
    if not numbers:
        raise ValueError("need at least one number")

    trial_division = VMMachine(
        trial_division_program(),
        output_to_action=lambda v: SAY_PRIME if v == 1 else SAY_COMPOSITE,
        name="trial_division",
    )
    miller_rabin = LambdaMachine(
        act=lambda x: SAY_PRIME
        if miller_rabin_cost_model(int(x))[0]
        else SAY_COMPOSITE,
        cost=lambda x: float(miller_rabin_cost_model(int(x))[1]),
        name="miller_rabin",
    )
    fermat_vm = VMMachine(
        fermat_primality_program(),
        output_to_action=lambda v: SAY_PRIME if v == 1 else SAY_COMPOSITE,
        name="fermat_vm",
    )
    safe = ConstantMachine(PLAY_SAFE, cost=2.0, name="play_safe")
    guess_prime = ConstantMachine(SAY_PRIME, cost=2.0, name="guess_prime")
    guess_composite = ConstantMachine(
        SAY_COMPOSITE, cost=2.0, name="guess_composite"
    )

    def utility_fn(types, actions, complexities):
        """Example 3.1 payoffs: rewards minus the machine's step-count bill."""
        x = int(types[0])
        action = actions[0]
        is_prime, _ = miller_rabin_cost_model(x)
        if action == PLAY_SAFE:
            payoff = reward_safe
        elif (action == SAY_PRIME) == is_prime:
            payoff = reward_correct
        else:
            payoff = penalty_wrong
        return [payoff - step_price * complexities[0]]

    prior = {(x,): 1.0 / len(numbers) for x in numbers}
    return MachineGame(
        type_spaces=[numbers],
        prior=prior,
        machine_sets=[
            [
                trial_division,
                miller_rabin,
                fermat_vm,
                safe,
                guess_prime,
                guess_composite,
            ]
        ],
        utility_fn=utility_fn,
        name="primality machine game",
    )


# ---------------------------------------------------------------------------
# Example 3.2: finitely repeated prisoner's dilemma with memory costs
# ---------------------------------------------------------------------------


def frpd_machine_game(
    n_rounds: int,
    delta: float,
    memory_price: float,
    machine_set: Optional[Sequence[FiniteAutomaton]] = None,
    charge_player: Optional[int] = None,
    free_states: int = 2,
) -> MachineGame:
    """Example 3.2: FRPD where automata pay ``memory_price`` per state.

    The machine's "action" in the reduced game is its own index; the
    utility function looks up the precomputed discounted match payoff of
    the automaton pair and subtracts the memory bill.  If
    ``charge_player`` is given, only that player pays for memory (the
    paper's asymmetric variant: "even if only one player is
    computationally bounded...").

    **Modelling choice (documented in DESIGN.md):** memory is billed only
    for states beyond ``free_states`` (default 2, the budget of any
    reactive strategy such as tit-for-tat).  Billing every state would
    make "drop to the 1-state always-cooperate machine" a strictly
    profitable deviation from (TFT, TFT) — a degenerate incentive the
    paper's prose implicitly ignores; the claim it does make ("keeping
    track of the round number is not worth the discounted $2") is about
    the *extra* memory of round counting, which this pricing captures
    exactly.
    """
    if machine_set is None:
        machine_set = default_frpd_machines(n_rounds)
    machines = [m.clone() for m in machine_set]
    repeated = RepeatedGame(prisoners_dilemma(), rounds=n_rounds, delta=delta)
    n_machines = len(machines)
    payoff_table = np.zeros((n_machines, n_machines, 2))
    for i, a in enumerate(machines):
        for j, b in enumerate(machines):
            payoff_table[i, j] = repeated.discounted_payoffs(
                a.clone(), b.clone()
            )

    wrapped = [
        [
            ConstantMachine(
                idx,
                cost=float(max(0, m.n_states - free_states)),
                name=m.name,
            )
            for idx, m in enumerate(machines)
        ]
        for _ in range(2)
    ]

    def utility_fn(types, actions, complexities):
        """Stage payoffs net of the per-player memory bill."""
        i, j = actions
        base = payoff_table[i, j]
        bill = [memory_price * complexities[0], memory_price * complexities[1]]
        if charge_player is not None:
            bill = [
                bill[p] if p == charge_player else 0.0 for p in range(2)
            ]
        return [base[0] - bill[0], base[1] - bill[1]]

    return MachineGame(
        type_spaces=[[0], [0]],
        prior={(0, 0): 1.0},
        machine_sets=wrapped,
        utility_fn=utility_fn,
        name=f"FRPD machine game (N={n_rounds}, delta={delta})",
    )


def default_frpd_machines(n_rounds: int) -> List[FiniteAutomaton]:
    """The machine space documented for Example 3.2's reproduction."""
    return [
        tit_for_tat_automaton(),
        constant_automaton(0, name="always_cooperate"),
        constant_automaton(1, name="always_defect"),
        grim_trigger_automaton(),
        counting_defector(n_rounds),
    ]


# ---------------------------------------------------------------------------
# Example 3.3: roshambo with costly randomization
# ---------------------------------------------------------------------------


def roshambo_machine_game(
    deterministic_cost: float = 1.0,
    randomization_cost: float = 2.0,
    include_biased_randomizers: bool = False,
) -> MachineGame:
    """Example 3.3: rock-paper-scissors where randomizing costs extra.

    Machines: the three deterministic strategies (complexity
    ``deterministic_cost``) and the uniform randomizer (complexity
    ``randomization_cost``); optionally a family of biased randomizers.
    Utility = underlying payoff minus own complexity.  With the paper's
    costs (1 vs 2) the game has **no** computational Nash equilibrium.
    """
    from repro.games.classics import roshambo

    stage = roshambo()
    machines: List[Machine] = [
        ConstantMachine(a, cost=deterministic_cost, name=label)
        for a, label in enumerate(("rock", "paper", "scissors"))
    ]
    machines.append(
        RandomizingMachine(
            {0: 1 / 3, 1: 1 / 3, 2: 1 / 3},
            cost=randomization_cost,
            name="uniform",
        )
    )
    if include_biased_randomizers:
        for heavy in range(3):
            dist = {a: 0.2 for a in range(3)}
            dist[heavy] = 0.6
            machines.append(
                RandomizingMachine(
                    dist, cost=randomization_cost, name=f"biased_{heavy}"
                )
            )

    def utility_fn(types, actions, complexities):
        """Stage payoffs net of randomization cost (Example 3.3's trap)."""
        base = stage.payoff_vector(actions)
        return [base[0] - complexities[0], base[1] - complexities[1]]

    return MachineGame(
        type_spaces=[[0], [0]],
        prior={(0, 0): 1.0},
        machine_sets=[list(machines), list(machines)],
        utility_fn=utility_fn,
        name="roshambo machine game",
    )
