"""BAR robustness (Ayer et al. 2005), flagged in Section 5.

The BAR model classifies players as **B**yzantine (arbitrary), **A**ltruistic
(follow the recommended protocol no matter what), and **R**ational
(deviate iff it strictly helps them).  The paper's Section 5 points out
that (k,t)-robustness is *too strong* for such systems: immunity demands
that rational players are unhurt "no matter what the bad players do",
while in practice a known fraction of players can be counted on to be
good.  A BAR-robust profile only has to deter rational deviations given
that altruists stay put, for every possible behaviour of the Byzantine
set.

Definition implemented here (for a finite game and a designated profile):
``sigma`` is **(b, A)-BAR-robust** if for every Byzantine set ``Z`` with
``|Z| <= b`` disjoint from the altruist set ``A``, every joint Byzantine
behaviour ``z``, every rational player ``i`` (not in ``A`` or ``Z``), and
every deviation ``a_i``:

    u_i(a_i, z, sigma_rest)  <=  u_i(sigma_i, z, sigma_rest)

i.e. following the protocol is a best response for each rational player
*against each Byzantine behaviour individually* (ex-post, the strongest
reading, which is what BAR-T style results use).  A weaker *ex-ante*
variant averages over a distribution of Byzantine behaviours; both are
provided.

The connection the paper draws — charging for switching strategies makes
"follow the recommendation" rational — is exercised by
:func:`switching_cost_rescues`, which adds a fixed cost to any deviation
and reports the smallest cost making the profile BAR-robust.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.games.normal_form import (
    MixedProfile,
    NormalFormGame,
    profile_as_mixed,
)

__all__ = [
    "BARViolation",
    "is_bar_robust",
    "bar_violations",
    "max_byzantine_tolerance",
    "switching_cost_rescues",
]


@dataclass(frozen=True)
class BARViolation:
    """A rational player's profitable deviation under some Byzantine play."""

    rational_player: int
    deviation: int
    byzantine_set: Tuple[int, ...]
    byzantine_actions: Tuple[int, ...]
    gain: float


def _rational_players(
    game: NormalFormGame, altruists: Set[int], byzantine: Sequence[int]
) -> List[int]:
    return [
        i
        for i in range(game.n_players)
        if i not in altruists and i not in byzantine
    ]


def bar_violations(
    game: NormalFormGame,
    profile: MixedProfile,
    byzantine_count: int,
    altruists: Iterable[int] = (),
    tol: float = 1e-9,
    first_only: bool = True,
) -> List[BARViolation]:
    """Find ex-post BAR violations of ``profile``.

    Exhaustive over Byzantine sets of size <= ``byzantine_count`` (disjoint
    from the altruists), pure Byzantine joint actions, rational players,
    and their pure deviations; pure deviations suffice by multilinearity.
    """
    game.validate_profile(profile)
    altruist_set = set(altruists)
    if not altruist_set <= set(range(game.n_players)):
        raise ValueError("altruists must be valid player indices")
    violations: List[BARViolation] = []
    candidates = [i for i in range(game.n_players) if i not in altruist_set]
    byz_sets: List[Tuple[int, ...]] = [()]
    for size in range(1, min(byzantine_count, len(candidates)) + 1):
        byz_sets.extend(itertools.combinations(candidates, size))
    for byz in byz_sets:
        byz_spaces = [range(game.num_actions[z]) for z in byz]
        for byz_actions in itertools.product(*byz_spaces):
            base = list(profile)
            for z, action in zip(byz, byz_actions):
                vec = np.zeros(game.num_actions[z])
                vec[action] = 1.0
                base[z] = vec
            for i in _rational_players(game, altruist_set, byz):
                current = game.expected_payoff(i, base)
                values = game.payoff_against(i, base)
                best_action = int(values.argmax())
                gain = float(values[best_action] - current)
                if gain > tol:
                    violations.append(
                        BARViolation(
                            rational_player=i,
                            deviation=best_action,
                            byzantine_set=byz,
                            byzantine_actions=byz_actions,
                            gain=gain,
                        )
                    )
                    if first_only:
                        return violations
    return violations


def is_bar_robust(
    game: NormalFormGame,
    profile: MixedProfile,
    byzantine_count: int,
    altruists: Iterable[int] = (),
    tol: float = 1e-9,
) -> bool:
    """Is ``profile`` (b, A)-BAR-robust (ex-post)?

    With ``byzantine_count = 0`` and no altruists this coincides with
    Nash equilibrium (tested).
    """
    return not bar_violations(
        game, profile, byzantine_count, altruists, tol=tol, first_only=True
    )


def max_byzantine_tolerance(
    game: NormalFormGame,
    profile: MixedProfile,
    altruists: Iterable[int] = (),
    tol: float = 1e-9,
) -> int:
    """Largest b such that the profile is (b, A)-BAR-robust (-1 if not Nash)."""
    altruist_set = set(altruists)
    non_altruists = game.n_players - len(altruist_set)
    if not is_bar_robust(game, profile, 0, altruist_set, tol=tol):
        return -1
    for b in range(1, non_altruists):
        if not is_bar_robust(game, profile, b, altruist_set, tol=tol):
            return b - 1
    return non_altruists - 1


def switching_cost_rescues(
    game: NormalFormGame,
    recommended: Tuple[int, ...],
    byzantine_count: int,
    altruists: Iterable[int] = (),
    tol: float = 1e-9,
) -> float:
    """Smallest per-deviation cost making ``recommended`` BAR-robust.

    Models the paper's remark that following the recommended protocol can
    be rationalized "by charging for switching from the recommended
    strategy": any player who plays something other than their
    recommended action pays a fixed cost ``c``.  Returns the smallest
    ``c >= 0`` that removes every rational deviation (the largest
    violation gain), or ``0.0`` if the profile is already robust.
    """
    profile = profile_as_mixed(recommended, game.num_actions)
    worst = 0.0
    for violation in bar_violations(
        game, profile, byzantine_count, altruists, tol=tol, first_only=False
    ):
        worst = max(worst, violation.gain)
    return worst
