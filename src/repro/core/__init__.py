"""The paper's primary contribution: three families of solution concepts.

* :mod:`repro.core.robust` — k-resilience, t-immunity, (k,t)-robustness
  (Section 2).
* :mod:`repro.core.feasibility` — the ADGH mediator-implementation
  threshold theorems as an executable decision procedure (Section 2).
* :mod:`repro.core.computational` — Bayesian machine games and
  computational Nash equilibrium (Section 3).
* :mod:`repro.core.awareness` — games with awareness and generalized Nash
  equilibrium (Section 4).
"""

from repro.core.robust import (
    ResilienceViolation,
    ImmunityViolation,
    RobustnessReport,
    is_k_resilient,
    is_robust,
    is_t_immune,
    max_resilience,
    max_immunity,
    robustness_report,
)
from repro.core.bar import (
    BARViolation,
    bar_violations,
    is_bar_robust,
    max_byzantine_tolerance,
    switching_cost_rescues,
)
from repro.core.feasibility import (
    FeasibilityVerdict,
    Regime,
    Resources,
    classify_regime,
    feasibility_table,
    mediator_implementability,
)
from repro.core.computational import (
    ComplexityFunction,
    MachineGame,
    MachineProfile,
    computational_nash_equilibria,
    frpd_machine_game,
    is_computational_nash,
    primality_machine_game,
    roshambo_machine_game,
)
from repro.core.awareness import (
    AugmentedGame,
    GameWithAwareness,
    GeneralizedStrategyProfile,
    canonical_representation,
    find_generalized_nash,
    is_generalized_nash,
)

__all__ = [
    "AugmentedGame",
    "BARViolation",
    "bar_violations",
    "ComplexityFunction",
    "FeasibilityVerdict",
    "GameWithAwareness",
    "GeneralizedStrategyProfile",
    "ImmunityViolation",
    "MachineGame",
    "MachineProfile",
    "Regime",
    "ResilienceViolation",
    "Resources",
    "RobustnessReport",
    "canonical_representation",
    "classify_regime",
    "computational_nash_equilibria",
    "feasibility_table",
    "find_generalized_nash",
    "frpd_machine_game",
    "is_computational_nash",
    "is_bar_robust",
    "is_generalized_nash",
    "is_k_resilient",
    "is_robust",
    "is_t_immune",
    "max_byzantine_tolerance",
    "max_immunity",
    "max_resilience",
    "mediator_implementability",
    "primality_machine_game",
    "robustness_report",
    "switching_cost_rescues",
    "roshambo_machine_game",
]
