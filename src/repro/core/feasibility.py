"""The ADGH mediator-implementation thresholds as a decision procedure.

Section 2 of the paper summarizes nine results of Abraham–Dolev–Gonen–
Halpern (2006) / Abraham–Dolev–Halpern (2008) about when a (k,t)-robust
mediator equilibrium can be implemented by cheap talk.  This module
encodes that catalogue as executable logic with provenance: given
``(n, k, t)`` and the available resources (punishment strategy, known
utilities, broadcast channels, cryptography + bounded players, PKI), it
returns what is achievable, with which caveats, and quotes the clause of
the theorem it used.

The regimes, from strongest to weakest assumption-free feasibility:

==============  ==========================================================
condition       conclusion
==============  ==========================================================
n > 3k + 3t     implementable; no knowledge of utilities needed; bounded
                running time independent of utilities
n > 2k + 3t     implementable *if* a (k+t)-punishment strategy exists and
                utilities are known; finite expected running time
n > 2k + 2t     ε-implementable with broadcast channels; bounded expected
                running time independent of utilities
n > k + 3t      ε-implementable assuming cryptography and polynomially
                bounded players (running time depends on utilities and ε
                when n <= 2k + 2t)
n > k + t       ε-implementable assuming cryptography, bounded players,
                and a PKI
otherwise       not implementable in general (matching impossibility)
==============  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "Regime",
    "Resources",
    "FeasibilityVerdict",
    "classify_regime",
    "mediator_implementability",
    "feasibility_table",
]


class Regime(Enum):
    """Which threshold band (n, k, t) falls into."""

    ABOVE_3K_3T = "n > 3k + 3t"
    ABOVE_2K_3T = "2k + 3t < n <= 3k + 3t"
    ABOVE_2K_2T = "2k + 2t < n <= 2k + 3t"
    ABOVE_K_3T = "k + 3t < n <= 2k + 2t"
    ABOVE_K_T = "k + t < n <= min(k + 3t, 2k + 2t)"
    AT_OR_BELOW_K_T = "n <= k + t"


@dataclass(frozen=True)
class Resources:
    """What the players may assume, per the theorem statements."""

    utilities_known: bool = False
    punishment_strategy: bool = False
    broadcast: bool = False
    cryptography: bool = False
    polynomially_bounded: bool = False
    pki: bool = False


@dataclass
class FeasibilityVerdict:
    """The decision-procedure output for one (n, k, t, resources) query."""

    n: int
    k: int
    t: int
    regime: Regime
    implementable: bool
    epsilon_only: bool
    requirements: Tuple[str, ...]
    runtime: str
    provenance: str

    def summary(self) -> str:
        """One-line human-readable verdict with requirements and runtime."""
        kind = (
            "ε-implementable"
            if self.implementable and self.epsilon_only
            else ("implementable" if self.implementable else "NOT implementable")
        )
        req = f" [needs: {', '.join(self.requirements)}]" if self.requirements else ""
        return (
            f"(n={self.n}, k={self.k}, t={self.t}) {self.regime.value}: "
            f"{kind}{req}; runtime: {self.runtime}"
        )


def classify_regime(n: int, k: int, t: int) -> Regime:
    """Place (n, k, t) into its ADGH threshold band."""
    _validate(n, k, t)
    if n > 3 * k + 3 * t:
        return Regime.ABOVE_3K_3T
    if n > 2 * k + 3 * t:
        return Regime.ABOVE_2K_3T
    if n > 2 * k + 2 * t:
        return Regime.ABOVE_2K_2T
    if n > k + 3 * t:
        return Regime.ABOVE_K_3T
    if n > k + t:
        return Regime.ABOVE_K_T
    return Regime.AT_OR_BELOW_K_T


def _validate(n: int, k: int, t: int) -> None:
    if n < 1:
        raise ValueError("n must be positive")
    if k < 1:
        raise ValueError("k must be at least 1 (Nash is (1,0)-robust)")
    if t < 0:
        raise ValueError("t must be non-negative")


def mediator_implementability(
    n: int, k: int, t: int, resources: Optional[Resources] = None
) -> FeasibilityVerdict:
    """Decide whether a (k,t)-robust mediator equilibrium is implementable
    by cheap talk, under the given resources.

    Encodes the nine bullets of Section 2 as *ordered rules*: each
    possibility bullet applies to every ``n`` above its threshold (e.g.
    bullet 7's crypto construction works for all ``n > k + 3t``, not only
    inside one band), so the procedure tries the strongest applicable
    construction first.  ``provenance`` names the bullet applied; for
    negative verdicts it names the impossibility bullet at the tightest
    violated threshold.
    """
    resources = resources or Resources()
    regime = classify_regime(n, k, t)

    # Rule 1 (bullet 1): n > 3k+3t, no assumptions, exact.
    if n > 3 * k + 3 * t:
        return FeasibilityVerdict(
            n=n, k=k, t=t, regime=regime,
            implementable=True, epsilon_only=False,
            requirements=(),
            runtime="bounded, independent of utilities",
            provenance=(
                "Bullet 1: if n > 3k + 3t, a (k,t)-robust strategy with a "
                "mediator can be implemented using cheap talk, with no "
                "knowledge of other agents' utilities."
            ),
        )

    # Rule 2 (bullet 3): n > 2k+3t with punishment + known utilities, exact.
    if (
        n > 2 * k + 3 * t
        and resources.punishment_strategy
        and resources.utilities_known
    ):
        return FeasibilityVerdict(
            n=n, k=k, t=t, regime=regime,
            implementable=True, epsilon_only=False,
            requirements=("(k+t)-punishment strategy", "known utilities"),
            runtime="finite expected, independent of utilities",
            provenance=(
                "Bullet 3: if n > 2k + 3t, mediators can be implemented "
                "using cheap talk if there is a punishment strategy (and "
                "utilities are known)."
            ),
        )

    # Rule 3 (bullet 5): n > 2k+2t with broadcast, ε.
    if n > 2 * k + 2 * t and resources.broadcast:
        return FeasibilityVerdict(
            n=n, k=k, t=t, regime=regime,
            implementable=True, epsilon_only=True,
            requirements=("broadcast channels",),
            runtime="bounded expected, independent of utilities",
            provenance=(
                "Bullet 5: if n > 2k + 2t and there are broadcast channels "
                "then, for all ε, mediators can be ε-implemented using "
                "cheap talk."
            ),
        )

    # Rule 4 (bullet 7): n > k+3t with crypto + bounded players, ε.
    if (
        n > k + 3 * t
        and resources.cryptography
        and resources.polynomially_bounded
    ):
        return _crypto_verdict(n, k, t, regime)

    # Rule 5 (bullet 9): n > k+t with crypto + bounded players + PKI, ε.
    if (
        n > k + t
        and resources.cryptography
        and resources.polynomially_bounded
        and resources.pki
    ):
        return FeasibilityVerdict(
            n=n, k=k, t=t, regime=regime,
            implementable=True, epsilon_only=True,
            requirements=(
                "cryptography",
                "polynomially bounded players",
                "PKI",
            ),
            runtime="depends on utilities and ε",
            provenance=(
                "Bullet 9: if n > k + t then, assuming cryptography, "
                "polynomially bounded players, and a PKI, we can "
                "ε-implement a mediator."
            ),
        )

    # No construction applies: report the impossibility bullet at the
    # tightest violated threshold, with the resources that would unlock
    # the next rung.
    return _impossibility_verdict(n, k, t, regime, resources)


def _impossibility_verdict(
    n: int, k: int, t: int, regime: Regime, resources: Resources
) -> FeasibilityVerdict:
    if n <= k + t:
        return FeasibilityVerdict(
            n=n, k=k, t=t, regime=regime,
            implementable=False, epsilon_only=False,
            requirements=(),
            runtime="n/a",
            provenance=(
                "n <= k + t: a majority of players may be deviating or "
                "faulty; no cheap-talk implementation exists in general."
            ),
        )
    if n <= k + 3 * t:
        return FeasibilityVerdict(
            n=n, k=k, t=t, regime=regime,
            implementable=False, epsilon_only=False,
            requirements=("cryptography", "polynomially bounded players", "PKI"),
            runtime="n/a",
            provenance=(
                "Bullet 8: if n <= k + 3t, then even assuming cryptography, "
                "polynomially-bounded players, and a (k+t)-punishment "
                "strategy, mediators cannot, in general, be ε-implemented "
                "using cheap talk (a PKI is required, per bullet 9)."
            ),
        )
    if n <= 2 * k + 2 * t:
        return FeasibilityVerdict(
            n=n, k=k, t=t, regime=regime,
            implementable=False, epsilon_only=False,
            requirements=("cryptography", "polynomially bounded players"),
            runtime="n/a",
            provenance=(
                "Bullet 6: if n <= 2k + 2t then mediators cannot, in "
                "general, be ε-implemented, even with broadcast channels "
                "(cryptography with bounded players is required)."
            ),
        )
    if n <= 2 * k + 3 * t:
        missing = []
        if not resources.broadcast:
            missing.append("broadcast channels")
        if not (resources.cryptography and resources.polynomially_bounded):
            missing.append("cryptography + bounded players")
        return FeasibilityVerdict(
            n=n, k=k, t=t, regime=regime,
            implementable=False, epsilon_only=False,
            requirements=tuple(missing),
            runtime="n/a",
            provenance=(
                "Bullet 4: if n <= 2k + 3t then mediators cannot, in "
                "general, be implemented, even with a punishment strategy "
                "and known utilities (ε-implementations need broadcast or "
                "crypto, per bullets 5 and 7)."
            ),
        )
    missing = []
    if not resources.punishment_strategy:
        missing.append("(k+t)-punishment strategy")
    if not resources.utilities_known:
        missing.append("known utilities")
    return FeasibilityVerdict(
        n=n, k=k, t=t, regime=regime,
        implementable=False, epsilon_only=False,
        requirements=tuple(missing),
        runtime="n/a",
        provenance=(
            "Bullet 2: if n <= 3k + 3t, mediators cannot in general be "
            "implemented without knowledge of utilities, a punishment "
            "strategy, and unbounded running time."
        ),
    )


def _crypto_verdict(n: int, k: int, t: int, regime: Regime) -> FeasibilityVerdict:
    """Bullet 7: crypto + bounded players, n > k + 3t."""
    runtime = (
        "bounded, independent of utilities"
        if n > 2 * k + 2 * t
        else "depends on utilities and ε"
    )
    return FeasibilityVerdict(
        n=n, k=k, t=t, regime=regime,
        implementable=True, epsilon_only=True,
        requirements=("cryptography", "polynomially bounded players"),
        runtime=runtime,
        provenance=(
            "Bullet 7: if n > k + 3t then, assuming cryptography and "
            "polynomially bounded players, mediators can be ε-implemented "
            "using cheap talk; if n <= 2k + 2t the running time depends on "
            "the utilities and ε."
        ),
    )


def feasibility_table(
    n_values: Sequence[int],
    k: int,
    t: int,
    resources: Optional[Resources] = None,
) -> List[FeasibilityVerdict]:
    """Sweep ``n`` and return one verdict per value (benchmark E3's rows)."""
    return [
        mediator_implementability(n, k, t, resources=resources)
        for n in n_values
    ]
