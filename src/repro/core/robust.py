"""Robust and resilient equilibrium (Section 2 of the paper).

Definitions implemented (Abraham–Dolev–Gonen–Halpern 2006, as summarized
in the paper):

* A profile is **k-resilient** if no coalition of at most ``k`` players
  can deviate in a way that benefits coalition members — "deviators do
  not gain by deviating".  Two variants of "benefits" appear in the
  literature and both are provided:

  - ``"strong"`` (default, ADGH): the deviation counts if *some* member
    strictly gains.  Checking pure joint deviations suffices: a member's
    gain is linear in the coalition's correlated deviation, so its
    maximum is at a vertex.
  - ``"weak"`` (Aumann-style): the deviation counts only if *every*
    member strictly gains.  Correlated mixed deviations can achieve this
    even when no pure one does, so the check solves a small LP
    (maximize the minimum member gain over correlated deviations).

* A profile is **t-immune** if no set of at most ``t`` deviating players
  can *hurt* any non-deviator — "non-deviators do not get hurt".
  Non-deviator utility is multilinear in the deviators' (product)
  mixtures, so its minimum is at a pure joint deviation; the pure check
  is complete.

* A profile is **(k,t)-robust** if it is both; a Nash equilibrium is
  exactly a (1,0)-robust equilibrium — that identity is tested.

Implementation note: the searches are vectorized.  A
:class:`_ProfileEvaluator` memoizes, per (player, free-player-set), the
payoff tensor obtained by contracting every *other* player's mixture into
the payoff array, so a coalition's whole deviation space is scored with
one NumPy broadcast instead of a per-profile Python loop.  The original
loop implementations survive as ``_reference_*`` oracles for the
property tests in ``tests/test_properties_vectorized.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.games.normal_form import (
    MixedProfile,
    NormalFormGame,
    PureProfile,
)

__all__ = [
    "ResilienceViolation",
    "ImmunityViolation",
    "RobustnessReport",
    "is_k_resilient",
    "is_t_immune",
    "is_robust",
    "max_resilience",
    "max_immunity",
    "robustness_report",
]


@dataclass(frozen=True)
class ResilienceViolation:
    """A coalition deviation that benefits coalition members."""

    coalition: Tuple[int, ...]
    deviation: Tuple[int, ...]  # pure joint action of the coalition (or () for LP)
    gains: Tuple[float, ...]  # per-member gains
    variant: str


@dataclass(frozen=True)
class ImmunityViolation:
    """A deviating set whose behaviour hurts some non-deviator."""

    deviators: Tuple[int, ...]
    deviation: Tuple[int, ...]
    victim: int
    loss: float


class _ProfileEvaluator:
    """Memoized payoff-tensor contractions of one game against one profile.

    ``payoff_tensor(player, free)`` returns ``player``'s expected payoff
    as an array over the *free* players' pure actions, with every other
    player's mixture contracted in.  Robustness checks for overlapping
    coalitions/deviator sets reuse these tables instead of recomputing
    ``expected_payoff`` per pure deviation.
    """

    def __init__(self, game: NormalFormGame, profile: MixedProfile) -> None:
        self.game = game
        self.profile = [np.asarray(v, dtype=float) for v in profile]
        self._tensors: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._base: Optional[np.ndarray] = None

    def payoff_tensor(
        self, player: int, free: Tuple[int, ...]
    ) -> np.ndarray:
        """Expected payoff of ``player`` as a tensor over ``free`` players' actions."""
        key = (player, free)
        cached = self._tensors.get(key)
        if cached is not None:
            return cached
        tensor = self.game.payoffs[player]
        free_set = set(free)
        # Contract bound players in descending axis order so the remaining
        # axis indices stay valid; the surviving axes end up ordered by
        # ascending player index, matching sorted(free).
        for j in range(self.game.n_players - 1, -1, -1):
            if j in free_set:
                continue
            # Descending order: every player below j is still uncontracted,
            # so player j's axis index in the current tensor is exactly j.
            tensor = np.tensordot(tensor, self.profile[j], axes=(j, 0))
        tensor = np.asarray(tensor, dtype=float)
        self._tensors[key] = tensor
        return tensor

    def base_payoffs(self) -> np.ndarray:
        """Every player's expected payoff when nobody deviates."""
        if self._base is None:
            self._base = np.array(
                [
                    float(self.payoff_tensor(i, ()))
                    for i in range(self.game.n_players)
                ]
            )
        return self._base

    def coalition_table(self, coalition: Tuple[int, ...]) -> np.ndarray:
        """Members' payoffs over the coalition's joint pure deviations.

        Shape ``(len(coalition), m_{c_1}, ..., m_{c_s})`` with coalition
        members in ascending player order along both the leading axis and
        the action axes (matching ``itertools.product`` enumeration).
        """
        return np.stack([self.payoff_tensor(i, coalition) for i in coalition])


def _coalition_payoffs(
    game: NormalFormGame,
    profile: MixedProfile,
    coalition: Sequence[int],
) -> Dict[Tuple[int, ...], np.ndarray]:
    """Reference (loop) coalition payoff table: for each pure joint action of
    the coalition, the members' utilities when everyone else keeps playing
    ``profile``.  Kept as the oracle for the vectorized
    :meth:`_ProfileEvaluator.coalition_table`."""
    spaces = [range(game.num_actions[i]) for i in coalition]
    out: Dict[Tuple[int, ...], np.ndarray] = {}
    for joint in itertools.product(*spaces):
        adjusted = list(profile)
        for member, action in zip(coalition, joint):
            vec = np.zeros(game.num_actions[member])
            vec[action] = 1.0
            adjusted[member] = vec
        out[joint] = np.array(
            [game.expected_payoff(i, adjusted) for i in coalition]
        )
    return out


def _weak_violation_lp(
    base: np.ndarray, payoff_matrix: np.ndarray, tol: float
) -> Optional[Tuple[float, np.ndarray]]:
    """Does a correlated deviation make *every* member strictly gain?

    ``payoff_matrix`` has one row per joint coalition action and one
    column per member.  Maximize ``m`` subject to
    ``sum_a lambda_a u_i(a) - base_i >= m`` for each member, ``lambda`` a
    distribution.  Returns ``(m, lambda)`` when ``m > tol``.
    """
    n_joints, n_members = payoff_matrix.shape
    n_vars = n_joints + 1  # lambdas + m
    c = np.zeros(n_vars)
    c[-1] = -1.0  # maximize m
    a_ub = np.zeros((n_members, n_vars))
    a_ub[:, :n_joints] = -(payoff_matrix.T - base[:, None])
    a_ub[:, -1] = 1.0
    b_ub = np.zeros(n_members)
    a_eq = np.zeros((1, n_vars))
    a_eq[0, :-1] = 1.0
    b_eq = np.ones(1)
    bounds = [(0.0, 1.0)] * n_joints + [(None, None)]
    result = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not result.success:
        return None
    m = float(result.x[-1])
    if m > tol:
        return m, result.x[:-1]
    return None


def _iter_resilience_violations(
    ev: _ProfileEvaluator,
    sizes: Iterable[int],
    variant: str,
    tol: float,
) -> Iterator[ResilienceViolation]:
    """Yield resilience violations for the given coalition sizes, in the
    same (size, coalition, joint) order as the reference loop search."""
    game = ev.game
    base_all = ev.base_payoffs()
    n = game.n_players
    for size in sizes:
        for coalition in itertools.combinations(range(n), size):
            table = ev.coalition_table(coalition)
            shape = table.shape[1:]
            base = base_all[list(coalition)]
            gains = table - base.reshape((size,) + (1,) * size)
            flat = gains.reshape(size, -1)
            if variant == "strong":
                hit = np.any(flat > tol, axis=0)
                for joint_idx in np.flatnonzero(hit):
                    joint = tuple(
                        int(a) for a in np.unravel_index(joint_idx, shape)
                    )
                    yield ResilienceViolation(
                        coalition=coalition,
                        deviation=joint,
                        gains=tuple(float(g) for g in flat[:, joint_idx]),
                        variant=variant,
                    )
            else:
                # Quick pure check first (cheap sufficient condition).
                all_hit = np.flatnonzero(np.all(flat > tol, axis=0))
                if all_hit.size:
                    joint_idx = int(all_hit[0])
                    joint = tuple(
                        int(a) for a in np.unravel_index(joint_idx, shape)
                    )
                    yield ResilienceViolation(
                        coalition=coalition,
                        deviation=joint,
                        gains=tuple(float(g) for g in flat[:, joint_idx]),
                        variant=variant,
                    )
                elif np.all(flat.max(axis=1) > tol):
                    # Necessary condition for the LP: m* is at most each
                    # member's best pure gain, so any member who can never
                    # gain caps m* at <= tol and the LP is skipped.
                    lp = _weak_violation_lp(base, table.reshape(size, -1).T, tol)
                    if lp is not None:
                        m, _lam = lp
                        yield ResilienceViolation(
                            coalition=coalition,
                            deviation=(),
                            gains=tuple([float(m)] * size),
                            variant="weak(correlated)",
                        )


def resilience_violations(
    game: NormalFormGame,
    profile: MixedProfile,
    k: int,
    variant: str = "strong",
    tol: float = 1e-9,
    first_only: bool = True,
    _ev: Optional[_ProfileEvaluator] = None,
) -> List[ResilienceViolation]:
    """Find coalition deviations that defeat k-resilience."""
    if variant not in ("strong", "weak"):
        raise ValueError("variant must be 'strong' or 'weak'")
    if _ev is None:
        game.validate_profile(profile)
        _ev = _ProfileEvaluator(game, profile)
    sizes = range(1, min(k, game.n_players) + 1)
    found = _iter_resilience_violations(_ev, sizes, variant, tol)
    if first_only:
        first = next(found, None)
        return [] if first is None else [first]
    return list(found)


def is_k_resilient(
    game: NormalFormGame,
    profile: MixedProfile,
    k: int,
    variant: str = "strong",
    tol: float = 1e-9,
) -> bool:
    """Is ``profile`` a k-resilient equilibrium?"""
    return not resilience_violations(
        game, profile, k, variant=variant, tol=tol, first_only=True
    )


def _iter_immunity_violations(
    ev: _ProfileEvaluator,
    sizes: Iterable[int],
    tol: float,
) -> Iterator[ImmunityViolation]:
    """Yield immunity violations for the given deviator-set sizes, in the
    same (size, deviators, joint, victim) order as the reference loop."""
    game = ev.game
    base_all = ev.base_payoffs()
    n = game.n_players
    for size in sizes:
        for deviators in itertools.combinations(range(n), size):
            victims = [v for v in range(n) if v not in deviators]
            if not victims:
                continue
            tables = np.stack(
                [ev.payoff_tensor(v, deviators) for v in victims]
            )
            shape = tables.shape[1:]
            flat = tables.reshape(len(victims), -1)
            losses = base_all[victims][:, None] - flat
            # Reference order is joint-major, victim-minor: transpose so
            # argwhere's row-major scan walks joints before victims.
            for joint_idx, victim_idx in np.argwhere(losses.T > tol):
                joint = tuple(
                    int(a) for a in np.unravel_index(joint_idx, shape)
                )
                yield ImmunityViolation(
                    deviators=deviators,
                    deviation=joint,
                    victim=victims[victim_idx],
                    loss=float(losses[victim_idx, joint_idx]),
                )


def immunity_violations(
    game: NormalFormGame,
    profile: MixedProfile,
    t: int,
    tol: float = 1e-9,
    first_only: bool = True,
    _ev: Optional[_ProfileEvaluator] = None,
) -> List[ImmunityViolation]:
    """Find deviating sets whose behaviour hurts a non-deviator."""
    if _ev is None:
        game.validate_profile(profile)
        _ev = _ProfileEvaluator(game, profile)
    sizes = range(1, min(t, game.n_players) + 1)
    found = _iter_immunity_violations(_ev, sizes, tol)
    if first_only:
        first = next(found, None)
        return [] if first is None else [first]
    return list(found)


def is_t_immune(
    game: NormalFormGame,
    profile: MixedProfile,
    t: int,
    tol: float = 1e-9,
) -> bool:
    """Is ``profile`` t-immune (no <=t deviators can hurt a non-deviator)?"""
    return not immunity_violations(game, profile, t, tol=tol, first_only=True)


def is_robust(
    game: NormalFormGame,
    profile: MixedProfile,
    k: int,
    t: int,
    variant: str = "strong",
    tol: float = 1e-9,
) -> bool:
    """(k,t)-robustness: k-resilient and t-immune.

    ``is_robust(game, profile, 1, 0)`` coincides with ``game.is_nash``.
    """
    return is_k_resilient(game, profile, k, variant=variant, tol=tol) and (
        t == 0 or is_t_immune(game, profile, t, tol=tol)
    )


def max_resilience(
    game: NormalFormGame,
    profile: MixedProfile,
    variant: str = "strong",
    tol: float = 1e-9,
    _ev: Optional[_ProfileEvaluator] = None,
) -> int:
    """The largest k for which ``profile`` is k-resilient (0 if not Nash).

    Scans coalition sizes incrementally (each size checked once) instead
    of re-searching sizes ``1..k`` for every candidate ``k``.
    """
    if _ev is None:
        game.validate_profile(profile)
        _ev = _ProfileEvaluator(game, profile)
    for size in range(1, game.n_players + 1):
        if next(
            _iter_resilience_violations(_ev, [size], variant, tol), None
        ) is not None:
            return size - 1
    return game.n_players


def max_immunity(
    game: NormalFormGame,
    profile: MixedProfile,
    tol: float = 1e-9,
    _ev: Optional[_ProfileEvaluator] = None,
) -> int:
    """The largest t for which ``profile`` is t-immune."""
    if _ev is None:
        game.validate_profile(profile)
        _ev = _ProfileEvaluator(game, profile)
    for size in range(1, game.n_players):
        if next(_iter_immunity_violations(_ev, [size], tol), None) is not None:
            return size - 1
    return game.n_players - 1


@dataclass
class RobustnessReport:
    """Summary of a profile's robustness properties."""

    payoffs: Tuple[float, ...]
    is_nash: bool
    max_k_strong: int
    max_k_weak: int
    max_t: int
    first_resilience_violation: Optional[ResilienceViolation]
    first_immunity_violation: Optional[ImmunityViolation]

    def describe(self) -> str:
        """Human-readable multi-line rendering of the report."""
        lines = [
            f"payoffs: {tuple(round(p, 4) for p in self.payoffs)}",
            f"Nash equilibrium: {self.is_nash}",
            f"max resilience (strong): k = {self.max_k_strong}",
            f"max resilience (weak):   k = {self.max_k_weak}",
            f"max immunity:            t = {self.max_t}",
        ]
        if self.first_resilience_violation is not None:
            v = self.first_resilience_violation
            lines.append(
                f"resilience broken by coalition {v.coalition} "
                f"deviating to {v.deviation} (gains {v.gains})"
            )
        if self.first_immunity_violation is not None:
            v = self.first_immunity_violation
            lines.append(
                f"immunity broken by {v.deviators} playing {v.deviation}: "
                f"player {v.victim} loses {v.loss:.4f}"
            )
        return "\n".join(lines)


def robustness_report(
    game: NormalFormGame, profile: MixedProfile, tol: float = 1e-9
) -> RobustnessReport:
    """Full robustness diagnosis of a profile.

    All five sub-analyses share one :class:`_ProfileEvaluator`, so each
    coalition payoff table is contracted exactly once.
    """
    game.validate_profile(profile)
    ev = _ProfileEvaluator(game, profile)
    max_k_strong = max_resilience(game, profile, variant="strong", tol=tol, _ev=ev)
    max_k_weak = max_resilience(game, profile, variant="weak", tol=tol, _ev=ev)
    max_t = max_immunity(game, profile, tol=tol, _ev=ev)
    res_violations = resilience_violations(
        game, profile, game.n_players, variant="strong", tol=tol, _ev=ev
    )
    imm_violations = immunity_violations(
        game, profile, game.n_players - 1, tol=tol, _ev=ev
    )
    return RobustnessReport(
        payoffs=tuple(float(p) for p in ev.base_payoffs()),
        is_nash=game.is_nash(profile, tol=max(tol, 1e-7)),
        max_k_strong=max_k_strong,
        max_k_weak=max_k_weak,
        max_t=max_t,
        first_resilience_violation=res_violations[0] if res_violations else None,
        first_immunity_violation=imm_violations[0] if imm_violations else None,
    )


# ----------------------------------------------------------------------
# Reference (pre-vectorization) implementations — property-test oracles.
# ----------------------------------------------------------------------


def _reference_resilience_violations(
    game: NormalFormGame,
    profile: MixedProfile,
    k: int,
    variant: str = "strong",
    tol: float = 1e-9,
    first_only: bool = True,
) -> List[ResilienceViolation]:
    """Pre-vectorization loop search over coalitions and pure deviations."""
    if variant not in ("strong", "weak"):
        raise ValueError("variant must be 'strong' or 'weak'")
    game.validate_profile(profile)
    base_all = game.expected_payoffs(profile)
    violations: List[ResilienceViolation] = []
    n = game.n_players
    for size in range(1, min(k, n) + 1):
        for coalition in itertools.combinations(range(n), size):
            payoffs = _coalition_payoffs(game, profile, coalition)
            base = base_all[list(coalition)]
            if variant == "strong":
                for joint, values in payoffs.items():
                    gains = values - base
                    if np.any(gains > tol):
                        violations.append(
                            ResilienceViolation(
                                coalition=coalition,
                                deviation=joint,
                                gains=tuple(float(g) for g in gains),
                                variant=variant,
                            )
                        )
                        if first_only:
                            return violations
            else:
                found = None
                for joint, values in payoffs.items():
                    gains = values - base
                    if np.all(gains > tol):
                        found = (joint, gains)
                        break
                if found is None:
                    matrix = np.array(list(payoffs.values()))
                    lp = _weak_violation_lp(base, matrix, tol)
                    if lp is not None:
                        m, _lam = lp
                        violations.append(
                            ResilienceViolation(
                                coalition=coalition,
                                deviation=(),
                                gains=tuple([float(m)] * size),
                                variant="weak(correlated)",
                            )
                        )
                        if first_only:
                            return violations
                else:
                    joint, gains = found
                    violations.append(
                        ResilienceViolation(
                            coalition=coalition,
                            deviation=joint,
                            gains=tuple(float(g) for g in gains),
                            variant=variant,
                        )
                    )
                    if first_only:
                        return violations
    return violations


def _reference_immunity_violations(
    game: NormalFormGame,
    profile: MixedProfile,
    t: int,
    tol: float = 1e-9,
    first_only: bool = True,
) -> List[ImmunityViolation]:
    """Pre-vectorization loop search over deviator sets and victims."""
    game.validate_profile(profile)
    base_all = game.expected_payoffs(profile)
    violations: List[ImmunityViolation] = []
    n = game.n_players
    for size in range(1, min(t, n) + 1):
        for deviators in itertools.combinations(range(n), size):
            spaces = [range(game.num_actions[i]) for i in deviators]
            for joint in itertools.product(*spaces):
                adjusted = list(profile)
                for member, action in zip(deviators, joint):
                    vec = np.zeros(game.num_actions[member])
                    vec[action] = 1.0
                    adjusted[member] = vec
                for victim in range(n):
                    if victim in deviators:
                        continue
                    value = game.expected_payoff(victim, adjusted)
                    loss = base_all[victim] - value
                    if loss > tol:
                        violations.append(
                            ImmunityViolation(
                                deviators=deviators,
                                deviation=joint,
                                victim=victim,
                                loss=float(loss),
                            )
                        )
                        if first_only:
                            return violations
    return violations
