"""Robust and resilient equilibrium (Section 2 of the paper).

Definitions implemented (Abraham–Dolev–Gonen–Halpern 2006, as summarized
in the paper):

* A profile is **k-resilient** if no coalition of at most ``k`` players
  can deviate in a way that benefits coalition members — "deviators do
  not gain by deviating".  Two variants of "benefits" appear in the
  literature and both are provided:

  - ``"strong"`` (default, ADGH): the deviation counts if *some* member
    strictly gains.  Checking pure joint deviations suffices: a member's
    gain is linear in the coalition's correlated deviation, so its
    maximum is at a vertex.
  - ``"weak"`` (Aumann-style): the deviation counts only if *every*
    member strictly gains.  Correlated mixed deviations can achieve this
    even when no pure one does, so the check solves a small LP
    (maximize the minimum member gain over correlated deviations).

* A profile is **t-immune** if no set of at most ``t`` deviating players
  can *hurt* any non-deviator — "non-deviators do not get hurt".
  Non-deviator utility is multilinear in the deviators' (product)
  mixtures, so its minimum is at a pure joint deviation; the pure check
  is complete.

* A profile is **(k,t)-robust** if it is both; a Nash equilibrium is
  exactly a (1,0)-robust equilibrium — that identity is tested.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.games.normal_form import (
    MixedProfile,
    NormalFormGame,
    PureProfile,
)

__all__ = [
    "ResilienceViolation",
    "ImmunityViolation",
    "RobustnessReport",
    "is_k_resilient",
    "is_t_immune",
    "is_robust",
    "max_resilience",
    "max_immunity",
    "robustness_report",
]


@dataclass(frozen=True)
class ResilienceViolation:
    """A coalition deviation that benefits coalition members."""

    coalition: Tuple[int, ...]
    deviation: Tuple[int, ...]  # pure joint action of the coalition (or () for LP)
    gains: Tuple[float, ...]  # per-member gains
    variant: str


@dataclass(frozen=True)
class ImmunityViolation:
    """A deviating set whose behaviour hurts some non-deviator."""

    deviators: Tuple[int, ...]
    deviation: Tuple[int, ...]
    victim: int
    loss: float


def _coalition_payoffs(
    game: NormalFormGame,
    profile: MixedProfile,
    coalition: Sequence[int],
) -> Dict[Tuple[int, ...], np.ndarray]:
    """For each pure joint action of the coalition, the members' utilities
    when everyone else keeps playing ``profile``."""
    spaces = [range(game.num_actions[i]) for i in coalition]
    out: Dict[Tuple[int, ...], np.ndarray] = {}
    for joint in itertools.product(*spaces):
        adjusted = list(profile)
        for member, action in zip(coalition, joint):
            vec = np.zeros(game.num_actions[member])
            vec[action] = 1.0
            adjusted[member] = vec
        out[joint] = np.array(
            [game.expected_payoff(i, adjusted) for i in coalition]
        )
    return out


def _weak_violation_lp(
    base: np.ndarray, payoffs: Dict[Tuple[int, ...], np.ndarray], tol: float
) -> Optional[Tuple[float, np.ndarray]]:
    """Does a correlated deviation make *every* member strictly gain?

    Maximize ``m`` subject to ``sum_a lambda_a u_i(a) - base_i >= m`` for
    each member, ``lambda`` a distribution.  Returns ``(m, lambda)`` when
    ``m > tol``.
    """
    joints = list(payoffs.keys())
    n_vars = len(joints) + 1  # lambdas + m
    n_members = len(base)
    c = np.zeros(n_vars)
    c[-1] = -1.0  # maximize m
    a_ub = np.zeros((n_members, n_vars))
    b_ub = np.zeros(n_members)
    for row in range(n_members):
        for col, joint in enumerate(joints):
            a_ub[row, col] = -(payoffs[joint][row] - base[row])
        a_ub[row, -1] = 1.0
    a_eq = np.zeros((1, n_vars))
    a_eq[0, :-1] = 1.0
    b_eq = np.ones(1)
    bounds = [(0.0, 1.0)] * len(joints) + [(None, None)]
    result = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not result.success:
        return None
    m = float(result.x[-1])
    if m > tol:
        return m, result.x[:-1]
    return None


def resilience_violations(
    game: NormalFormGame,
    profile: MixedProfile,
    k: int,
    variant: str = "strong",
    tol: float = 1e-9,
    first_only: bool = True,
) -> List[ResilienceViolation]:
    """Find coalition deviations that defeat k-resilience."""
    if variant not in ("strong", "weak"):
        raise ValueError("variant must be 'strong' or 'weak'")
    game.validate_profile(profile)
    base_all = game.expected_payoffs(profile)
    violations: List[ResilienceViolation] = []
    n = game.n_players
    for size in range(1, min(k, n) + 1):
        for coalition in itertools.combinations(range(n), size):
            payoffs = _coalition_payoffs(game, profile, coalition)
            base = base_all[list(coalition)]
            if variant == "strong":
                for joint, values in payoffs.items():
                    gains = values - base
                    if np.any(gains > tol):
                        violations.append(
                            ResilienceViolation(
                                coalition=coalition,
                                deviation=joint,
                                gains=tuple(float(g) for g in gains),
                                variant=variant,
                            )
                        )
                        if first_only:
                            return violations
            else:
                # Quick pure check first (cheap sufficient condition).
                found = None
                for joint, values in payoffs.items():
                    gains = values - base
                    if np.all(gains > tol):
                        found = (joint, gains)
                        break
                if found is None:
                    lp = _weak_violation_lp(base, payoffs, tol)
                    if lp is not None:
                        m, _lam = lp
                        violations.append(
                            ResilienceViolation(
                                coalition=coalition,
                                deviation=(),
                                gains=tuple([float(m)] * size),
                                variant="weak(correlated)",
                            )
                        )
                        if first_only:
                            return violations
                else:
                    joint, gains = found
                    violations.append(
                        ResilienceViolation(
                            coalition=coalition,
                            deviation=joint,
                            gains=tuple(float(g) for g in gains),
                            variant=variant,
                        )
                    )
                    if first_only:
                        return violations
    return violations


def is_k_resilient(
    game: NormalFormGame,
    profile: MixedProfile,
    k: int,
    variant: str = "strong",
    tol: float = 1e-9,
) -> bool:
    """Is ``profile`` a k-resilient equilibrium?"""
    return not resilience_violations(
        game, profile, k, variant=variant, tol=tol, first_only=True
    )


def immunity_violations(
    game: NormalFormGame,
    profile: MixedProfile,
    t: int,
    tol: float = 1e-9,
    first_only: bool = True,
) -> List[ImmunityViolation]:
    """Find deviating sets whose behaviour hurts a non-deviator."""
    game.validate_profile(profile)
    base_all = game.expected_payoffs(profile)
    violations: List[ImmunityViolation] = []
    n = game.n_players
    for size in range(1, min(t, n) + 1):
        for deviators in itertools.combinations(range(n), size):
            spaces = [range(game.num_actions[i]) for i in deviators]
            for joint in itertools.product(*spaces):
                adjusted = list(profile)
                for member, action in zip(deviators, joint):
                    vec = np.zeros(game.num_actions[member])
                    vec[action] = 1.0
                    adjusted[member] = vec
                for victim in range(n):
                    if victim in deviators:
                        continue
                    value = game.expected_payoff(victim, adjusted)
                    loss = base_all[victim] - value
                    if loss > tol:
                        violations.append(
                            ImmunityViolation(
                                deviators=deviators,
                                deviation=joint,
                                victim=victim,
                                loss=float(loss),
                            )
                        )
                        if first_only:
                            return violations
    return violations


def is_t_immune(
    game: NormalFormGame,
    profile: MixedProfile,
    t: int,
    tol: float = 1e-9,
) -> bool:
    """Is ``profile`` t-immune (no <=t deviators can hurt a non-deviator)?"""
    return not immunity_violations(game, profile, t, tol=tol, first_only=True)


def is_robust(
    game: NormalFormGame,
    profile: MixedProfile,
    k: int,
    t: int,
    variant: str = "strong",
    tol: float = 1e-9,
) -> bool:
    """(k,t)-robustness: k-resilient and t-immune.

    ``is_robust(game, profile, 1, 0)`` coincides with ``game.is_nash``.
    """
    return is_k_resilient(game, profile, k, variant=variant, tol=tol) and (
        t == 0 or is_t_immune(game, profile, t, tol=tol)
    )


def max_resilience(
    game: NormalFormGame,
    profile: MixedProfile,
    variant: str = "strong",
    tol: float = 1e-9,
) -> int:
    """The largest k for which ``profile`` is k-resilient (0 if not Nash)."""
    for k in range(1, game.n_players + 1):
        if resilience_violations(
            game, profile, k, variant=variant, tol=tol, first_only=True
        ):
            return k - 1
    return game.n_players


def max_immunity(
    game: NormalFormGame, profile: MixedProfile, tol: float = 1e-9
) -> int:
    """The largest t for which ``profile`` is t-immune."""
    for t in range(1, game.n_players):
        if immunity_violations(game, profile, t, tol=tol, first_only=True):
            return t - 1
    return game.n_players - 1


@dataclass
class RobustnessReport:
    """Summary of a profile's robustness properties."""

    payoffs: Tuple[float, ...]
    is_nash: bool
    max_k_strong: int
    max_k_weak: int
    max_t: int
    first_resilience_violation: Optional[ResilienceViolation]
    first_immunity_violation: Optional[ImmunityViolation]

    def describe(self) -> str:
        lines = [
            f"payoffs: {tuple(round(p, 4) for p in self.payoffs)}",
            f"Nash equilibrium: {self.is_nash}",
            f"max resilience (strong): k = {self.max_k_strong}",
            f"max resilience (weak):   k = {self.max_k_weak}",
            f"max immunity:            t = {self.max_t}",
        ]
        if self.first_resilience_violation is not None:
            v = self.first_resilience_violation
            lines.append(
                f"resilience broken by coalition {v.coalition} "
                f"deviating to {v.deviation} (gains {v.gains})"
            )
        if self.first_immunity_violation is not None:
            v = self.first_immunity_violation
            lines.append(
                f"immunity broken by {v.deviators} playing {v.deviation}: "
                f"player {v.victim} loses {v.loss:.4f}"
            )
        return "\n".join(lines)


def robustness_report(
    game: NormalFormGame, profile: MixedProfile, tol: float = 1e-9
) -> RobustnessReport:
    """Full robustness diagnosis of a profile."""
    game.validate_profile(profile)
    max_k_strong = max_resilience(game, profile, variant="strong", tol=tol)
    max_k_weak = max_resilience(game, profile, variant="weak", tol=tol)
    max_t = max_immunity(game, profile, tol=tol)
    res_violations = resilience_violations(
        game, profile, game.n_players, variant="strong", tol=tol
    )
    imm_violations = immunity_violations(
        game, profile, game.n_players - 1, tol=tol
    )
    return RobustnessReport(
        payoffs=tuple(float(p) for p in game.expected_payoffs(profile)),
        is_nash=game.is_nash(profile, tol=max(tol, 1e-7)),
        max_k_strong=max_k_strong,
        max_k_weak=max_k_weak,
        max_t=max_t,
        first_resilience_violation=res_violations[0] if res_violations else None,
        first_immunity_violation=imm_violations[0] if imm_violations else None,
    )
