"""Games with awareness and generalized Nash equilibrium (Section 4).

Following Halpern–Rêgo (2006) as summarized in the paper:

* An **augmented game** based on an underlying extensive game Γ is an
  extensive game (possibly with extra chance moves encoding uncertainty
  about awareness) in which each decision node carries the mover's
  *awareness level*.  Here augmented games are plain
  :class:`~repro.games.extensive.ExtensiveFormGame` trees; awareness
  levels are implicit in the tree shape (an unaware player's nodes simply
  offer fewer moves), which is sufficient for solving.

* A **game with awareness** is a tuple Γ* = (G, Γm, F): a set of
  augmented games ``G`` containing the modeler's game Γm, and a map ``F``
  sending each decision node ``(Γ+, h)`` to ``(Γh, I)`` — the game the
  mover *believes* is being played there, and the information set of that
  game the mover considers possible.  Construction eagerly checks the
  Halpern–Rêgo consistency conditions in the form needed for solving:

  - the believed game is in ``G`` and the believed information set is
    owned by the same player;
  - the moves available at the believed information set are a subset of
    the moves actually available at ``h`` (a player can only be aware of
    moves that exist);
  - ``F`` is constant on the information sets of each augmented game.

* A **generalized strategy profile** assigns a behavioral strategy to
  each pair ``(player, believed game)``.  Play in any augmented game Γ+
  is *effective play*: at a node ``h`` owned by ``j`` with
  ``F(Γ+, h) = (Γh, I)``, the move distribution is what ``σ_{j,Γh}``
  prescribes at ``I`` (moves the player is unaware of get probability 0).

* The profile is a **generalized Nash equilibrium** if for every pair
  ``(i, Γ')`` such that some node maps into Γ', the local strategy
  ``σ_{i,Γ'}`` is a best response *within Γ'* against the effective play
  of the others — exactly the paper's "σ_{i,Γ'} is a best response for
  player i if the true game is Γ'".

A standard game is recovered via :func:`canonical_representation`, and
the paper's equivalence (σ is Nash in Γ iff it is a GNE of the canonical
representation) is verified in the test suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.games.extensive import (
    BehavioralStrategy,
    DecisionNode,
    ExtensiveFormGame,
    History,
    InformationSet,
)

__all__ = [
    "AugmentedGame",
    "FTarget",
    "GameWithAwareness",
    "GeneralizedStrategyProfile",
    "is_generalized_nash",
    "find_generalized_nash",
    "canonical_representation",
]

# An augmented game is represented by an extensive-form tree.
AugmentedGame = ExtensiveFormGame

# F maps (game_name, history) -> (game_name, infoset_label).
FTarget = Tuple[str, str]

# profile[(player, game_name)] = behavioral strategy in that game.
GeneralizedStrategyProfile = Dict[Tuple[int, str], BehavioralStrategy]


class GameWithAwareness:
    """The tuple Γ* = (G, Γm, F) with eager consistency checking."""

    def __init__(
        self,
        games: Mapping[str, ExtensiveFormGame],
        modeler_game: str,
        f_map: Mapping[Tuple[str, History], FTarget],
        name: str = "",
    ) -> None:
        self.games: Dict[str, ExtensiveFormGame] = dict(games)
        if modeler_game not in self.games:
            raise ValueError(f"modeler game {modeler_game!r} not in G")
        self.modeler_game = modeler_game
        self.name = name
        self.n_players = self.games[modeler_game].n_players
        for label, game in self.games.items():
            if game.n_players != self.n_players:
                raise ValueError(
                    f"augmented game {label!r} has a different player set"
                )
        self.f_map: Dict[Tuple[str, History], FTarget] = {
            (g, tuple(h)): target for (g, h), target in f_map.items()
        }
        self._validate()

    # ------------------------------------------------------------------
    # Consistency conditions
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        for label, game in self.games.items():
            for history, node in game.nodes.items():
                if not isinstance(node, DecisionNode):
                    continue
                key = (label, history)
                if key not in self.f_map:
                    raise ValueError(
                        f"F is missing an entry for decision node "
                        f"{history} of game {label!r}"
                    )
                believed_label, infoset_label = self.f_map[key]
                if believed_label not in self.games:
                    raise ValueError(
                        f"F({label!r}, {history}) points to unknown game "
                        f"{believed_label!r}"
                    )
                believed = self.games[believed_label]
                infoset = self._find_infoset(believed, infoset_label)
                if infoset is None:
                    raise ValueError(
                        f"game {believed_label!r} has no infoset "
                        f"{infoset_label!r}"
                    )
                if infoset.player != node.player:
                    raise ValueError(
                        f"F({label!r}, {history}): believed infoset belongs "
                        f"to player {infoset.player}, mover is {node.player}"
                    )
                if not set(infoset.moves) <= set(node.moves):
                    raise ValueError(
                        f"F({label!r}, {history}): believed moves "
                        f"{infoset.moves} are not available at the node "
                        f"(moves {node.moves})"
                    )
            # F constant on information sets.
            for infoset in game.information_sets():
                targets = {
                    self.f_map[(label, h)] for h in infoset.histories
                }
                if len(targets) > 1:
                    raise ValueError(
                        f"F is not constant on infoset {infoset.label!r} of "
                        f"game {label!r}"
                    )

    @staticmethod
    def _find_infoset(
        game: ExtensiveFormGame, label: str
    ) -> Optional[InformationSet]:
        for infoset in game.information_sets():
            if infoset.label == label:
                return infoset
        return None

    # ------------------------------------------------------------------
    # Strategy bookkeeping
    # ------------------------------------------------------------------

    def strategy_pairs(self) -> List[Tuple[int, str]]:
        """All (player, believed-game) pairs that a generalized profile
        must cover: the targets of F."""
        pairs: Set[Tuple[int, str]] = set()
        for (label, history), (believed, _infoset) in self.f_map.items():
            node = self.games[label].nodes[tuple(history)]
            assert isinstance(node, DecisionNode)
            pairs.add((node.player, believed))
        return sorted(pairs)

    def local_infosets(self, player: int, game_label: str) -> List[InformationSet]:
        """The infosets of ``game_label`` at which (player, game_label)'s
        local strategy is actually consulted: those that are F-targets."""
        used: Set[str] = set()
        for (label, history), (believed, infoset_label) in self.f_map.items():
            node = self.games[label].nodes[tuple(history)]
            assert isinstance(node, DecisionNode)
            if node.player == player and believed == game_label:
                used.add(infoset_label)
        game = self.games[game_label]
        return [
            info for info in game.information_sets(player) if info.label in used
        ]

    def validate_profile(self, profile: GeneralizedStrategyProfile) -> None:
        """Raise ``ValueError`` unless every (player, game) infoset has a strategy."""
        for player, game_label in self.strategy_pairs():
            for infoset in self.local_infosets(player, game_label):
                key = (player, game_label)
                if key not in profile or infoset.label not in profile[key]:
                    raise ValueError(
                        f"profile missing strategy for player {player} at "
                        f"infoset {infoset.label!r} of game {game_label!r}"
                    )
                dist = profile[key][infoset.label]
                total = sum(dist.get(m, 0.0) for m in infoset.moves)
                if abs(total - 1.0) > 1e-6 or any(
                    v < -1e-9 for v in dist.values()
                ):
                    raise ValueError(
                        f"invalid distribution at {infoset.label!r} for "
                        f"player {player} in game {game_label!r}"
                    )

    # ------------------------------------------------------------------
    # Effective play and utilities
    # ------------------------------------------------------------------

    def effective_profile(
        self,
        game_label: str,
        profile: GeneralizedStrategyProfile,
        overrides: Optional[Dict[str, Dict[str, float]]] = None,
        override_player: Optional[int] = None,
    ) -> List[BehavioralStrategy]:
        """The behavioral profile actually played in ``game_label``.

        At each decision node the mover's distribution comes from their
        local strategy in the game they believe they are playing.
        ``overrides`` (for best-response search) replaces
        ``override_player``'s choices at the given *believed* infoset
        labels, but only where that player's beliefs point at
        ``game_label`` itself.
        """
        game = self.games[game_label]
        out: List[BehavioralStrategy] = [dict() for _ in range(self.n_players)]
        for history, node in game.nodes.items():
            if not isinstance(node, DecisionNode):
                continue
            believed_label, infoset_label = self.f_map[(game_label, history)]
            if (
                overrides is not None
                and node.player == override_player
                and believed_label == game_label
                and infoset_label in overrides
            ):
                dist = overrides[infoset_label]
            else:
                dist = profile[(node.player, believed_label)][infoset_label]
            full = {m: float(dist.get(m, 0.0)) for m in node.moves}
            total = sum(full.values())
            if total <= 0:
                raise ValueError(
                    f"strategy at {infoset_label!r} puts no mass on moves "
                    f"available at {history} in {game_label!r}"
                )
            out[node.player][node.infoset] = {
                m: v / total for m, v in full.items()
            }
        return out

    def expected_utility(
        self,
        player: int,
        game_label: str,
        profile: GeneralizedStrategyProfile,
        overrides: Optional[Dict[str, Dict[str, float]]] = None,
        override_player: Optional[int] = None,
    ) -> float:
        """Player's expected utility in ``game_label`` under the generalized profile."""
        behavioral = self.effective_profile(
            game_label, profile, overrides=overrides,
            override_player=override_player,
        )
        return self.games[game_label].expected_payoff(player, behavioral)

    # ------------------------------------------------------------------
    # Generalized Nash equilibrium
    # ------------------------------------------------------------------

    def _pure_local_strategies(
        self, player: int, game_label: str
    ) -> Iterator[Dict[str, Dict[str, float]]]:
        """Pure assignments at the consulted infosets of (player, game)."""
        infosets = self.local_infosets(player, game_label)
        move_lists = [info.moves for info in infosets]
        for combo in itertools.product(*move_lists):
            yield {
                info.label: {m: 1.0 if m == choice else 0.0 for m in info.moves}
                for info, choice in zip(infosets, combo)
            }

    def local_regret(
        self,
        player: int,
        game_label: str,
        profile: GeneralizedStrategyProfile,
    ) -> float:
        """How much (player, game_label) could gain by changing their local
        strategy, holding everything else fixed."""
        current = self.expected_utility(player, game_label, profile)
        best = current
        for pure in self._pure_local_strategies(player, game_label):
            if not pure:
                continue
            value = self.expected_utility(
                player, game_label, profile,
                overrides=pure, override_player=player,
            )
            best = max(best, value)
        return best - current

    def is_generalized_nash(
        self, profile: GeneralizedStrategyProfile, tol: float = 1e-9
    ) -> bool:
        """Check the GNE condition at every (player, believed game) pair."""
        self.validate_profile(profile)
        return all(
            self.local_regret(player, game_label, profile) <= tol
            for player, game_label in self.strategy_pairs()
        )

    def find_generalized_nash(
        self,
        tol: float = 1e-9,
        max_iterations: int = 200,
        exhaustive_fallback: bool = True,
    ) -> Optional[GeneralizedStrategyProfile]:
        """Find a GNE by best-response iteration, then exhaustive search.

        Halpern–Rêgo prove every game with awareness has a (possibly
        mixed) GNE; this solver finds pure ones, which suffice for every
        example in the paper.  Returns ``None`` if no pure GNE exists.
        """
        profile = self._initial_profile()
        for _ in range(max_iterations):
            improved = False
            for player, game_label in self.strategy_pairs():
                if self.local_regret(player, game_label, profile) <= tol:
                    continue
                best_value, best_pure = -np.inf, None
                for pure in self._pure_local_strategies(player, game_label):
                    value = self.expected_utility(
                        player, game_label, profile,
                        overrides=pure, override_player=player,
                    )
                    if value > best_value + tol:
                        best_value, best_pure = value, pure
                if best_pure is not None:
                    profile[(player, game_label)] = best_pure
                    improved = True
            if not improved:
                return profile
        if not exhaustive_fallback:
            return None
        return self._exhaustive_pure_search(tol)

    def _initial_profile(self) -> GeneralizedStrategyProfile:
        profile: GeneralizedStrategyProfile = {}
        for player, game_label in self.strategy_pairs():
            local: Dict[str, Dict[str, float]] = {}
            for infoset in self.local_infosets(player, game_label):
                first = infoset.moves[0]
                local[infoset.label] = {
                    m: 1.0 if m == first else 0.0 for m in infoset.moves
                }
            profile[(player, game_label)] = local
        return profile

    def _exhaustive_pure_search(
        self, tol: float
    ) -> Optional[GeneralizedStrategyProfile]:
        for profile in self.all_pure_generalized_nash(tol=tol):
            return profile
        return None

    def all_pure_generalized_nash(
        self, tol: float = 1e-9
    ) -> Iterator[GeneralizedStrategyProfile]:
        """Enumerate every pure generalized Nash equilibrium.

        Off-path indifference means games with awareness often have
        several pure GNE (e.g. in the Figures 1-3 structure both
        "A plays across_A, aware B plays down_B" and the degenerate
        "A plays down_A, B unreached" survive); experiments that care
        about a particular one filter this enumeration.
        """
        pairs = self.strategy_pairs()
        spaces = [
            list(self._pure_local_strategies(player, game_label))
            for player, game_label in pairs
        ]
        for combo in itertools.product(*spaces):
            profile: GeneralizedStrategyProfile = {
                pair: dict(local) for pair, local in zip(pairs, combo)
            }
            if self.is_generalized_nash(profile, tol=tol):
                yield profile


def is_generalized_nash(
    game: GameWithAwareness,
    profile: GeneralizedStrategyProfile,
    tol: float = 1e-9,
) -> bool:
    """Module-level convenience wrapper."""
    return game.is_generalized_nash(profile, tol=tol)


def find_generalized_nash(
    game: GameWithAwareness, tol: float = 1e-9
) -> Optional[GeneralizedStrategyProfile]:
    """Module-level convenience wrapper."""
    return game.find_generalized_nash(tol=tol)


def canonical_representation(
    game: ExtensiveFormGame, label: str = "G"
) -> GameWithAwareness:
    """Γ as a game with awareness: G = {Γm}, F the identity on infosets.

    The paper: a profile is a Nash equilibrium of Γ iff it is a
    generalized Nash equilibrium of this representation.
    """
    f_map: Dict[Tuple[str, History], FTarget] = {}
    for history, node in game.nodes.items():
        if isinstance(node, DecisionNode):
            f_map[(label, history)] = (label, node.infoset)
    return GameWithAwareness(
        games={label: game},
        modeler_game=label,
        f_map=f_map,
        name=f"canonical({game.name or label})",
    )
