"""The paper's Section 4 example, built as games with awareness.

Three constructions:

* :func:`figure1_unaware_game` — the prose scenario around Figure 1: A is
  (certainly) unaware that B can play down_B.  Its unique generalized
  Nash equilibrium has A playing down_A — the paper's point that Nash
  equilibrium (which predicts across_A/down_B) "does not seem to be the
  appropriate solution concept here".

* :func:`figure_gamma_games` — the full Figures 1–3 structure: the
  modeler's game Γm, A's subjective game ΓA (nature resolves whether B is
  aware of down_B, with P(unaware) = p), and the unaware game ΓB.  The
  generalized Nash equilibrium depends on p: A plays across_A iff
  ``2 * (1 - p) >= 1``, i.e. iff ``p <= 1/2`` (with the payoffs chosen in
  :func:`repro.games.classics.figure1_game`).

* :func:`virtual_move_game` — awareness of unawareness: A knows B has
  *some* extra move but not what it is, modelled by a "virtual" move for
  B whose consequences A summarizes with believed payoffs (the
  chess-evaluation analogy from the paper).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.awareness import FTarget, GameWithAwareness
from repro.games.classics import figure1_game
from repro.games.extensive import ExtensiveFormGame, History

__all__ = [
    "figure1_unaware_game",
    "figure_gamma_games",
    "gamma_b_game",
    "virtual_move_game",
]


def gamma_b_game() -> ExtensiveFormGame:
    """ΓB (Figure 3): the game as the unaware players see it.

    Neither player is aware of down_B, so after across_A, B's only move
    is across_B.  Payoffs agree with the underlying game on the histories
    that exist.
    """
    game = ExtensiveFormGame(n_players=2, name="Gamma_B")
    game.add_decision((), player=0, moves=("across_A", "down_A"), infoset="A.3")
    game.add_terminal(("down_A",), (1.0, 1.0))
    game.add_decision(("across_A",), player=1, moves=("across_B",), infoset="B.3")
    game.add_terminal(("across_A", "across_B"), (0.0, 0.0))
    return game.finalize()


def figure1_unaware_game() -> GameWithAwareness:
    """A is certainly unaware of down_B; B is aware of everything.

    G = {Γm, ΓB}; at A's node of Γm, F points into ΓB (A believes the true
    game has no down_B); at B's node, F points back to Γm.
    """
    modeler = figure1_game()
    unaware = gamma_b_game()
    f_map: Dict[Tuple[str, History], FTarget] = {
        ("modeler", ()): ("gamma_b", "A.3"),
        ("modeler", ("across_A",)): ("modeler", "B"),
        ("gamma_b", ()): ("gamma_b", "A.3"),
        ("gamma_b", ("across_A",)): ("gamma_b", "B.3"),
    }
    return GameWithAwareness(
        games={"modeler": modeler, "gamma_b": unaware},
        modeler_game="modeler",
        f_map=f_map,
        name="Figure 1 with unaware A",
    )


def gamma_a_game(p_unaware: float) -> ExtensiveFormGame:
    """ΓA (Figure 2): A's subjective game.

    Nature first resolves whether B is aware of down_B (unaware with
    probability ``p_unaware``); A then moves without observing nature
    (information set A.1 spans both branches); after across_A, the aware
    B (node B.1) has both moves while the unaware B (node B.2) has only
    across_B.
    """
    if not 0.0 <= p_unaware <= 1.0:
        raise ValueError("p_unaware must be a probability")
    game = ExtensiveFormGame(n_players=2, name="Gamma_A")
    game.add_chance(
        (), {"aware": 1.0 - p_unaware, "unaware": p_unaware}
    )
    for branch in ("aware", "unaware"):
        game.add_decision(
            (branch,), player=0, moves=("across_A", "down_A"), infoset="A.1"
        )
        game.add_terminal((branch, "down_A"), (1.0, 1.0))
    game.add_decision(
        ("aware", "across_A"), player=1,
        moves=("across_B", "down_B"), infoset="B.1",
    )
    game.add_terminal(("aware", "across_A", "across_B"), (0.0, 0.0))
    game.add_terminal(("aware", "across_A", "down_B"), (2.0, 2.0))
    game.add_decision(
        ("unaware", "across_A"), player=1, moves=("across_B",), infoset="B.2"
    )
    game.add_terminal(("unaware", "across_A", "across_B"), (0.0, 0.0))
    return game.finalize()


def figure_gamma_games(p_unaware: float) -> GameWithAwareness:
    """The full Figures 1–3 game with awareness: G = {Γm, ΓA, ΓB}.

    F encodes the paper's narration:

    * when A moves in Γm, she believes the game is ΓA (infoset A.1);
    * in ΓA, A still believes ΓA;
    * the aware B (Γm's B node, and ΓA's B.1) believes the modeler's game;
    * the unaware B (ΓA's B.2 and all of ΓB) believes ΓB.
    """
    modeler = figure1_game()
    gamma_a = gamma_a_game(p_unaware)
    gamma_b = gamma_b_game()
    f_map: Dict[Tuple[str, History], FTarget] = {
        # Modeler's game: A believes Gamma_A; aware B believes modeler.
        ("modeler", ()): ("gamma_a", "A.1"),
        ("modeler", ("across_A",)): ("modeler", "B"),
        # Gamma_A: A believes Gamma_A at A.1 (both nature branches).
        ("gamma_a", ("aware",)): ("gamma_a", "A.1"),
        ("gamma_a", ("unaware",)): ("gamma_a", "A.1"),
        # Aware B believes the modeler's game; unaware B believes Gamma_B.
        ("gamma_a", ("aware", "across_A")): ("modeler", "B"),
        ("gamma_a", ("unaware", "across_A")): ("gamma_b", "B.3"),
        # Gamma_B: everyone believes Gamma_B.
        ("gamma_b", ()): ("gamma_b", "A.3"),
        ("gamma_b", ("across_A",)): ("gamma_b", "B.3"),
    }
    return GameWithAwareness(
        games={"modeler": modeler, "gamma_a": gamma_a, "gamma_b": gamma_b},
        modeler_game="modeler",
        f_map=f_map,
        name=f"Figures 1-3 (p_unaware={p_unaware})",
    )


def virtual_move_game(
    believed_virtual_payoffs: Tuple[float, float] = (0.5, 1.5),
) -> GameWithAwareness:
    """Awareness of unawareness via a virtual move.

    A knows B has some move beyond across_B but cannot conceive of it.
    A's subjective game gives B a "virtual" move whose outcome A can only
    evaluate with believed payoffs (the paper's chess-evaluation
    analogy).  The modeler's game is the true Figure 1 tree; F maps A's
    node into the subjective game.

    With the default believed payoffs, A believes the virtual move gives
    her 0.5 < 1, so A plays down_A even though the *true* extra move
    (down_B) would have given her 2.
    """
    modeler = figure1_game()
    subjective = ExtensiveFormGame(n_players=2, name="A_subjective_virtual")
    subjective.add_decision(
        (), player=0, moves=("across_A", "down_A"), infoset="A.v"
    )
    subjective.add_terminal(("down_A",), (1.0, 1.0))
    subjective.add_decision(
        ("across_A",), player=1,
        moves=("across_B", "virtual"), infoset="B.v",
    )
    subjective.add_terminal(("across_A", "across_B"), (0.0, 0.0))
    subjective.add_terminal(
        ("across_A", "virtual"), tuple(believed_virtual_payoffs)
    )
    subjective.finalize()

    # In the modeler's game, B's true moves are across_B/down_B; A's
    # subjective B has across_B/virtual.  F requires believed moves to be
    # available at the actual node, so the modeler's tree here relabels
    # down_B as the virtual move's realization: we expose the move set
    # union.  Concretely we build the modeler tree with a third move name
    # shared with the subjective game.
    true_game = ExtensiveFormGame(n_players=2, name="Figure 1 (virtual-labelled)")
    true_game.add_decision(
        (), player=0, moves=("across_A", "down_A"), infoset="A"
    )
    true_game.add_terminal(("down_A",), (1.0, 1.0))
    true_game.add_decision(
        ("across_A",), player=1,
        moves=("across_B", "virtual"), infoset="B",
    )
    true_game.add_terminal(("across_A", "across_B"), (0.0, 0.0))
    # The virtual move is *really* down_B with the true payoffs (2, 2).
    true_game.add_terminal(("across_A", "virtual"), (2.0, 2.0))
    true_game.finalize()
    del modeler

    f_map: Dict[Tuple[str, History], FTarget] = {
        ("modeler", ()): ("subjective", "A.v"),
        ("modeler", ("across_A",)): ("modeler", "B"),
        ("subjective", ()): ("subjective", "A.v"),
        ("subjective", ("across_A",)): ("subjective", "B.v"),
    }
    return GameWithAwareness(
        games={"modeler": true_game, "subjective": subjective},
        modeler_game="modeler",
        f_map=f_map,
        name="awareness-of-unawareness (virtual move)",
    )
