"""Formulas of the logic of general awareness (Fagin–Halpern 1988).

Syntax::

    φ ::= p | ¬φ | (φ ∧ ψ) | (φ ∨ ψ) | (φ → ψ)
        | K_i φ     (agent i implicitly knows φ)
        | A_i φ     (agent i is aware of φ)
        | X_i φ     (agent i explicitly knows φ; X_i φ ≡ K_i φ ∧ A_i φ)

Formulas are immutable and hashable so they can populate awareness sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Set

__all__ = [
    "Formula",
    "Prop",
    "Not",
    "And",
    "Or",
    "Implies",
    "Knows",
    "Aware",
    "ExplicitlyKnows",
    "primitive_propositions",
    "subformulas",
]


class Formula:
    """Base class; all concrete formulas are frozen dataclasses."""

    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def implies(self, other: "Formula") -> "Implies":
        return Implies(self, other)


@dataclass(frozen=True)
class Prop(Formula):
    """A primitive proposition."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Formula):
    inner: Formula

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} ∨ {self.right!r})"


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} → {self.right!r})"


@dataclass(frozen=True)
class Knows(Formula):
    """Implicit knowledge K_i: truth in all accessible states."""

    agent: int
    inner: Formula

    def __repr__(self) -> str:
        return f"K_{self.agent}{self.inner!r}"


@dataclass(frozen=True)
class Aware(Formula):
    """Awareness A_i: membership of the inner formula in i's awareness set."""

    agent: int
    inner: Formula

    def __repr__(self) -> str:
        return f"A_{self.agent}{self.inner!r}"


@dataclass(frozen=True)
class ExplicitlyKnows(Formula):
    """Explicit knowledge X_i φ ≡ K_i φ ∧ A_i φ."""

    agent: int
    inner: Formula

    def __repr__(self) -> str:
        return f"X_{self.agent}{self.inner!r}"


def primitive_propositions(formula: Formula) -> FrozenSet[str]:
    """The primitive propositions occurring in a formula."""
    out: Set[str] = set()

    def walk(f: Formula) -> None:
        if isinstance(f, Prop):
            out.add(f.name)
        elif isinstance(f, Not):
            walk(f.inner)
        elif isinstance(f, (And, Or, Implies)):
            walk(f.left)
            walk(f.right)
        elif isinstance(f, (Knows, Aware, ExplicitlyKnows)):
            walk(f.inner)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown formula {f!r}")

    walk(formula)
    return frozenset(out)


def subformulas(formula: Formula) -> Iterator[Formula]:
    """All subformulas, outermost first (including the formula itself)."""
    yield formula
    if isinstance(formula, Not):
        yield from subformulas(formula.inner)
    elif isinstance(formula, (And, Or, Implies)):
        yield from subformulas(formula.left)
        yield from subformulas(formula.right)
    elif isinstance(formula, (Knows, Aware, ExplicitlyKnows)):
        yield from subformulas(formula.inner)
