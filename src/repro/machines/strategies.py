"""Strategy zoo for repeated prisoner's dilemma (tournament substrate).

The paper cites Axelrod's tournaments, where "tit-for-tat does
exceedingly well".  This module collects the classic entrants.  All
strategies implement the :class:`repro.games.repeated.RepeatedGameStrategy`
protocol; actions are 0 = cooperate, 1 = defect.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "memory_one_spec",
    "TitForTat",
    "AlwaysCooperate",
    "AlwaysDefect",
    "GrimTrigger",
    "Pavlov",
    "RandomStrategy",
    "SuspiciousTitForTat",
    "TitForTwoTats",
    "AlternatorStrategy",
    "strategy_zoo",
]

COOPERATE = 0
DEFECT = 1


def memory_one_spec(strategy):
    """The ``(initial_action, table)`` memory-one form of a strategy.

    Deterministic strategies whose next action depends only on the last
    (own, opponent) action pair carry a ``memory_one`` class attribute:
    ``table[own][opp]`` is the follow-up action.  The batched tournament
    engine (:mod:`repro.dynamics.tournament`) plays every such pair of
    entrants as one array recurrence; strategies without the attribute
    (stateful beyond one round, or randomized) return ``None`` and play
    through the generic object path.
    """
    return getattr(strategy, "memory_one", None)


class TitForTat:
    """Cooperate first; then copy the opponent's last move (Example 3.2)."""

    name = "tit_for_tat"
    memory_one = (COOPERATE, ((COOPERATE, DEFECT), (COOPERATE, DEFECT)))

    def reset(self) -> None:
        return None

    def act(self, opponent_history: Sequence[int]) -> int:
        if not opponent_history:
            return COOPERATE
        return opponent_history[-1]


class AlwaysCooperate:
    """Unconditional cooperation."""

    name = "always_cooperate"
    memory_one = (COOPERATE, ((COOPERATE, COOPERATE), (COOPERATE, COOPERATE)))

    def reset(self) -> None:
        return None

    def act(self, opponent_history: Sequence[int]) -> int:
        return COOPERATE


class AlwaysDefect:
    """Unconditional defection — the stage-game Nash strategy."""

    name = "always_defect"
    memory_one = (DEFECT, ((DEFECT, DEFECT), (DEFECT, DEFECT)))

    def reset(self) -> None:
        return None

    def act(self, opponent_history: Sequence[int]) -> int:
        return DEFECT


class GrimTrigger:
    """Cooperate until the opponent's first defection; then defect forever."""

    name = "grim_trigger"
    memory_one = (COOPERATE, ((COOPERATE, DEFECT), (DEFECT, DEFECT)))

    def __init__(self) -> None:
        self._triggered = False

    def reset(self) -> None:
        self._triggered = False

    def act(self, opponent_history: Sequence[int]) -> int:
        if opponent_history and opponent_history[-1] == DEFECT:
            self._triggered = True
        return DEFECT if self._triggered else COOPERATE


class Pavlov:
    """Win-stay/lose-shift: repeat own move after a good outcome.

    Good outcome = the opponent cooperated.  Needs own-history tracking,
    kept internally.
    """

    name = "pavlov"
    memory_one = (COOPERATE, ((COOPERATE, DEFECT), (DEFECT, COOPERATE)))

    def __init__(self) -> None:
        self._last_own = COOPERATE

    def reset(self) -> None:
        self._last_own = COOPERATE

    def act(self, opponent_history: Sequence[int]) -> int:
        if not opponent_history:
            self._last_own = COOPERATE
            return COOPERATE
        if opponent_history[-1] == COOPERATE:
            choice = self._last_own
        else:
            choice = 1 - self._last_own
        self._last_own = choice
        return choice


class RandomStrategy:
    """Cooperate with probability ``p`` each round (seeded)."""

    def __init__(self, p_cooperate: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= p_cooperate <= 1.0:
            raise ValueError("p_cooperate must be a probability")
        self.p_cooperate = p_cooperate
        self.seed = seed
        self.name = f"random_{p_cooperate:g}"
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def act(self, opponent_history: Sequence[int]) -> int:
        return COOPERATE if self._rng.random() < self.p_cooperate else DEFECT


class SuspiciousTitForTat:
    """Defect first; then copy the opponent's last move."""

    name = "suspicious_tit_for_tat"
    memory_one = (DEFECT, ((COOPERATE, DEFECT), (COOPERATE, DEFECT)))

    def reset(self) -> None:
        return None

    def act(self, opponent_history: Sequence[int]) -> int:
        if not opponent_history:
            return DEFECT
        return opponent_history[-1]


class TitForTwoTats:
    """Defect only after two consecutive opponent defections."""

    name = "tit_for_two_tats"

    def reset(self) -> None:
        return None

    def act(self, opponent_history: Sequence[int]) -> int:
        if len(opponent_history) >= 2 and opponent_history[-1] == DEFECT and (
            opponent_history[-2] == DEFECT
        ):
            return DEFECT
        return COOPERATE


class AlternatorStrategy:
    """Cooperate and defect in alternation (a simple periodic baseline)."""

    name = "alternator"
    memory_one = (COOPERATE, ((DEFECT, DEFECT), (COOPERATE, COOPERATE)))

    def __init__(self) -> None:
        self._round = 0

    def reset(self) -> None:
        self._round = 0

    def act(self, opponent_history: Sequence[int]) -> int:
        choice = COOPERATE if self._round % 2 == 0 else DEFECT
        self._round += 1
        return choice


def strategy_zoo(seed: int = 0) -> List:
    """The default tournament lineup."""
    return [
        TitForTat(),
        AlwaysCooperate(),
        AlwaysDefect(),
        GrimTrigger(),
        Pavlov(),
        RandomStrategy(0.5, seed=seed),
        SuspiciousTitForTat(),
        TitForTwoTats(),
        AlternatorStrategy(),
    ]
