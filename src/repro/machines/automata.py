"""Finite-automaton strategies for repeated games.

Rubinstein's model: a player picks an automaton; complexity is the number
of states.  An automaton for a 2-action repeated game is

* a set of states ``0..n_states-1`` with an initial state,
* an output map ``state -> action``,
* a transition map ``(state, opponent_action) -> state``.

These implement the :class:`repro.games.repeated.RepeatedGameStrategy`
protocol (``reset``/``act``), so they can play in the repeated-game engine
and the Axelrod tournament directly, while the machine-game layer charges
them for their state counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = [
    "FiniteAutomaton",
    "tit_for_tat_automaton",
    "grim_trigger_automaton",
    "constant_automaton",
    "counting_defector",
    "all_one_state_automata",
    "all_two_state_automata",
]


@dataclass
class FiniteAutomaton:
    """A Moore machine playing a repeated game.

    ``outputs[s]`` is the action emitted in state ``s``;
    ``transitions[(s, o)]`` is the next state after observing opponent
    action ``o``.  ``n_states`` is the complexity in Rubinstein's sense.
    """

    name: str
    n_actions: int
    outputs: Tuple[int, ...]
    transitions: Dict[Tuple[int, int], int]
    initial_state: int = 0
    _state: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.outputs:
            raise ValueError("automaton needs at least one state")
        n = self.n_states
        if not 0 <= self.initial_state < n:
            raise ValueError("initial state out of range")
        for s, action in enumerate(self.outputs):
            if not 0 <= action < self.n_actions:
                raise ValueError(f"state {s} outputs invalid action {action}")
        for (s, o), target in self.transitions.items():
            if not (0 <= s < n and 0 <= o < self.n_actions and 0 <= target < n):
                raise ValueError(f"invalid transition ({s}, {o}) -> {target}")
        for s in range(n):
            for o in range(self.n_actions):
                if (s, o) not in self.transitions:
                    raise ValueError(f"missing transition for ({s}, {o})")
        self._state = self.initial_state

    @property
    def n_states(self) -> int:
        """Rubinstein complexity: the number of states."""
        return len(self.outputs)

    # -- RepeatedGameStrategy protocol --------------------------------

    def reset(self) -> None:
        self._state = self.initial_state

    def act(self, opponent_history: Sequence[int]) -> int:
        """Emit this round's action and advance on the opponent's last move.

        The engine passes the opponent's full history; the automaton only
        consumes the most recent entry (that is the point of the model).
        """
        if opponent_history:
            self._state = self.transitions[(self._state, opponent_history[-1])]
        return self.outputs[self._state]

    def clone(self) -> "FiniteAutomaton":
        return FiniteAutomaton(
            name=self.name,
            n_actions=self.n_actions,
            outputs=self.outputs,
            transitions=dict(self.transitions),
            initial_state=self.initial_state,
        )


def constant_automaton(action: int, n_actions: int = 2, name: str = "") -> FiniteAutomaton:
    """One state, always the same action (complexity 1)."""
    return FiniteAutomaton(
        name=name or f"always_{action}",
        n_actions=n_actions,
        outputs=(action,),
        transitions={(0, o): 0 for o in range(n_actions)},
    )


def tit_for_tat_automaton(n_actions: int = 2) -> FiniteAutomaton:
    """Tit-for-tat as a 2-state automaton (cooperate first; mirror after).

    State s outputs action s; observing opponent action o moves to state o.
    Complexity 2 — the "simple program which needs very little memory" of
    Example 3.2.
    """
    if n_actions != 2:
        raise ValueError("tit-for-tat automaton is defined for 2 actions")
    return FiniteAutomaton(
        name="tit_for_tat",
        n_actions=2,
        outputs=(0, 1),
        transitions={(s, o): o for s in range(2) for o in range(2)},
        initial_state=0,
    )


def grim_trigger_automaton() -> FiniteAutomaton:
    """Cooperate until the opponent defects once; defect forever after."""
    return FiniteAutomaton(
        name="grim_trigger",
        n_actions=2,
        outputs=(0, 1),
        transitions={(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1},
        initial_state=0,
    )


def counting_defector(n_rounds: int) -> FiniteAutomaton:
    """Tit-for-tat until the final round, then defect.

    The best response to tit-for-tat in an ``n_rounds`` FRPD — but it must
    *count rounds*, which costs ``n_rounds`` states (states 0..n-2 play
    tit-for-tat while counting; state n-1 defects).  This is exactly the
    machine whose memory cost Example 3.2 prices out of existence.

    Because the engine only feeds opponent actions (not round numbers),
    the automaton advances its counter on every ``act`` call regardless of
    observation; its tit-for-tat behaviour is encoded by pairing counter
    states with the mirrored action.  To keep the state count honest we
    use 2 states per round for rounds 1..n-1 (counter x last-opponent-
    action) plus a terminal defect state: ``2*(n_rounds-1) + 1`` states.
    """
    if n_rounds < 2:
        raise ValueError("counting defector needs at least 2 rounds")
    outputs: List[int] = []
    transitions: Dict[Tuple[int, int], int] = {}
    # State encoding: for round r in 0..n-2, states 2r (mirror says C) and
    # 2r+1 (mirror says D).  Final state: index 2*(n-1), always defect.
    final = 2 * (n_rounds - 1)
    for r in range(n_rounds - 1):
        outputs.extend([0, 1])
        for bit in (0, 1):
            state = 2 * r + bit
            for o in (0, 1):
                target = final if r == n_rounds - 2 else 2 * (r + 1) + o
                transitions[(state, o)] = target
    outputs.append(1)
    for o in (0, 1):
        transitions[(final, o)] = final
    return FiniteAutomaton(
        name=f"tft_defect_last_{n_rounds}",
        n_actions=2,
        outputs=tuple(outputs),
        transitions=transitions,
        initial_state=0,
    )


def all_one_state_automata(n_actions: int = 2) -> List[FiniteAutomaton]:
    """Every 1-state automaton: the constant strategies."""
    return [constant_automaton(a, n_actions) for a in range(n_actions)]


def all_two_state_automata(n_actions: int = 2) -> Iterator[FiniteAutomaton]:
    """Every 2-state automaton over a binary-action repeated game.

    ``2^2`` output maps x ``4^2`` transition maps x 2 initial states =
    512 machines (with duplicates by behaviour; callers may dedupe).
    Used by exhaustive machine-space searches in the tests.
    """
    if n_actions != 2:
        raise ValueError("enumeration implemented for 2 actions")
    states = (0, 1)
    index = 0
    for outputs in itertools.product(range(2), repeat=2):
        for transition_values in itertools.product(range(2), repeat=4):
            transitions = {
                (s, o): transition_values[2 * s + o]
                for s in states
                for o in states
            }
            for initial in states:
                yield FiniteAutomaton(
                    name=f"A2_{index}",
                    n_actions=2,
                    outputs=outputs,
                    transitions=transitions,
                    initial_state=initial,
                )
                index += 1
