"""A step-counting register VM: the library's Turing-machine stand-in.

Halpern–Pass machine games attach a complexity to each (machine, input)
pair — e.g. the running time of a Turing machine on that input.  This VM
gives the same thing concretely: programs are lists of instructions over
integer registers, and :func:`run_program` returns both the output and
the number of executed steps.  The primality program's step count grows
with the input value, which is exactly the structure Example 3.1 needs
(the cost of deciding primality grows with the length of ``x``, while
"play safe" is constant-time).

Instruction set (three-address, registers are named strings):

====  ==========================  =========================================
op    operands                    effect
====  ==========================  =========================================
LI    dst, imm                    dst <- imm
MOV   dst, src                    dst <- src
ADD   dst, a, b                   dst <- a + b
SUB   dst, a, b                   dst <- a - b
MUL   dst, a, b                   dst <- a * b
DIV   dst, a, b                   dst <- a // b  (b != 0)
MOD   dst, a, b                   dst <- a % b   (b != 0)
JMP   label                       jump
JZ    reg, label                  jump if reg == 0
JNZ   reg, label                  jump if reg != 0
JGT   a, b, label                 jump if a > b
JGE   a, b, label                 jump if a >= b
HALT  reg                         stop; output <- reg
====  ==========================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Instruction",
    "fermat_primality_program",
    "modexp_program",
    "Program",
    "VMResult",
    "VMError",
    "run_program",
    "trial_division_program",
    "constant_program",
    "miller_rabin_cost_model",
]


class VMError(RuntimeError):
    """Raised on malformed programs or runaway executions."""


@dataclass(frozen=True)
class Instruction:
    """One VM instruction; ``args`` mixes register names, ints, labels."""

    op: str
    args: Tuple[Union[str, int], ...]


class Program:
    """A labelled instruction sequence."""

    def __init__(
        self,
        instructions: Sequence[Instruction],
        labels: Dict[str, int],
        name: str = "",
    ) -> None:
        self.instructions = list(instructions)
        self.labels = dict(labels)
        self.name = name
        for label, target in self.labels.items():
            if not 0 <= target <= len(self.instructions):
                raise VMError(f"label {label!r} points outside the program")

    def __len__(self) -> int:
        return len(self.instructions)


class ProgramBuilder:
    """Tiny assembler: ``emit`` instructions, ``label`` positions."""

    def __init__(self, name: str = "") -> None:
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self.name = name

    def emit(self, op: str, *args: Union[str, int]) -> "ProgramBuilder":
        self._instructions.append(Instruction(op=op, args=tuple(args)))
        return self

    def label(self, label: str) -> "ProgramBuilder":
        if label in self._labels:
            raise VMError(f"duplicate label {label!r}")
        self._labels[label] = len(self._instructions)
        return self

    def build(self) -> Program:
        return Program(self._instructions, self._labels, name=self.name)


@dataclass
class VMResult:
    """Output value and execution cost of one run."""

    output: int
    steps: int
    halted: bool


def run_program(
    program: Program,
    inputs: Optional[Dict[str, int]] = None,
    max_steps: int = 10_000_000,
) -> VMResult:
    """Execute ``program``; registers start at 0 except ``inputs``.

    Raises :class:`VMError` on invalid opcodes/operands; exceeding
    ``max_steps`` returns ``halted=False`` with output 0 (a machine that
    "ran out of time"), which machine games may price as they see fit.
    """
    registers: Dict[str, int] = dict(inputs or {})
    pc = 0
    steps = 0

    def reg(name: Union[str, int]) -> int:
        if isinstance(name, int):
            raise VMError(f"expected register, got literal {name}")
        return registers.get(name, 0)

    def target(label: Union[str, int]) -> int:
        if not isinstance(label, str) or label not in program.labels:
            raise VMError(f"unknown label {label!r}")
        return program.labels[label]

    while pc < len(program.instructions):
        if steps >= max_steps:
            return VMResult(output=0, steps=steps, halted=False)
        instruction = program.instructions[pc]
        op, args = instruction.op, instruction.args
        steps += 1
        pc += 1
        if op == "LI":
            registers[args[0]] = int(args[1])
        elif op == "MOV":
            registers[args[0]] = reg(args[1])
        elif op in ("ADD", "SUB", "MUL", "DIV", "MOD"):
            a, b = reg(args[1]), reg(args[2])
            if op == "ADD":
                registers[args[0]] = a + b
            elif op == "SUB":
                registers[args[0]] = a - b
            elif op == "MUL":
                registers[args[0]] = a * b
            else:
                if b == 0:
                    raise VMError("division by zero")
                registers[args[0]] = a // b if op == "DIV" else a % b
        elif op == "JMP":
            pc = target(args[0])
        elif op == "JZ":
            if reg(args[0]) == 0:
                pc = target(args[1])
        elif op == "JNZ":
            if reg(args[0]) != 0:
                pc = target(args[1])
        elif op == "JGT":
            if reg(args[0]) > reg(args[1]):
                pc = target(args[2])
        elif op == "JGE":
            if reg(args[0]) >= reg(args[1]):
                pc = target(args[2])
        elif op == "HALT":
            return VMResult(output=reg(args[0]), steps=steps, halted=True)
        else:
            raise VMError(f"unknown opcode {op!r}")
    return VMResult(output=0, steps=steps, halted=True)


def trial_division_program() -> Program:
    """Primality by trial division: input register ``x``; output 1 if prime.

    Steps grow like ``O(sqrt(x))`` loop iterations — superpolynomial in
    the *bit length* of ``x``, the "expensive but correct" machine of
    Example 3.1.
    """
    b = ProgramBuilder(name="trial_division")
    # if x < 2: return 0
    b.emit("LI", "two", 2)
    b.emit("JGE", "x", "two", "ge2")
    b.emit("LI", "r", 0)
    b.emit("HALT", "r")
    b.label("ge2")
    # if x == 2: return 1
    b.emit("SUB", "d", "x", "two")
    b.emit("JNZ", "d", "gt2")
    b.emit("LI", "r", 1)
    b.emit("HALT", "r")
    b.label("gt2")
    # d = 2; while d*d <= x: if x % d == 0: return 0; d += 1
    b.emit("LI", "d", 2)
    b.label("loop")
    b.emit("MUL", "dd", "d", "d")
    b.emit("JGT", "dd", "x", "prime")
    b.emit("MOD", "m", "x", "d")
    b.emit("JZ", "m", "composite")
    b.emit("LI", "one", 1)
    b.emit("ADD", "d", "d", "one")
    b.emit("JMP", "loop")
    b.label("composite")
    b.emit("LI", "r", 0)
    b.emit("HALT", "r")
    b.label("prime")
    b.emit("LI", "r", 1)
    b.emit("HALT", "r")
    return b.build()


def constant_program(value: int, name: str = "") -> Program:
    """A machine that ignores its input and outputs ``value`` in 2 steps."""
    b = ProgramBuilder(name=name or f"const_{value}")
    b.emit("LI", "r", value)
    b.emit("HALT", "r")
    return b.build()


def miller_rabin_cost_model(x: int, rounds: int = 8) -> Tuple[bool, int]:
    """Reference primality answer plus a polynomial cost model.

    A VM implementation of Miller–Rabin would need modular exponentiation
    loops; rather than inflating the instruction set, this helper returns
    the true answer together with a step count calibrated to the VM's
    per-instruction accounting: ``rounds * bitlen(x)**2`` (one modular
    exponentiation is ``O(bitlen)`` multiplications of ``O(bitlen)``-cost
    each in this flat-cost model).  It plays the "polynomial-time tester"
    role in the Example 3.1 experiments, documented as a cost model.
    """
    if x < 2:
        return False, 4
    bits = max(1, x.bit_length())
    cost = rounds * bits * bits
    # Deterministic Miller-Rabin for the 64-bit range.
    n = x
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p, cost
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        y = pow(a, d, n)
        if y in (1, n - 1):
            continue
        for _ in range(r - 1):
            y = y * y % n
            if y == n - 1:
                break
        else:
            return False, cost
    return True, cost


def modexp_program() -> Program:
    """Square-and-multiply modular exponentiation.

    Inputs: registers ``b`` (base), ``e`` (exponent), ``m`` (modulus > 1).
    Output: ``b**e mod m``.  Steps are ``O(log e)`` loop iterations — the
    polynomial-time primitive a real Miller–Rabin VM machine needs.
    """
    p = ProgramBuilder(name="modexp")
    p.emit("LI", "r", 1)
    p.emit("LI", "two", 2)
    p.emit("MOD", "b", "b", "m")
    p.label("loop")
    p.emit("JZ", "e", "done")
    p.emit("MOD", "bit", "e", "two")
    p.emit("JZ", "bit", "even")
    p.emit("MUL", "r", "r", "b")
    p.emit("MOD", "r", "r", "m")
    p.label("even")
    p.emit("MUL", "b", "b", "b")
    p.emit("MOD", "b", "b", "m")
    p.emit("DIV", "e", "e", "two")
    p.emit("JMP", "loop")
    p.label("done")
    p.emit("HALT", "r")
    return p.build()


def fermat_primality_program(witnesses: Tuple[int, ...] = (2, 3, 5)) -> Program:
    """Fermat primality test with fixed witnesses, fully in the VM.

    Input: register ``x``.  Output: 1 if ``a**(x-1) ≡ 1 (mod x)`` for
    every witness ``a`` (and small-case handling), else 0.  Runs in
    ``O(len(witnesses) * log x)`` loop iterations — genuinely polynomial
    in the bit length, in contrast to trial division's ``O(sqrt x)``.

    Caveat (documented): Fermat is fooled by Carmichael numbers coprime
    to all witnesses; the experiment inputs avoid them, and
    :func:`miller_rabin_cost_model` remains the reference answer.
    """
    p = ProgramBuilder(name="fermat")
    p.emit("LI", "two", 2)
    # x < 2 -> composite; x == 2 -> prime; even -> composite.
    p.emit("JGE", "x", "two", "ge2")
    p.emit("LI", "out", 0)
    p.emit("HALT", "out")
    p.label("ge2")
    p.emit("SUB", "d", "x", "two")
    p.emit("JNZ", "d", "gt2")
    p.emit("LI", "out", 1)
    p.emit("HALT", "out")
    p.label("gt2")
    p.emit("MOD", "par", "x", "two")
    p.emit("JZ", "par", "composite")
    for idx, witness in enumerate(witnesses):
        # Skip the witness test when witness >= x (e.g. x == 3, 5).
        p.emit("LI", "w", int(witness))
        p.emit("JGE", "w", "x", f"skip{idx}")
        # Inline modexp: r = w^(x-1) mod x.
        p.emit("LI", "r", 1)
        p.emit("MOD", "b", "w", "x")
        p.emit("LI", "one", 1)
        p.emit("SUB", "e", "x", "one")
        p.label(f"loop{idx}")
        p.emit("JZ", "e", f"done{idx}")
        p.emit("MOD", "bit", "e", "two")
        p.emit("JZ", "bit", f"even{idx}")
        p.emit("MUL", "r", "r", "b")
        p.emit("MOD", "r", "r", "x")
        p.label(f"even{idx}")
        p.emit("MUL", "b", "b", "b")
        p.emit("MOD", "b", "b", "x")
        p.emit("DIV", "e", "e", "two")
        p.emit("JMP", f"loop{idx}")
        p.label(f"done{idx}")
        p.emit("LI", "one", 1)
        p.emit("SUB", "chk", "r", "one")
        p.emit("JNZ", "chk", "composite")
        p.label(f"skip{idx}")
    p.emit("LI", "out", 1)
    p.emit("HALT", "out")
    p.label("composite")
    p.emit("LI", "out", 0)
    p.emit("HALT", "out")
    return p.build()
