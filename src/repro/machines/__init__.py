"""Machine strategies and complexity measures (Section 3 substrate).

Halpern–Pass machine games need machines with an explicit complexity on
each (machine, input) pair.  We provide two machine families:

* :mod:`repro.machines.automata` — finite-state automata for repeated
  games, with state-count complexity (Rubinstein's model, used by the
  FRPD analysis).
* :mod:`repro.machines.vm` — a step-counting register VM (the
  Turing-machine stand-in), with programs for primality testing; the
  step count scales with input length exactly as the paper's
  Example 3.1 needs.
* :mod:`repro.machines.strategies` — the strategy zoo for repeated-game
  play and tournaments (tit-for-tat and friends).
"""

from repro.machines.automata import (
    FiniteAutomaton,
    all_one_state_automata,
    all_two_state_automata,
    counting_defector,
    grim_trigger_automaton,
    tit_for_tat_automaton,
)
from repro.machines.vm import (
    Instruction,
    Program,
    VMResult,
    miller_rabin_cost_model,
    run_program,
    trial_division_program,
)
from repro.machines.strategies import (
    AlternatorStrategy,
    AlwaysCooperate,
    AlwaysDefect,
    GrimTrigger,
    Pavlov,
    RandomStrategy,
    SuspiciousTitForTat,
    TitForTat,
    TitForTwoTats,
    memory_one_spec,
    strategy_zoo,
)

__all__ = [
    "AlternatorStrategy",
    "AlwaysCooperate",
    "AlwaysDefect",
    "FiniteAutomaton",
    "GrimTrigger",
    "Instruction",
    "Pavlov",
    "Program",
    "RandomStrategy",
    "SuspiciousTitForTat",
    "TitForTat",
    "TitForTwoTats",
    "VMResult",
    "all_one_state_automata",
    "all_two_state_automata",
    "counting_defector",
    "grim_trigger_automaton",
    "miller_rabin_cost_model",
    "run_program",
    "memory_one_spec",
    "strategy_zoo",
    "tit_for_tat_automaton",
    "trial_division_program",
]
