"""Game representations: normal-form, Bayesian, extensive-form, repeated.

These are the substrate every solution concept in the paper is defined over.
"""

from repro.games.normal_form import MixedProfile, NormalFormGame, PureProfile
from repro.games.bayesian import BayesianGame, TypeProfile
from repro.games.extensive import (
    ChanceNode,
    DecisionNode,
    ExtensiveFormGame,
    InformationSet,
    TerminalNode,
)
from repro.games.repeated import RepeatedGame

__all__ = [
    "BayesianGame",
    "ChanceNode",
    "DecisionNode",
    "ExtensiveFormGame",
    "InformationSet",
    "MixedProfile",
    "NormalFormGame",
    "PureProfile",
    "RepeatedGame",
    "TerminalNode",
    "TypeProfile",
]
