"""Finitely repeated games with discounting.

Section 3 of the paper analyzes finitely repeated prisoner's dilemma (FRPD)
with a per-round discount factor ``delta``: a reward ``r_m`` in round ``m``
(1-indexed) contributes ``delta**m * r_m`` to the total.  This module
provides the repeated-game engine used by both the tournament code
(`repro.dynamics`) and the computational-equilibrium analysis
(`repro.core.computational`).

Strategies are objects with ``reset()`` and ``act(history) -> action`` where
``history`` is the list of past opponent actions (each player sees only the
opponent's past moves, which suffices for all strategies in the paper).
Richer strategies that need their own past moves can track them internally.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.games.normal_form import NormalFormGame

__all__ = [
    "RepeatedGameStrategy",
    "FunctionStrategy",
    "RepeatedGame",
    "PlayResult",
    "discounted_total",
]


class RepeatedGameStrategy(Protocol):
    """Protocol for repeated-game strategies."""

    def reset(self) -> None:
        """Prepare for a fresh match."""

    def act(self, opponent_history: Sequence[int]) -> int:
        """Choose this round's action given the opponent's past actions."""


@dataclass
class FunctionStrategy:
    """Wrap ``fn(opponent_history) -> action`` as a strategy.

    Stateless by construction; ``reset`` is a no-op.
    """

    fn: Callable[[Sequence[int]], int]
    name: str = "function"

    def reset(self) -> None:
        return None

    def act(self, opponent_history: Sequence[int]) -> int:
        return int(self.fn(opponent_history))


def discounted_total(rewards: Sequence[float], delta: float) -> float:
    """Sum ``delta**m * r_m`` with rounds 1-indexed, as in the paper."""
    return float(
        sum(delta ** (m + 1) * r for m, r in enumerate(rewards))
    )


@dataclass
class PlayResult:
    """Outcome of one repeated-game match."""

    actions: List[Tuple[int, ...]]
    stage_payoffs: List[np.ndarray]
    totals: np.ndarray
    discounted: np.ndarray


class RepeatedGame:
    """A stage game repeated ``rounds`` times with discount factor ``delta``.

    Only 2-player stage games are supported for play (the paper's repeated
    examples are all 2-player), though the stage game object itself may be
    any :class:`NormalFormGame`.
    """

    def __init__(
        self, stage: NormalFormGame, rounds: int, delta: float = 1.0
    ) -> None:
        if stage.n_players != 2:
            raise ValueError("RepeatedGame play supports 2-player stage games")
        if rounds < 1:
            raise ValueError("need at least one round")
        if not 0.0 < delta <= 1.0:
            raise ValueError("delta must lie in (0, 1]")
        self.stage = stage
        self.rounds = rounds
        self.delta = delta

    def play(
        self,
        strategy_a: RepeatedGameStrategy,
        strategy_b: RepeatedGameStrategy,
    ) -> PlayResult:
        """Run one match and return per-round and aggregate payoffs.

        Passing the same object for both seats plays it against an
        independent deep copy of itself (the Axelrod self-play twin) —
        otherwise stateful strategies would leak one seat's internal
        state into the other's decisions mid-round.
        """
        if strategy_a is strategy_b:
            strategy_b = copy.deepcopy(strategy_b)
        strategy_a.reset()
        strategy_b.reset()
        history_a: List[int] = []  # actions taken by A
        history_b: List[int] = []  # actions taken by B
        actions: List[Tuple[int, ...]] = []
        stage_payoffs: List[np.ndarray] = []
        for _ in range(self.rounds):
            a = int(strategy_a.act(history_b))
            b = int(strategy_b.act(history_a))
            self._check_action(0, a)
            self._check_action(1, b)
            actions.append((a, b))
            stage_payoffs.append(self.stage.payoff_vector((a, b)))
            history_a.append(a)
            history_b.append(b)
        totals = np.sum(stage_payoffs, axis=0)
        discounted = np.array(
            [
                discounted_total([p[i] for p in stage_payoffs], self.delta)
                for i in range(2)
            ]
        )
        return PlayResult(
            actions=actions,
            stage_payoffs=stage_payoffs,
            totals=np.asarray(totals, dtype=float),
            discounted=discounted,
        )

    def discounted_payoffs(
        self,
        strategy_a: RepeatedGameStrategy,
        strategy_b: RepeatedGameStrategy,
    ) -> np.ndarray:
        """Convenience wrapper: just the discounted totals of one match."""
        return self.play(strategy_a, strategy_b).discounted

    def _check_action(self, player: int, action: int) -> None:
        if not 0 <= action < self.stage.num_actions[player]:
            raise ValueError(
                f"player {player} chose action {action} outside "
                f"0..{self.stage.num_actions[player] - 1}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RepeatedGame: {self.rounds} rounds of "
            f"{self.stage.name or 'stage game'}, delta={self.delta}>"
        )
