"""Finite extensive-form games with chance moves and information sets.

This is the substrate for Section 4 of the paper (games with awareness):
an extensive game is a tree whose internal nodes are either chance nodes or
decision nodes owned by a player, decision nodes are partitioned into
information sets, and leaves carry payoff vectors.

Histories are tuples of move labels from the root; they double as node
identifiers, matching the paper's use of "history" and "node"
interchangeably.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.games.normal_form import NormalFormGame

__all__ = [
    "History",
    "TerminalNode",
    "DecisionNode",
    "ChanceNode",
    "InformationSet",
    "ExtensiveFormGame",
    "BehavioralStrategy",
]

History = Tuple[str, ...]

# A behavioral strategy maps information-set ids to distributions over the
# moves available there: {infoset_id: {move_label: probability}}.
BehavioralStrategy = Dict[str, Dict[str, float]]


@dataclass
class TerminalNode:
    """A leaf of the game tree carrying one payoff per player."""

    history: History
    payoffs: Tuple[float, ...]


@dataclass
class DecisionNode:
    """An internal node where ``player`` chooses among ``moves``."""

    history: History
    player: int
    moves: Tuple[str, ...]
    infoset: str


@dataclass
class ChanceNode:
    """An internal node where nature moves according to ``distribution``."""

    history: History
    distribution: Dict[str, float]

    @property
    def moves(self) -> Tuple[str, ...]:
        return tuple(self.distribution.keys())


@dataclass
class InformationSet:
    """A player's information set: histories the player cannot distinguish."""

    label: str
    player: int
    histories: Tuple[History, ...]
    moves: Tuple[str, ...]


class ExtensiveFormGame:
    """A finite extensive-form game built incrementally.

    Typical construction::

        game = ExtensiveFormGame(n_players=2, name="Figure 1")
        game.add_decision((), player=0, moves=("across_A", "down_A"))
        game.add_terminal(("down_A",), (1.0, 1.0))
        game.add_decision(("across_A",), player=1, moves=("across_B", "down_B"))
        game.add_terminal(("across_A", "across_B"), (0.0, 2.0))
        game.add_terminal(("across_A", "down_B"), (3.0, 1.0))
        game.finalize()

    ``finalize`` checks tree integrity (every declared move leads to an
    added node, information-set move consistency, payoff arity).
    """

    def __init__(self, n_players: int, name: str = "") -> None:
        if n_players < 1:
            raise ValueError("need at least one player")
        self.n_players = n_players
        self.name = name
        self.nodes: Dict[History, object] = {}
        self._infoset_members: Dict[str, List[History]] = {}
        self._infoset_player: Dict[str, int] = {}
        self._infoset_moves: Dict[str, Tuple[str, ...]] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_decision(
        self,
        history: Sequence[str],
        player: int,
        moves: Sequence[str],
        infoset: Optional[str] = None,
    ) -> DecisionNode:
        """Add a decision node; ``infoset`` defaults to a singleton set."""
        self._check_mutable()
        h = tuple(history)
        if h in self.nodes:
            raise ValueError(f"duplicate history {h}")
        if not 0 <= player < self.n_players:
            raise ValueError(f"player {player} out of range")
        if len(moves) == 0:
            raise ValueError("decision node needs at least one move")
        if len(set(moves)) != len(moves):
            raise ValueError("duplicate move labels at a node")
        if infoset is not None:
            label = infoset
        else:
            label = "I:" + "/".join(h) if h else "I:root"
        moves_t = tuple(moves)
        if label in self._infoset_moves:
            if self._infoset_moves[label] != moves_t:
                raise ValueError(
                    f"infoset {label!r} already has moves "
                    f"{self._infoset_moves[label]}, got {moves_t}"
                )
            if self._infoset_player[label] != player:
                raise ValueError(f"infoset {label!r} owned by another player")
        else:
            self._infoset_moves[label] = moves_t
            self._infoset_player[label] = player
            self._infoset_members[label] = []
        self._infoset_members[label].append(h)
        node = DecisionNode(history=h, player=player, moves=moves_t, infoset=label)
        self.nodes[h] = node
        return node

    def add_chance(
        self, history: Sequence[str], distribution: Mapping[str, float]
    ) -> ChanceNode:
        """Add a chance node with the given move distribution."""
        self._check_mutable()
        h = tuple(history)
        if h in self.nodes:
            raise ValueError(f"duplicate history {h}")
        dist = {str(k): float(v) for k, v in distribution.items()}
        if not dist:
            raise ValueError("chance node needs at least one branch")
        if any(v < 0 for v in dist.values()) or abs(sum(dist.values()) - 1.0) > 1e-9:
            raise ValueError("chance distribution must be a probability distribution")
        node = ChanceNode(history=h, distribution=dist)
        self.nodes[h] = node
        return node

    def add_terminal(
        self, history: Sequence[str], payoffs: Sequence[float]
    ) -> TerminalNode:
        """Add a leaf with one payoff per player."""
        self._check_mutable()
        h = tuple(history)
        if h in self.nodes:
            raise ValueError(f"duplicate history {h}")
        if len(payoffs) != self.n_players:
            raise ValueError(
                f"payoff vector has {len(payoffs)} entries for "
                f"{self.n_players} players"
            )
        node = TerminalNode(history=h, payoffs=tuple(float(p) for p in payoffs))
        self.nodes[h] = node
        return node

    def finalize(self) -> "ExtensiveFormGame":
        """Validate tree integrity; the game becomes immutable afterwards."""
        if () not in self.nodes:
            raise ValueError("game has no root (empty-history node)")
        for h, node in self.nodes.items():
            if isinstance(node, TerminalNode):
                continue
            for move in node.moves:
                child = h + (move,)
                if child not in self.nodes:
                    raise ValueError(f"move {move!r} at {h} leads nowhere")
        for h in self.nodes:
            if h and h[:-1] not in self.nodes:
                raise ValueError(f"history {h} has no parent node")
            if h:
                parent = self.nodes[h[:-1]]
                if isinstance(parent, TerminalNode):
                    raise ValueError(f"history {h} extends a terminal node")
                if h[-1] not in parent.moves:
                    raise ValueError(f"history {h} uses an undeclared move")
        self._finalized = True
        return self

    def _check_mutable(self) -> None:
        if self._finalized:
            raise RuntimeError("game is finalized; build a new one instead")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def root(self) -> object:
        return self.nodes[()]

    def information_sets(self, player: Optional[int] = None) -> List[InformationSet]:
        """All information sets, optionally filtered by owner."""
        out = []
        for label, members in self._infoset_members.items():
            owner = self._infoset_player[label]
            if player is not None and owner != player:
                continue
            out.append(
                InformationSet(
                    label=label,
                    player=owner,
                    histories=tuple(members),
                    moves=self._infoset_moves[label],
                )
            )
        return out

    def infoset_of(self, history: Sequence[str]) -> InformationSet:
        node = self.nodes[tuple(history)]
        if not isinstance(node, DecisionNode):
            raise ValueError(f"{history} is not a decision node")
        return next(
            info
            for info in self.information_sets()
            if info.label == node.infoset
        )

    def terminal_histories(self) -> List[History]:
        return [
            h for h, node in self.nodes.items() if isinstance(node, TerminalNode)
        ]

    def all_histories(self) -> List[History]:
        return list(self.nodes.keys())

    def has_perfect_information(self) -> bool:
        """True if every information set is a singleton."""
        return all(len(m) == 1 for m in self._infoset_members.values())

    def max_depth(self) -> int:
        return max(len(h) for h in self.nodes)

    # ------------------------------------------------------------------
    # Strategies and evaluation
    # ------------------------------------------------------------------

    def pure_strategies(self, player: int) -> Iterator[Dict[str, str]]:
        """All pure strategies of ``player``: move choices at each infoset."""
        infosets = self.information_sets(player)
        labels = [info.label for info in infosets]
        move_lists = [info.moves for info in infosets]
        for combo in itertools.product(*move_lists):
            yield dict(zip(labels, combo))

    def behavioral_from_pure(self, player: int, pure: Mapping[str, str]) -> BehavioralStrategy:
        """Represent a pure strategy as a degenerate behavioral strategy."""
        out: BehavioralStrategy = {}
        for info in self.information_sets(player):
            choice = pure[info.label]
            if choice not in info.moves:
                raise ValueError(f"{choice!r} is not a move at {info.label!r}")
            out[info.label] = {m: 1.0 if m == choice else 0.0 for m in info.moves}
        return out

    def uniform_behavioral(self, player: int) -> BehavioralStrategy:
        """The behavioral strategy mixing uniformly at every infoset."""
        out: BehavioralStrategy = {}
        for info in self.information_sets(player):
            p = 1.0 / len(info.moves)
            out[info.label] = {m: p for m in info.moves}
        return out

    def validate_behavioral(self, player: int, strategy: BehavioralStrategy) -> None:
        for info in self.information_sets(player):
            if info.label not in strategy:
                raise ValueError(f"strategy missing infoset {info.label!r}")
            dist = strategy[info.label]
            if set(dist) != set(info.moves):
                raise ValueError(
                    f"strategy at {info.label!r} must cover moves {info.moves}"
                )
            total = sum(dist.values())
            if any(v < -1e-9 for v in dist.values()) or abs(total - 1.0) > 1e-6:
                raise ValueError(f"strategy at {info.label!r} is not a distribution")

    def outcome_distribution(
        self, profile: Sequence[BehavioralStrategy]
    ) -> Dict[History, float]:
        """Distribution over terminal histories induced by a behavioral profile."""
        if len(profile) != self.n_players:
            raise ValueError("need one behavioral strategy per player")
        reach: Dict[History, float] = {(): 1.0}
        outcome: Dict[History, float] = {}
        stack: List[History] = [()]
        while stack:
            h = stack.pop()
            p = reach[h]
            node = self.nodes[h]
            if isinstance(node, TerminalNode):
                outcome[h] = outcome.get(h, 0.0) + p
                continue
            if isinstance(node, ChanceNode):
                for move, q in node.distribution.items():
                    child = h + (move,)
                    reach[child] = p * q
                    if q > 0.0:
                        stack.append(child)
                continue
            dist = profile[node.player].get(node.infoset)
            if dist is None:
                raise ValueError(
                    f"player {node.player} strategy missing infoset "
                    f"{node.infoset!r}"
                )
            for move in node.moves:
                q = float(dist.get(move, 0.0))
                child = h + (move,)
                reach[child] = p * q
                if q > 0.0:
                    stack.append(child)
        return outcome

    def expected_payoffs(self, profile: Sequence[BehavioralStrategy]) -> np.ndarray:
        """Expected payoff vector under a behavioral profile."""
        totals = np.zeros(self.n_players)
        for h, p in self.outcome_distribution(profile).items():
            node = self.nodes[h]
            assert isinstance(node, TerminalNode)
            totals += p * np.asarray(node.payoffs)
        return totals

    def expected_payoff(
        self, player: int, profile: Sequence[BehavioralStrategy]
    ) -> float:
        return float(self.expected_payoffs(profile)[player])

    # ------------------------------------------------------------------
    # Equilibrium helpers
    # ------------------------------------------------------------------

    def best_response_value(
        self, player: int, profile: Sequence[BehavioralStrategy]
    ) -> float:
        """Value of ``player``'s best pure strategy against ``profile``.

        Exhaustive over the player's pure strategies (fine for the small
        trees the paper uses; the awareness solver relies on this).
        """
        best = -np.inf
        for pure in self.pure_strategies(player):
            candidate = list(profile)
            candidate[player] = self.behavioral_from_pure(player, pure)
            best = max(best, self.expected_payoff(player, candidate))
        return best

    def regret(self, player: int, profile: Sequence[BehavioralStrategy]) -> float:
        return self.best_response_value(player, profile) - self.expected_payoff(
            player, profile
        )

    def is_nash(
        self, profile: Sequence[BehavioralStrategy], tol: float = 1e-9
    ) -> bool:
        """Is the behavioral profile an ε-Nash equilibrium of the tree game?"""
        for i in range(self.n_players):
            self.validate_behavioral(i, profile[i])
        return all(self.regret(i, profile) <= tol for i in range(self.n_players))

    def backward_induction(self) -> Tuple[List[BehavioralStrategy], np.ndarray]:
        """Subgame-perfect equilibrium by backward induction.

        Requires perfect information.  Ties are broken toward the
        lexicographically first move.  Returns (profile, root value vector).
        """
        if not self.has_perfect_information():
            raise ValueError("backward induction requires perfect information")
        profile: List[BehavioralStrategy] = [dict() for _ in range(self.n_players)]
        values: Dict[History, np.ndarray] = {}

        for h in sorted(self.nodes, key=len, reverse=True):
            node = self.nodes[h]
            if isinstance(node, TerminalNode):
                values[h] = np.asarray(node.payoffs, dtype=float)
            elif isinstance(node, ChanceNode):
                total = np.zeros(self.n_players)
                for move, q in node.distribution.items():
                    total += q * values[h + (move,)]
                values[h] = total
            else:
                best_move = max(
                    node.moves, key=lambda m: values[h + (m,)][node.player]
                )
                profile[node.player][node.infoset] = {
                    m: 1.0 if m == best_move else 0.0 for m in node.moves
                }
                values[h] = values[h + (best_move,)]
        return profile, values[()]

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------

    def to_normal_form(self) -> Tuple[NormalFormGame, List[List[Dict[str, str]]]]:
        """The induced normal form over pure strategies.

        Returns the game plus, per player, the pure-strategy list indexing
        the normal-form actions.
        """
        strategy_lists = [
            list(self.pure_strategies(i)) for i in range(self.n_players)
        ]
        shape = (self.n_players, *(len(s) for s in strategy_lists))
        tensor = np.zeros(shape)
        for combo in itertools.product(*(range(len(s)) for s in strategy_lists)):
            profile = [
                self.behavioral_from_pure(i, strategy_lists[i][combo[i]])
                for i in range(self.n_players)
            ]
            payoffs = self.expected_payoffs(profile)
            for i in range(self.n_players):
                tensor[(i, *combo)] = payoffs[i]
        labels = [
            [
                ",".join(f"{k}={v}" for k, v in sorted(strat.items())) or "·"
                for strat in strategy_lists[i]
            ]
            for i in range(self.n_players)
        ]
        game = NormalFormGame(
            tensor,
            action_labels=labels,
            name=(self.name + " (normal form)") if self.name else "normal form",
        )
        return game, strategy_lists

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "ExtensiveFormGame"
        return (
            f"<{label}: {self.n_players} players, {len(self.nodes)} nodes, "
            f"{len(self.terminal_histories())} outcomes>"
        )
