"""Finite Bayesian (incomplete-information) games.

The paper's Section 2 results are stated for normal-form Bayesian games:
each player ``i`` draws a type ``t_i`` from a finite type space with a
commonly known prior, then chooses an action (possibly depending on the
type); utilities depend on the full type profile and the action profile.

A *strategy* for player ``i`` is a map from types to (mixed) actions,
represented as a ``(|T_i|, |A_i|)`` row-stochastic matrix.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.games.normal_form import NormalFormGame, is_distribution

__all__ = ["TypeProfile", "BayesianStrategy", "BayesianGame"]

TypeProfile = Tuple[int, ...]
BayesianStrategy = np.ndarray  # shape (num_types, num_actions), row-stochastic


class BayesianGame:
    """A finite normal-form Bayesian game.

    Parameters
    ----------
    num_types:
        ``num_types[i]`` is the number of types of player ``i``.
    num_actions:
        ``num_actions[i]`` is the number of actions of player ``i``.
    prior:
        Array of shape ``num_types`` giving the joint distribution over
        type profiles.  Must sum to one.
    payoff_fn:
        Callable ``payoff_fn(types, actions) -> sequence of n utilities``.
        Evaluated once per (type profile, action profile) at construction.
    """

    def __init__(
        self,
        num_types: Sequence[int],
        num_actions: Sequence[int],
        prior: np.ndarray,
        payoff_fn,
        players: Optional[Sequence[str]] = None,
        name: str = "",
    ) -> None:
        self.num_types: Tuple[int, ...] = tuple(int(m) for m in num_types)
        self.num_actions: Tuple[int, ...] = tuple(int(m) for m in num_actions)
        if len(self.num_types) != len(self.num_actions):
            raise ValueError("num_types and num_actions must have the same length")
        self.n_players = len(self.num_types)
        prior_arr = np.asarray(prior, dtype=float)
        if prior_arr.shape != self.num_types:
            raise ValueError(
                f"prior shape {prior_arr.shape} != type-space shape {self.num_types}"
            )
        if np.any(prior_arr < -1e-12) or abs(prior_arr.sum() - 1.0) > 1e-9:
            raise ValueError("prior must be a probability distribution")
        self.prior = np.clip(prior_arr, 0.0, None)
        self.prior /= self.prior.sum()
        self.name = name
        self.players = (
            list(players)
            if players is not None
            else [f"P{i}" for i in range(self.n_players)]
        )

        # Payoff table: shape (n, *num_types, *num_actions)
        table = np.zeros((self.n_players, *self.num_types, *self.num_actions))
        for types in itertools.product(*(range(m) for m in self.num_types)):
            for actions in itertools.product(*(range(m) for m in self.num_actions)):
                values = payoff_fn(types, actions)
                for i in range(self.n_players):
                    table[(i, *types, *actions)] = values[i]
        self.payoff_table = table

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------

    def pure_strategy(self, player: int, action_of_type: Sequence[int]) -> np.ndarray:
        """The deterministic strategy mapping type ``k`` to ``action_of_type[k]``."""
        if len(action_of_type) != self.num_types[player]:
            raise ValueError("need one action per type")
        strat = np.zeros((self.num_types[player], self.num_actions[player]))
        for t, a in enumerate(action_of_type):
            strat[t, a] = 1.0
        return strat

    def uniform_strategy(self, player: int) -> np.ndarray:
        """The strategy mixing uniformly at every type."""
        m = self.num_actions[player]
        return np.full((self.num_types[player], m), 1.0 / m)

    def validate_strategy(self, player: int, strategy: np.ndarray) -> None:
        """Raise unless ``strategy`` is a row-stochastic type->action matrix."""
        arr = np.asarray(strategy, dtype=float)
        expected = (self.num_types[player], self.num_actions[player])
        if arr.shape != expected:
            raise ValueError(
                f"player {player} strategy has shape {arr.shape}, expected {expected}"
            )
        for t in range(arr.shape[0]):
            if not is_distribution(arr[t], tol=1e-6):
                raise ValueError(
                    f"player {player} strategy row {t} is not a distribution"
                )

    def validate_profile(self, profile: Sequence[np.ndarray]) -> None:
        if len(profile) != self.n_players:
            raise ValueError("wrong number of strategies in profile")
        for i, strat in enumerate(profile):
            self.validate_strategy(i, strat)

    def pure_strategy_space(self, player: int) -> Iterator[Tuple[int, ...]]:
        """All deterministic type->action maps of a player."""
        return itertools.product(
            range(self.num_actions[player]), repeat=self.num_types[player]
        )

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------

    def type_profiles(self) -> Iterator[TypeProfile]:
        return itertools.product(*(range(m) for m in self.num_types))

    def conditional_prior(self, player: int, own_type: int) -> np.ndarray:
        """Distribution over opponents' type profiles given ``player``'s type.

        Returned with shape ``num_types`` but with mass only where
        ``types[player] == own_type`` (kept full-shape for easy contraction).
        """
        mask = np.zeros(self.num_types)
        index = [slice(None)] * self.n_players
        index[player] = own_type
        mask[tuple(index)] = 1.0
        joint = self.prior * mask
        total = joint.sum()
        if total <= 0.0:
            raise ValueError(
                f"player {player} type {own_type} has prior probability zero"
            )
        return joint / total

    def expected_payoff_given_types(
        self, player: int, types: TypeProfile, profile: Sequence[np.ndarray]
    ) -> float:
        """Expected utility of ``player`` when the realized types are ``types``."""
        tensor = self.payoff_table[(player, *types)]
        for j in range(self.n_players):
            vec = np.asarray(profile[j][types[j]], dtype=float)
            tensor = np.tensordot(vec, tensor, axes=(0, 0))
        return float(tensor)

    def ex_ante_payoff(self, player: int, profile: Sequence[np.ndarray]) -> float:
        """Expected utility of ``player`` before types are drawn."""
        total = 0.0
        for types in self.type_profiles():
            p = float(self.prior[types])
            if p == 0.0:
                continue
            total += p * self.expected_payoff_given_types(player, types, profile)
        return total

    def ex_ante_payoffs(self, profile: Sequence[np.ndarray]) -> np.ndarray:
        return np.array(
            [self.ex_ante_payoff(i, profile) for i in range(self.n_players)]
        )

    def interim_payoff(
        self, player: int, own_type: int, profile: Sequence[np.ndarray]
    ) -> float:
        """Expected utility of ``player`` conditioned on their own type."""
        cond = self.conditional_prior(player, own_type)
        total = 0.0
        for types in self.type_profiles():
            p = float(cond[types])
            if p == 0.0:
                continue
            total += p * self.expected_payoff_given_types(player, types, profile)
        return total

    # ------------------------------------------------------------------
    # Equilibrium
    # ------------------------------------------------------------------

    def best_response_values(
        self, player: int, profile: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Per-type best-response values for ``player`` against ``profile``.

        Returns an array of shape ``(num_types[player],)`` whose entry ``t``
        is the highest interim utility type ``t`` can achieve with any
        (pure, hence also mixed) action.
        """
        values = np.full(self.num_types[player], -np.inf)
        for own_type in range(self.num_types[player]):
            if self.type_probability(player, own_type) == 0.0:
                values[own_type] = 0.0
                continue
            cond = self.conditional_prior(player, own_type)
            action_values = np.zeros(self.num_actions[player])
            for types in self.type_profiles():
                p = float(cond[types])
                if p == 0.0:
                    continue
                tensor = self.payoff_table[(player, *types)]
                for j in range(self.n_players - 1, -1, -1):
                    if j == player:
                        continue
                    vec = np.asarray(profile[j][types[j]], dtype=float)
                    tensor = np.tensordot(tensor, vec, axes=(j, 0))
                action_values += p * np.asarray(tensor, dtype=float)
            values[own_type] = action_values.max()
        return values

    def type_probability(self, player: int, own_type: int) -> float:
        """Marginal prior probability of ``player`` having type ``own_type``."""
        axes = tuple(j for j in range(self.n_players) if j != player)
        marg = self.prior.sum(axis=axes) if axes else self.prior
        return float(marg[own_type])

    def interim_regret(self, player: int, profile: Sequence[np.ndarray]) -> float:
        """Max over types of the gain from deviating at that type."""
        worst = 0.0
        for own_type in range(self.num_types[player]):
            if self.type_probability(player, own_type) == 0.0:
                continue
            best = self.best_response_values(player, profile)[own_type]
            have = self.interim_payoff(player, own_type, profile)
            worst = max(worst, best - have)
        return worst

    def is_bayes_nash(
        self, profile: Sequence[np.ndarray], tol: float = 1e-6
    ) -> bool:
        """Check interim (hence ex-ante) ε-Bayes-Nash equilibrium."""
        self.validate_profile(profile)
        return all(
            self.interim_regret(i, profile) <= tol for i in range(self.n_players)
        )

    def pure_bayes_nash_equilibria(
        self, tol: float = 1e-9
    ) -> List[Tuple[Tuple[int, ...], ...]]:
        """Enumerate pure Bayes-Nash equilibria (maps from types to actions).

        Exponential in the number of types; intended for the small games the
        paper discusses.
        """
        spaces = [list(self.pure_strategy_space(i)) for i in range(self.n_players)]
        out = []
        for combo in itertools.product(*spaces):
            profile = [
                self.pure_strategy(i, combo[i]) for i in range(self.n_players)
            ]
            if self.is_bayes_nash(profile, tol=tol):
                out.append(combo)
        return out

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def agent_form(self) -> NormalFormGame:
        """The induced one-shot game over pure type->action strategies.

        Player ``i``'s actions in the agent form are the deterministic maps
        from their types to actions; payoffs are ex-ante expectations.
        Useful for handing Bayesian games to normal-form solvers.
        """
        spaces = [list(self.pure_strategy_space(i)) for i in range(self.n_players)]
        shape = (self.n_players, *(len(s) for s in spaces))
        tensor = np.zeros(shape)
        for combo_idx in itertools.product(*(range(len(s)) for s in spaces)):
            profile = [
                self.pure_strategy(i, spaces[i][combo_idx[i]])
                for i in range(self.n_players)
            ]
            values = self.ex_ante_payoffs(profile)
            for i in range(self.n_players):
                tensor[(i, *combo_idx)] = values[i]
        labels = [
            ["".join(str(a) for a in strat) for strat in spaces[i]]
            for i in range(self.n_players)
        ]
        return NormalFormGame(
            tensor,
            players=self.players,
            action_labels=labels,
            name=(self.name + " (agent form)") if self.name else "agent form",
        )

    @classmethod
    def from_normal_form(cls, game: NormalFormGame) -> "BayesianGame":
        """Embed a complete-information game as a 1-type-per-player Bayesian game."""
        prior = np.ones((1,) * game.n_players)

        def payoff_fn(_types, actions):
            return game.payoff_vector(actions)

        return cls(
            num_types=[1] * game.n_players,
            num_actions=game.num_actions,
            prior=prior,
            payoff_fn=payoff_fn,
            players=game.players,
            name=game.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "BayesianGame"
        return (
            f"<{label}: {self.n_players} players, types {self.num_types}, "
            f"actions {self.num_actions}>"
        )
