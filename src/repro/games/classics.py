"""Every concrete game the paper mentions, as ready-made constructors.

Includes the paper's own examples (Sections 2-4) plus the standard small
games used to validate the solver substrate.

Notes on fidelity:

* ``prisoners_dilemma`` uses the payoff table printed in Example 3.2:
  ``(C,C)=(3,3); (C,D)=(-5,5); (D,C)=(5,-5); (D,D)=(-3,-3)``.  The prose in
  the same example says mutual defection "both get 1"; the printed table is
  taken as authoritative, and ``prisoners_dilemma_prose`` provides the prose
  variant (3/1/5/-5 structure) for completeness.
* Figure 1's payoffs are not legible in the text (the figure is an image).
  ``figure1_game`` uses payoffs chosen to satisfy every property the prose
  asserts: (across_A, down_B) is a Nash equilibrium; an A unaware of down_B
  strictly prefers down_A; and A aware of down_B strictly prefers across_A.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.games.bayesian import BayesianGame
from repro.games.extensive import ExtensiveFormGame
from repro.games.normal_form import NormalFormGame

__all__ = [
    "prisoners_dilemma",
    "prisoners_dilemma_prose",
    "roshambo",
    "matching_pennies",
    "coordination_01_game",
    "bargaining_game",
    "stag_hunt",
    "chicken",
    "battle_of_the_sexes",
    "figure1_game",
    "byzantine_agreement_game",
    "primality_game",
    "COOPERATE",
    "DEFECT",
    "ROCK",
    "PAPER",
    "SCISSORS",
]

COOPERATE = 0
DEFECT = 1

ROCK = 0
PAPER = 1
SCISSORS = 2


def prisoners_dilemma() -> NormalFormGame:
    """Example 3.2's prisoner's dilemma (payoff table as printed)."""
    return NormalFormGame.from_bimatrix(
        row_payoffs=[[3.0, -5.0], [5.0, -3.0]],
        col_payoffs=[[3.0, 5.0], [-5.0, -3.0]],
        action_labels=[["C", "D"], ["C", "D"]],
        name="Prisoner's Dilemma",
    )


def prisoners_dilemma_prose() -> NormalFormGame:
    """The prose variant of Example 3.2 where mutual defection yields 1."""
    return NormalFormGame.from_bimatrix(
        row_payoffs=[[3.0, -5.0], [5.0, 1.0]],
        col_payoffs=[[3.0, 5.0], [-5.0, 1.0]],
        action_labels=[["C", "D"], ["C", "D"]],
        name="Prisoner's Dilemma (prose payoffs)",
    )


def roshambo() -> NormalFormGame:
    """Example 3.3's rock-paper-scissors, actions 0/1/2, payoff via i = j ⊕ 1.

    Player 1 wins (+1) at outcome ``(i, j)`` when ``i == (j + 1) % 3``;
    loses (-1) when ``j == (i + 1) % 3``; ties at 0.  Zero-sum.
    """
    a = np.zeros((3, 3))
    for i in range(3):
        for j in range(3):
            if i == (j + 1) % 3:
                a[i, j] = 1.0
            elif j == (i + 1) % 3:
                a[i, j] = -1.0
    return NormalFormGame.from_bimatrix(
        row_payoffs=a,
        action_labels=[["rock", "paper", "scissors"]] * 2,
        name="Roshambo",
    )


def matching_pennies() -> NormalFormGame:
    """The canonical 2x2 zero-sum game (solver validation)."""
    return NormalFormGame.from_bimatrix(
        row_payoffs=[[1.0, -1.0], [-1.0, 1.0]],
        action_labels=[["heads", "tails"]] * 2,
        name="Matching Pennies",
    )


def coordination_01_game(n_players: int) -> NormalFormGame:
    """Section 2's 0/1 game showing Nash is not 2-resilient.

    Everyone plays 0 or 1.  All-0 pays everyone 1; exactly two 1s pay the
    deviating pair 2 each and everyone else 0; anything else pays all 0.
    """
    if n_players <= 1:
        raise ValueError("the paper's game requires n > 1")

    def payoff_fn(profile: Tuple[int, ...]) -> Sequence[float]:
        ones = sum(profile)
        if ones == 0:
            return [1.0] * n_players
        if ones == 2:
            return [2.0 if a == 1 else 0.0 for a in profile]
        return [0.0] * n_players

    return NormalFormGame.from_payoff_function(
        n_players,
        [2] * n_players,
        payoff_fn,
        action_labels=[["0", "1"]] * n_players,
        name=f"0/1 coordination game (n={n_players})",
    )


def bargaining_game(n_players: int) -> NormalFormGame:
    """Section 2's bargaining game: resilient for every k, yet fragile.

    Everyone staying pays 2 each.  If anyone leaves, leavers get 1 and
    stayers get 0.  Action 0 = stay, action 1 = leave.
    """
    if n_players < 1:
        raise ValueError("need at least one bargainer")

    def payoff_fn(profile: Tuple[int, ...]) -> Sequence[float]:
        leavers = sum(profile)
        if leavers == 0:
            return [2.0] * n_players
        return [1.0 if a == 1 else 0.0 for a in profile]

    return NormalFormGame.from_payoff_function(
        n_players,
        [2] * n_players,
        payoff_fn,
        action_labels=[["stay", "leave"]] * n_players,
        name=f"bargaining game (n={n_players})",
    )


def stag_hunt() -> NormalFormGame:
    """Standard stag hunt (two pure equilibria; solver validation)."""
    return NormalFormGame.symmetric_two_player(
        [[4.0, 0.0], [3.0, 2.0]],
        action_labels=[["stag", "hare"]] * 2,
        name="Stag Hunt",
    )


def chicken() -> NormalFormGame:
    """Standard chicken/hawk-dove (mixed equilibrium; solver validation)."""
    return NormalFormGame.symmetric_two_player(
        [[0.0, -1.0], [1.0, -10.0]],
        action_labels=[["swerve", "straight"]] * 2,
        name="Chicken",
    )


def battle_of_the_sexes() -> NormalFormGame:
    """Standard battle of the sexes (coordination with conflict)."""
    return NormalFormGame.from_bimatrix(
        row_payoffs=[[3.0, 0.0], [0.0, 2.0]],
        col_payoffs=[[2.0, 0.0], [0.0, 3.0]],
        action_labels=[["ballet", "boxing"]] * 2,
        name="Battle of the Sexes",
    )


def figure1_game() -> ExtensiveFormGame:
    """Section 4's Figure 1 game (see module docstring on payoff choice).

    * A moves first: ``down_A`` ends the game with payoffs ``(1, 1)``.
    * After ``across_A``, B chooses: ``across_B`` gives ``(0, 0)``;
      ``down_B`` gives ``(2, 2)``.

    Properties matching the prose:

    * ``(across_A, down_B)`` is a Nash equilibrium (indeed subgame perfect).
    * If A is unaware of ``down_B``, A models B as forced to play
      ``across_B``, so rational A plays ``down_A`` (1 > 0).
    * Aware A plays ``across_A`` (2 > 1).
    """
    game = ExtensiveFormGame(n_players=2, name="Figure 1")
    game.add_decision((), player=0, moves=("across_A", "down_A"), infoset="A")
    game.add_terminal(("down_A",), (1.0, 1.0))
    game.add_decision(
        ("across_A",), player=1, moves=("across_B", "down_B"), infoset="B"
    )
    game.add_terminal(("across_A", "across_B"), (0.0, 0.0))
    game.add_terminal(("across_A", "down_B"), (2.0, 2.0))
    return game.finalize()


def byzantine_agreement_game(
    n_players: int, prior_attack: float = 0.5
) -> BayesianGame:
    """Byzantine agreement as the Bayesian game of Section 2.

    Player 0 is the general, whose type is their initial preference
    (0 = retreat, 1 = attack); other players have a single dummy type.
    Actions are 0 = retreat, 1 = attack.  Every player gets 1 when the
    outcome satisfies the BA specification relative to the general's type
    (everyone decides alike, and like the general), else 0.

    This is the game form used to reason about mediator implementation;
    the distributed protocol lives in :mod:`repro.dist.agreement`.
    """
    if n_players < 2:
        raise ValueError("Byzantine agreement needs at least two players")
    if not 0.0 <= prior_attack <= 1.0:
        raise ValueError("prior_attack must be a probability")
    num_types = [2] + [1] * (n_players - 1)
    prior = np.zeros(num_types)
    prior[(0,) + (0,) * (n_players - 1)] = 1.0 - prior_attack
    prior[(1,) + (0,) * (n_players - 1)] = prior_attack

    def payoff_fn(types, actions):
        general_pref = types[0]
        agreed = len(set(actions)) == 1
        correct = agreed and actions[0] == general_pref
        return [1.0 if correct else 0.0] * n_players

    return BayesianGame(
        num_types=num_types,
        num_actions=[2] * n_players,
        prior=prior,
        payoff_fn=payoff_fn,
        name=f"Byzantine agreement game (n={n_players})",
    )


def primality_game(
    is_prime: bool,
    reward_correct: float = 10.0,
    penalty_wrong: float = -10.0,
    reward_safe: float = 1.0,
) -> NormalFormGame:
    """Example 3.1's primality game for a *fixed* input number.

    One player, three actions: guess "prime", guess "composite", or play
    safe.  The computational version (where the input is a type and
    strategies are machines) lives in
    :func:`repro.core.computational.primality_machine_game`.
    """
    payoffs = np.zeros((1, 3))
    payoffs[0, 0] = reward_correct if is_prime else penalty_wrong
    payoffs[0, 1] = penalty_wrong if is_prime else reward_correct
    payoffs[0, 2] = reward_safe
    return NormalFormGame(
        payoffs,
        action_labels=[["say_prime", "say_composite", "safe"]],
        name="Primality game",
    )
