"""Normal-form (strategic-form) games over payoff tensors.

A :class:`NormalFormGame` stores one payoff tensor per player.  For an
``n``-player game in which player ``i`` has ``m_i`` actions, the payoff
tensor has shape ``(n, m_0, m_1, ..., m_{n-1})``; entry
``payoffs[i, a_0, ..., a_{n-1}]`` is player ``i``'s utility at the pure
action profile ``(a_0, ..., a_{n-1})``.

Mixed strategies are 1-D probability vectors; a mixed profile is one such
vector per player.  Expected utility is the multilinear contraction of the
payoff tensor with the profile, so every equilibrium notion in this library
bottoms out in :meth:`NormalFormGame.expected_payoff`.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "PureProfile",
    "MixedProfile",
    "NormalFormGame",
    "pure_profiles",
    "profile_as_mixed",
    "is_distribution",
    "normalize_distribution",
]

PureProfile = Tuple[int, ...]
MixedProfile = List[np.ndarray]


def is_distribution(vector: np.ndarray, tol: float = 1e-9) -> bool:
    """Return True if ``vector`` is a probability distribution within ``tol``.

    Entries may dip as low as ``-tol`` (they are treated as rounding noise)
    and the total may differ from one by at most ``tol``.  The same ``tol``
    convention governs :func:`normalize_distribution`, so the two helpers
    agree on which vectors count as "effectively zero mass".
    """
    arr = np.asarray(vector, dtype=float)
    if arr.ndim != 1:
        return False
    if np.any(arr < -tol):
        return False
    return bool(abs(float(arr.sum()) - 1.0) <= tol)


def normalize_distribution(
    vector: Sequence[float], tol: float = 1e-9, on_zero: str = "raise"
) -> np.ndarray:
    """Clip negatives to zero and rescale so the entries sum to one.

    Entries in ``[-tol, 0)`` are treated as rounding noise and clipped to
    zero, matching the tolerance convention of :func:`is_distribution`.

    The all-zero edge case is explicit, never silent: when the clipped
    vector has total mass at most ``tol`` the behaviour is selected by
    ``on_zero`` — ``"raise"`` (the default) raises ``ValueError``, while
    ``"uniform"`` returns the uniform distribution of the same length.
    """
    if on_zero not in ("raise", "uniform"):
        raise ValueError("on_zero must be 'raise' or 'uniform'")
    arr = np.asarray(vector, dtype=float)
    if arr.ndim != 1:
        raise ValueError("can only normalize a 1-D vector")
    arr = np.clip(arr, 0.0, None)
    total = float(arr.sum())
    if total <= tol:
        if on_zero == "raise":
            raise ValueError("cannot normalize a vector with no positive mass")
        if arr.size == 0:
            raise ValueError("cannot build a uniform distribution of length 0")
        return np.full(arr.size, 1.0 / arr.size)
    return arr / total


def pure_profiles(num_actions: Sequence[int]) -> Iterator[PureProfile]:
    """Iterate over all pure action profiles of a game with these action counts."""
    return itertools.product(*(range(m) for m in num_actions))


def profile_as_mixed(profile: PureProfile, num_actions: Sequence[int]) -> MixedProfile:
    """Embed a pure profile as the corresponding degenerate mixed profile."""
    mixed = []
    for action, count in zip(profile, num_actions):
        vec = np.zeros(count)
        vec[action] = 1.0
        mixed.append(vec)
    return mixed


class NormalFormGame:
    """An ``n``-player finite game in strategic form.

    Parameters
    ----------
    payoffs:
        Array-like of shape ``(n, m_0, ..., m_{n-1})``.
    players:
        Optional list of player names (defaults to ``"P0", "P1", ...``).
    action_labels:
        Optional list (one entry per player) of per-action label lists.
    name:
        Optional human-readable game name.
    """

    def __init__(
        self,
        payoffs: Union[np.ndarray, Sequence],
        players: Optional[Sequence[str]] = None,
        action_labels: Optional[Sequence[Sequence[str]]] = None,
        name: str = "",
    ) -> None:
        tensor = np.asarray(payoffs, dtype=float)
        if tensor.ndim < 2:
            raise ValueError("payoff tensor must have at least 2 dimensions")
        n_players = tensor.shape[0]
        if tensor.ndim != n_players + 1:
            raise ValueError(
                f"payoff tensor for {n_players} players must have "
                f"{n_players + 1} dimensions, got {tensor.ndim}"
            )
        self.payoffs = tensor
        self.n_players = n_players
        self.num_actions: Tuple[int, ...] = tensor.shape[1:]
        self.name = name
        if players is None:
            players = [f"P{i}" for i in range(n_players)]
        if len(players) != n_players:
            raise ValueError("player name count does not match payoff tensor")
        self.players = list(players)
        if action_labels is None:
            action_labels = [
                [f"a{j}" for j in range(m)] for m in self.num_actions
            ]
        if len(action_labels) != n_players:
            raise ValueError("need one action-label list per player")
        for i, labels in enumerate(action_labels):
            if len(labels) != self.num_actions[i]:
                raise ValueError(
                    f"player {i} has {self.num_actions[i]} actions but "
                    f"{len(labels)} labels"
                )
        self.action_labels = [list(labels) for labels in action_labels]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_bimatrix(
        cls,
        row_payoffs: Sequence[Sequence[float]],
        col_payoffs: Optional[Sequence[Sequence[float]]] = None,
        **kwargs,
    ) -> "NormalFormGame":
        """Build a 2-player game from row/column payoff matrices.

        If ``col_payoffs`` is omitted the game is zero-sum with column
        payoffs ``-row_payoffs``.
        """
        a = np.asarray(row_payoffs, dtype=float)
        b = -a if col_payoffs is None else np.asarray(col_payoffs, dtype=float)
        if a.shape != b.shape:
            raise ValueError("row and column payoff matrices must share a shape")
        return cls(np.stack([a, b]), **kwargs)

    @classmethod
    def symmetric_two_player(
        cls, row_payoffs: Sequence[Sequence[float]], **kwargs
    ) -> "NormalFormGame":
        """Build the symmetric 2-player game with the given row-player matrix."""
        a = np.asarray(row_payoffs, dtype=float)
        if a.shape[0] != a.shape[1]:
            raise ValueError("symmetric game needs a square payoff matrix")
        return cls(np.stack([a, a.T]), **kwargs)

    @classmethod
    def from_payoff_function(
        cls,
        n_players: int,
        num_actions: Sequence[int],
        payoff_fn,
        **kwargs,
    ) -> "NormalFormGame":
        """Build a game by evaluating ``payoff_fn(profile) -> sequence of n utilities``."""
        shape = (n_players, *num_actions)
        tensor = np.zeros(shape)
        for profile in pure_profiles(num_actions):
            values = payoff_fn(profile)
            for i in range(n_players):
                tensor[(i, *profile)] = values[i]
        return cls(tensor, **kwargs)

    # ------------------------------------------------------------------
    # JSON round-trip (the wire format of the repro.service HTTP layer)
    # ------------------------------------------------------------------

    def to_json_obj(self) -> dict:
        """JSON-ready rendering: payoff tensor as nested lists plus labels.

        The inverse of :meth:`from_json_obj`.  The service layer
        (:mod:`repro.service`) ships games over HTTP through this pair,
        so it uses only JSON-native types.
        """
        return {
            "payoffs": self.payoffs.tolist(),
            "players": list(self.players),
            "action_labels": [list(labels) for labels in self.action_labels],
            "name": self.name,
        }

    @classmethod
    def from_json_obj(cls, obj: dict) -> "NormalFormGame":
        """Rebuild a game from its :meth:`to_json_obj` rendering.

        Only ``payoffs`` is required, so hand-written payloads (e.g. a
        ``/solve`` HTTP request carrying a bare bimatrix tensor) work
        unchanged; names and labels fall back to the constructor
        defaults.
        """
        if "payoffs" not in obj:
            raise ValueError("game JSON object needs a 'payoffs' tensor")
        return cls(
            np.asarray(obj["payoffs"], dtype=float),
            players=obj.get("players"),
            action_labels=obj.get("action_labels"),
            name=obj.get("name", ""),
        )

    # ------------------------------------------------------------------
    # Payoff evaluation
    # ------------------------------------------------------------------

    def payoff(self, player: int, profile: PureProfile) -> float:
        """Utility of ``player`` at a pure action profile."""
        return float(self.payoffs[(player, *profile)])

    def payoff_vector(self, profile: PureProfile) -> np.ndarray:
        """All players' utilities at a pure action profile."""
        return self.payoffs[(slice(None), *profile)].copy()

    def expected_payoff(self, player: int, profile: MixedProfile) -> float:
        """Expected utility of ``player`` under a mixed profile (multilinear)."""
        tensor = self.payoffs[player]
        for vec in profile:
            tensor = np.tensordot(np.asarray(vec, dtype=float), tensor, axes=(0, 0))
        return float(tensor)

    def expected_payoffs(self, profile: MixedProfile) -> np.ndarray:
        """Vector of all players' expected utilities under a mixed profile."""
        return np.array(
            [self.expected_payoff(i, profile) for i in range(self.n_players)]
        )

    def payoff_against(self, player: int, profile: MixedProfile) -> np.ndarray:
        """Expected utility of each pure action of ``player`` versus ``profile``.

        ``profile[player]`` is ignored; the result is the vector of payoffs
        for each of the player's pure actions against the others' mixtures.
        """
        tensor = self.payoffs[player]
        # Contract opponents in descending axis order so axis indices stay valid.
        for j in range(self.n_players - 1, -1, -1):
            if j == player:
                continue
            vec = np.asarray(profile[j], dtype=float)
            tensor = np.tensordot(tensor, vec, axes=(j, 0))
        return np.asarray(tensor, dtype=float)

    # ------------------------------------------------------------------
    # Best responses and equilibrium predicates
    # ------------------------------------------------------------------

    def best_response_value(self, player: int, profile: MixedProfile) -> float:
        """The value of ``player``'s best response against ``profile``."""
        return float(self.payoff_against(player, profile).max())

    def best_responses(
        self, player: int, profile: MixedProfile, tol: float = 1e-9
    ) -> List[int]:
        """Pure best responses of ``player`` against ``profile`` (within ``tol``)."""
        values = self.payoff_against(player, profile)
        best = values.max()
        return [int(a) for a in np.flatnonzero(values >= best - tol)]

    def regret(self, player: int, profile: MixedProfile) -> float:
        """Gain available to ``player`` by unilaterally deviating from ``profile``."""
        return self.best_response_value(player, profile) - self.expected_payoff(
            player, profile
        )

    def max_regret(self, profile: MixedProfile) -> float:
        """Largest unilateral deviation gain across players (0 at a Nash point)."""
        return max(self.regret(i, profile) for i in range(self.n_players))

    def is_nash(self, profile: MixedProfile, tol: float = 1e-6) -> bool:
        """Check whether a mixed profile is an (ε=``tol``) Nash equilibrium."""
        self.validate_profile(profile)
        return self.max_regret(profile) <= tol

    def is_pure_nash(self, profile: PureProfile, tol: float = 1e-9) -> bool:
        """Check whether a pure profile is a Nash equilibrium."""
        mixed = profile_as_mixed(profile, self.num_actions)
        return self.max_regret(mixed) <= tol

    def best_response_mask(self, tol: float = 1e-9) -> np.ndarray:
        """Boolean tensor over pure profiles: True where nobody can gain > ``tol``.

        Entry ``mask[a_0, ..., a_{n-1}]`` is True exactly when the pure
        profile is a (``tol``-tolerant) Nash equilibrium: each player's
        action is within ``tol`` of their best response to the others.
        """
        mask = np.ones(self.num_actions, dtype=bool)
        for i in range(self.n_players):
            u = self.payoffs[i]
            mask &= u >= u.max(axis=i, keepdims=True) - tol
        return mask

    def pure_nash_equilibria(self, tol: float = 1e-9) -> List[PureProfile]:
        """Enumerate all pure-strategy Nash equilibria.

        Vectorized: one max/compare broadcast per player over the payoff
        tensor instead of a per-profile regret scan.  The per-profile loop
        survives as :meth:`_reference_pure_nash_equilibria` (test oracle).
        """
        return [
            tuple(int(a) for a in idx)
            for idx in np.argwhere(self.best_response_mask(tol=tol))
        ]

    def _reference_pure_nash_equilibria(self, tol: float = 1e-9) -> List[PureProfile]:
        """Loop oracle for :meth:`pure_nash_equilibria` (kept for property tests)."""
        return [
            profile
            for profile in pure_profiles(self.num_actions)
            if self.is_pure_nash(profile, tol=tol)
        ]

    def validate_profile(self, profile: MixedProfile, tol: float = 1e-6) -> None:
        """Raise ``ValueError`` unless ``profile`` is a well-formed mixed profile."""
        if len(profile) != self.n_players:
            raise ValueError(
                f"profile has {len(profile)} strategies for {self.n_players} players"
            )
        for i, vec in enumerate(profile):
            arr = np.asarray(vec, dtype=float)
            if arr.shape != (self.num_actions[i],):
                raise ValueError(
                    f"player {i} strategy has shape {arr.shape}, expected "
                    f"({self.num_actions[i]},)"
                )
            if not is_distribution(arr, tol=tol):
                raise ValueError(f"player {i} strategy is not a distribution: {arr}")

    # ------------------------------------------------------------------
    # Dominance
    # ------------------------------------------------------------------

    def dominates(
        self,
        player: int,
        action: int,
        other: int,
        strict: bool = True,
        tol: float = 1e-12,
    ) -> bool:
        """Does ``action`` dominate ``other`` for ``player``?

        Strict dominance requires a strictly larger payoff at every opponent
        profile; weak dominance requires at-least-as-large everywhere and
        strictly larger somewhere.
        """
        axis = player + 1
        payoff = np.moveaxis(self.payoffs[player], player, 0)
        del axis
        diff = payoff[action] - payoff[other]
        if strict:
            return bool(np.all(diff > tol))
        return bool(np.all(diff >= -tol) and np.any(diff > tol))

    def dominated_actions(
        self, player: int, strict: bool = True, tol: float = 1e-12
    ) -> List[int]:
        """Actions of ``player`` dominated by some other pure action.

        Vectorized: all action pairs are compared in one ``(m, m, -1)``
        broadcast over opponent profiles.  The pairwise loop survives as
        :meth:`_reference_dominated_actions` (test oracle).
        """
        m = self.num_actions[player]
        flat = np.moveaxis(self.payoffs[player], player, 0).reshape(m, -1)
        # diff[b, a, s] = u(b, s) - u(a, s); b dominates a when the slice
        # over opponent profiles s is everywhere positive (strict) or
        # nonnegative with at least one strictly positive entry (weak).
        diff = flat[:, None, :] - flat[None, :, :]
        if strict:
            pair = np.all(diff > tol, axis=2)
        else:
            pair = np.all(diff >= -tol, axis=2) & np.any(diff > tol, axis=2)
        np.fill_diagonal(pair, False)
        return [int(a) for a in np.flatnonzero(pair.any(axis=0))]

    def _reference_dominated_actions(
        self, player: int, strict: bool = True, tol: float = 1e-12
    ) -> List[int]:
        """Loop oracle for :meth:`dominated_actions` (kept for property tests)."""
        out = []
        for a in range(self.num_actions[player]):
            for b in range(self.num_actions[player]):
                if a == b:
                    continue
                if self.dominates(player, b, a, strict=strict, tol=tol):
                    out.append(a)
                    break
        return out

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def restrict(self, kept_actions: Sequence[Sequence[int]]) -> "NormalFormGame":
        """The subgame where each player ``i`` may only use ``kept_actions[i]``."""
        if len(kept_actions) != self.n_players:
            raise ValueError("need one kept-action list per player")
        tensor = self.payoffs
        for i, kept in enumerate(kept_actions):
            if len(kept) == 0:
                raise ValueError(f"player {i} must keep at least one action")
            tensor = np.take(tensor, list(kept), axis=i + 1)
        labels = [
            [self.action_labels[i][a] for a in kept]
            for i, kept in enumerate(kept_actions)
        ]
        return NormalFormGame(
            tensor,
            players=self.players,
            action_labels=labels,
            name=self.name + " (restricted)" if self.name else "",
        )

    def with_payoff_transform(self, fn) -> "NormalFormGame":
        """A new game whose tensor is ``fn(payoffs)`` (same shape required)."""
        tensor = np.asarray(fn(self.payoffs.copy()), dtype=float)
        if tensor.shape != self.payoffs.shape:
            raise ValueError("payoff transform must preserve the tensor shape")
        return NormalFormGame(
            tensor,
            players=self.players,
            action_labels=self.action_labels,
            name=self.name,
        )

    def is_zero_sum(self, tol: float = 1e-9) -> bool:
        """Do the players' payoffs sum to zero at every pure profile?"""
        return bool(np.all(np.abs(self.payoffs.sum(axis=0)) <= tol))

    def is_symmetric(self, tol: float = 1e-9) -> bool:
        """Two-player symmetry check: ``B == A.T``."""
        if self.n_players != 2 or self.num_actions[0] != self.num_actions[1]:
            return False
        return bool(
            np.all(np.abs(self.payoffs[1] - self.payoffs[0].T) <= tol)
        )

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def uniform_profile(self) -> MixedProfile:
        """The profile in which every player mixes uniformly."""
        return [np.full(m, 1.0 / m) for m in self.num_actions]

    def social_welfare(self, profile: MixedProfile) -> float:
        """Sum of expected utilities under ``profile``."""
        return float(self.expected_payoffs(profile).sum())

    def pareto_dominates(
        self, profile_a: MixedProfile, profile_b: MixedProfile, tol: float = 1e-12
    ) -> bool:
        """Does ``profile_a`` weakly improve on ``profile_b`` for everyone, strictly for someone?"""
        pa = self.expected_payoffs(profile_a)
        pb = self.expected_payoffs(profile_b)
        return bool(np.all(pa >= pb - tol) and np.any(pa > pb + tol))

    def is_pareto_optimal_pure(self, profile: PureProfile, tol: float = 1e-12) -> bool:
        """Is the pure profile Pareto-optimal among pure profiles?"""
        base = self.payoff_vector(profile)
        for other in pure_profiles(self.num_actions):
            if other == profile:
                continue
            vec = self.payoff_vector(other)
            if np.all(vec >= base - tol) and np.any(vec > base + tol):
                return False
        return True

    def action_index(self, player: int, label: str) -> int:
        """Index of the action of ``player`` with the given label."""
        try:
            return self.action_labels[player].index(label)
        except ValueError as exc:
            raise KeyError(
                f"player {player} has no action labelled {label!r}"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "NormalFormGame"
        sizes = "x".join(str(m) for m in self.num_actions)
        return f"<{label}: {self.n_players} players, {sizes}>"
