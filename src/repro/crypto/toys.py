"""Toy cryptographic primitives for the "crypto/PKI" feasibility regimes.

**These are not secure.**  The ADGH theorems distinguish regimes by whether
the players may assume cryptography and a PKI; reproducing the *protocol
structure* of those regimes needs commitment and signature objects with
the right interfaces, not real hardness.  Each primitive documents the
property it models and the property it does not have.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["ToyCommitment", "ToySignature", "ToyPKI"]


def _digest(*parts: object) -> int:
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x00")
    return int.from_bytes(h.digest()[:8], "big")


@dataclass(frozen=True)
class ToyCommitment:
    """A hash-based commitment: binding and (modelled-)hiding.

    ``commit(value, nonce)`` publishes the digest; ``open`` reveals and
    verifies.  Against a *computationally unbounded* adversary nothing is
    hidden — which mirrors the theorems: unbounded players break the
    crypto regimes, so the feasibility procedure refuses those regimes
    unless ``polynomially_bounded`` is asserted.
    """

    digest: int

    @classmethod
    def commit(cls, value: int, nonce: int) -> "ToyCommitment":
        return cls(digest=_digest("commit", value, nonce))

    def open(self, value: int, nonce: int) -> bool:
        """Verify an opening; binding holds up to hash collisions."""
        return self.digest == _digest("commit", value, nonce)


@dataclass(frozen=True)
class ToySignature:
    """A keyed-hash "signature" verifiable by anyone who trusts the PKI."""

    signer: int
    tag: int

    def verify(self, pki: "ToyPKI", message: object) -> bool:
        key = pki.public_record.get(self.signer)
        if key is None:
            return False
        return self.tag == _digest("sig", key, message)


class ToyPKI:
    """A toy public-key infrastructure: a trusted directory of signer keys.

    Models exactly what the ``n > k + t`` PKI regime needs: honest parties
    can verify who said what, so a faulty party cannot forge relayed
    statements.  (A real PKI would not store the signing keys in the
    directory; this one does, because it only needs to be correct, not
    secure.)
    """

    def __init__(self, n: int, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self._secret_keys: Dict[int, int] = {
            i: int(rng.integers(1, 2**62)) for i in range(n)
        }
        # In this toy, the public record *is* the secret key; verification
        # recomputes the tag.  Sufficient for honest-execution simulation.
        self.public_record: Dict[int, int] = dict(self._secret_keys)

    def sign(self, signer: int, message: object) -> ToySignature:
        key = self._secret_keys.get(signer)
        if key is None:
            raise KeyError(f"unknown signer {signer}")
        return ToySignature(signer=signer, tag=_digest("sig", key, message))

    def forge_attempt(
        self, forger: int, claimed_signer: int, message: object, guess: int
    ) -> Optional[ToySignature]:
        """A forgery attempt with a guessed key; almost surely invalid.

        Provided so tests can demonstrate that (modelled) forgeries fail.
        """
        if guess == self._secret_keys.get(claimed_signer):
            return ToySignature(
                signer=claimed_signer, tag=_digest("sig", guess, message)
            )
        signature = ToySignature(
            signer=claimed_signer, tag=_digest("sig", guess, message)
        )
        return signature if signature.verify(self, message) else None
