"""Shamir secret sharing with Byzantine-robust reconstruction.

A secret ``s`` is shared among ``n`` parties with threshold ``t`` by
sampling a uniformly random degree-``t`` polynomial ``f`` with
``f(0) = s`` and giving party ``i`` the share ``(i, f(i))`` (evaluation
points are ``1..n``; 0 is reserved for the secret).

* Any ``t+1`` correct shares reconstruct ``s``; any ``t`` shares reveal
  nothing (perfect secrecy — tested property-style in the test suite).
* With up to ``e`` *corrupted* shares, :func:`reconstruct_with_errors`
  recovers the secret via the Berlekamp–Welch decoder provided
  ``n >= t + 2e + 1`` — this is the mechanism that lets the cheap-talk
  protocols tolerate Byzantine players.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.crypto.field import Polynomial, PrimeField

__all__ = [
    "Share",
    "share_secret",
    "reconstruct_secret",
    "berlekamp_welch",
    "reconstruct_with_errors",
]


@dataclass(frozen=True)
class Share:
    """One party's share: the evaluation point ``x`` and value ``y``."""

    x: int
    y: int


def share_secret(
    field: PrimeField,
    secret: int,
    n: int,
    t: int,
    rng: Optional[np.random.Generator] = None,
) -> List[Share]:
    """Split ``secret`` into ``n`` shares with threshold ``t``.

    Any ``t + 1`` shares reconstruct; ``t`` or fewer reveal nothing.
    """
    if not 0 <= t < n:
        raise ValueError("need 0 <= t < n")
    if n >= field.p:
        raise ValueError("field too small for this many parties")
    rng = rng if rng is not None else np.random.default_rng()
    poly = Polynomial.random(field, degree=t, constant_term=secret, rng=rng)
    return [Share(x=i, y=poly(i)) for i in range(1, n + 1)]


def reconstruct_secret(field: PrimeField, shares: Sequence[Share]) -> int:
    """Reconstruct from correct shares by Lagrange interpolation at 0."""
    if not shares:
        raise ValueError("no shares given")
    points = [(s.x, s.y) for s in shares]
    return field.lagrange_interpolate_at(points, x=0)


def _solve_linear_system_mod_p(
    field: PrimeField, matrix: List[List[int]], rhs: List[int]
) -> Optional[List[int]]:
    """Gaussian elimination over GF(p).  Returns one solution or None.

    Under-determined systems return a solution with free variables set to
    zero, which is what Berlekamp–Welch needs.
    """
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    a = [[field.normalize(v) for v in row] + [field.normalize(b)]
         for row, b in zip(matrix, rhs)]
    pivot_cols: List[int] = []
    r = 0
    for c in range(cols):
        pivot = next((i for i in range(r, rows) if a[i][c] != 0), None)
        if pivot is None:
            continue
        a[r], a[pivot] = a[pivot], a[r]
        inv = field.inv(a[r][c])
        a[r] = [field.mul(v, inv) for v in a[r]]
        for i in range(rows):
            if i != r and a[i][c] != 0:
                factor = a[i][c]
                a[i] = [
                    field.sub(a[i][j], field.mul(factor, a[r][j]))
                    for j in range(cols + 1)
                ]
        pivot_cols.append(c)
        r += 1
        if r == rows:
            break
    # Inconsistency check.
    for i in range(r, rows):
        if all(v == 0 for v in a[i][:cols]) and a[i][cols] != 0:
            return None
    solution = [0] * cols
    for row_idx, c in enumerate(pivot_cols):
        solution[c] = a[row_idx][cols]
    return solution


def berlekamp_welch(
    field: PrimeField,
    points: Sequence[Tuple[int, int]],
    degree: int,
    max_errors: int,
) -> Optional[Polynomial]:
    """Decode a degree-``degree`` polynomial from points with errors.

    Returns the message polynomial if at most ``max_errors`` of the
    ``points`` are wrong and ``len(points) >= degree + 2*max_errors + 1``;
    otherwise ``None``.
    """
    n = len(points)
    e = max_errors
    k = degree
    if n < k + 2 * e + 1:
        raise ValueError(
            f"need at least degree + 2*errors + 1 = {k + 2 * e + 1} points, "
            f"got {n}"
        )
    if e == 0:
        poly = Polynomial.interpolate(field, list(points[: k + 1]))
        if all(poly(x) == y for x, y in points):
            return poly
        return None
    # Unknowns: E(x) monic of degree e (e coefficients e_0..e_{e-1}),
    # Q(x) of degree k + e (k + e + 1 coefficients).
    # Equations: Q(x_i) = y_i * E(x_i)  =>
    #   sum_j q_j x_i^j - y_i sum_j e_j x_i^j = y_i x_i^e.
    num_q = k + e + 1
    matrix: List[List[int]] = []
    rhs: List[int] = []
    for x, y in points:
        row = []
        power = 1
        for _ in range(num_q):
            row.append(power)
            power = field.mul(power, x)
        power = 1
        for _ in range(e):
            row.append(field.neg(field.mul(y, power)))
            power = field.mul(power, x)
        matrix.append(row)
        rhs.append(field.mul(y, field.pow(x, e)))
    solution = _solve_linear_system_mod_p(field, matrix, rhs)
    if solution is None:
        return None
    q = Polynomial(field, solution[:num_q])
    e_poly = Polynomial(field, solution[num_q:] + [1])  # monic
    quotient, remainder = q.divmod(e_poly)
    if remainder.degree >= 0:
        return None
    # Verify: the decoded polynomial must match at >= n - e points.
    agreements = sum(1 for x, y in points if quotient(x) == y)
    if agreements < n - e or quotient.degree > k:
        return None
    return quotient


def reconstruct_with_errors(
    field: PrimeField,
    shares: Sequence[Share],
    t: int,
    max_errors: int,
) -> Optional[int]:
    """Robust reconstruction: recover the secret despite corrupted shares.

    Correct whenever at most ``max_errors`` shares are wrong and
    ``len(shares) >= t + 2*max_errors + 1``.
    """
    poly = berlekamp_welch(
        field, [(s.x, s.y) for s in shares], degree=t, max_errors=max_errors
    )
    if poly is None:
        return None
    return poly(0)
