"""Prime-field arithmetic and polynomials over it.

Everything in :mod:`repro.crypto` computes over GF(p) for a prime ``p``
large enough to hold the values being shared.  Elements are plain Python
ints in ``[0, p)``; the field object carries the modulus and the
operations, keeping call sites explicit about which field they are in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = ["PrimeField", "Polynomial", "DEFAULT_PRIME"]

# A Mersenne-adjacent prime comfortably larger than any payoff/type value
# used in the experiments, small enough that arithmetic stays fast.
DEFAULT_PRIME = 2_147_483_647  # 2^31 - 1, prime


def _is_probable_prime(n: int) -> bool:
    """Deterministic Miller–Rabin for n < 3.3e24 (sufficient bases)."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class PrimeField:
    """The field GF(p).  Validates primality at construction."""

    p: int = DEFAULT_PRIME

    def __post_init__(self) -> None:
        if not _is_probable_prime(self.p):
            raise ValueError(f"{self.p} is not prime")

    def normalize(self, x: int) -> int:
        return x % self.p

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def neg(self, a: int) -> int:
        return (-a) % self.p

    def inv(self, a: int) -> int:
        a %= self.p
        if a == 0:
            raise ZeroDivisionError("0 has no inverse")
        return pow(a, self.p - 2, self.p)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        return pow(a % self.p, e, self.p)

    def rand(self, rng) -> int:
        """Uniform field element from a numpy Generator."""
        return int(rng.integers(self.p))

    def lagrange_interpolate_at(
        self, points: Sequence[Tuple[int, int]], x: int = 0
    ) -> int:
        """Evaluate the unique degree-(k-1) interpolant at ``x``.

        ``points`` is a sequence of distinct ``(x_i, y_i)`` pairs.
        """
        xs = [p[0] % self.p for p in points]
        if len(set(xs)) != len(xs):
            raise ValueError("interpolation points must have distinct x")
        total = 0
        for i, (xi, yi) in enumerate(points):
            numerator, denominator = 1, 1
            for j, (xj, _) in enumerate(points):
                if i == j:
                    continue
                numerator = self.mul(numerator, self.sub(x, xj))
                denominator = self.mul(denominator, self.sub(xi, xj))
            total = self.add(
                total, self.mul(yi, self.div(numerator, denominator))
            )
        return total


class Polynomial:
    """A polynomial over a prime field, dense coefficient representation.

    ``coeffs[k]`` multiplies ``x**k``.  Trailing zeros are trimmed, and the
    zero polynomial has ``coeffs == [0]``.
    """

    def __init__(self, field: PrimeField, coeffs: Iterable[int]) -> None:
        self.field = field
        cleaned = [field.normalize(c) for c in coeffs]
        while len(cleaned) > 1 and cleaned[-1] == 0:
            cleaned.pop()
        if not cleaned:
            cleaned = [0]
        self.coeffs: List[int] = cleaned

    @property
    def degree(self) -> int:
        """Degree, with the convention deg(0) == -1."""
        if self.coeffs == [0]:
            return -1
        return len(self.coeffs) - 1

    def __call__(self, x: int) -> int:
        """Horner evaluation at ``x``."""
        result = 0
        for c in reversed(self.coeffs):
            result = self.field.add(self.field.mul(result, x), c)
        return result

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check(other)
        n = max(len(self.coeffs), len(other.coeffs))
        out = [
            self.field.add(
                self.coeffs[k] if k < len(self.coeffs) else 0,
                other.coeffs[k] if k < len(other.coeffs) else 0,
            )
            for k in range(n)
        ]
        return Polynomial(self.field, out)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        self._check(other)
        return self + other.scale(self.field.p - 1)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        self._check(other)
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] = self.field.add(out[i + j], self.field.mul(a, b))
        return Polynomial(self.field, out)

    def scale(self, scalar: int) -> "Polynomial":
        return Polynomial(
            self.field, [self.field.mul(c, scalar) for c in self.coeffs]
        )

    def divmod(self, other: "Polynomial") -> Tuple["Polynomial", "Polynomial"]:
        """Polynomial long division: returns (quotient, remainder)."""
        self._check(other)
        if other.degree < 0:
            raise ZeroDivisionError("division by the zero polynomial")
        remainder = list(self.coeffs)
        quotient = [0] * max(1, len(self.coeffs) - len(other.coeffs) + 1)
        lead_inv = self.field.inv(other.coeffs[-1])
        for k in range(len(remainder) - len(other.coeffs), -1, -1):
            coef = self.field.mul(remainder[k + len(other.coeffs) - 1], lead_inv)
            if coef == 0:
                continue
            quotient[k] = coef
            for j, b in enumerate(other.coeffs):
                remainder[k + j] = self.field.sub(
                    remainder[k + j], self.field.mul(coef, b)
                )
        return Polynomial(self.field, quotient), Polynomial(self.field, remainder)

    @classmethod
    def random(
        cls, field: PrimeField, degree: int, constant_term: int, rng
    ) -> "Polynomial":
        """Uniformly random polynomial of exactly the given degree bound with
        fixed constant term (the Shamir sharing polynomial)."""
        coeffs = [field.normalize(constant_term)] + [
            field.rand(rng) for _ in range(degree)
        ]
        return cls(field, coeffs)

    @classmethod
    def interpolate(
        cls, field: PrimeField, points: Sequence[Tuple[int, int]]
    ) -> "Polynomial":
        """The unique interpolating polynomial through ``points``."""
        xs = [x % field.p for x, _ in points]
        if len(set(xs)) != len(xs):
            raise ValueError("interpolation points must have distinct x")
        result = cls(field, [0])
        for i, (xi, yi) in enumerate(points):
            basis = cls(field, [yi])
            for j, (xj, _) in enumerate(points):
                if i == j:
                    continue
                factor = cls(
                    field,
                    [field.div(field.neg(xj), field.sub(xi, xj)),
                     field.div(1, field.sub(xi, xj))],
                )
                basis = basis * factor
            result = result + basis
        return result

    def _check(self, other: "Polynomial") -> None:
        if self.field.p != other.field.p:
            raise ValueError("polynomials over different fields")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Polynomial)
            and self.field.p == other.field.p
            and self.coeffs == other.coeffs
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Polynomial(GF({self.field.p}), {self.coeffs})"
