"""BGW-style secure multiparty computation over secret shares.

The mediator-implementation protocols of Section 2 replace a trusted
mediator by letting the players jointly evaluate the mediator's function
on shared inputs.  This module provides the arithmetic-circuit engine:

* inputs are Shamir-shared with threshold ``t``;
* addition/scalar gates are local share arithmetic;
* multiplication uses the classical degree-reduction step: parties
  locally multiply shares (degree ``2t``), re-share the products, and
  linearly combine the sub-shares with the first-row-of-the-inverse-
  Vandermonde coefficients, restoring degree ``t``.  Requires
  ``n >= 2t + 1`` honest-majority, exactly as the theory says;
* outputs are reconstructed, robustly if Byzantine shares are expected.

The engine is an honest-execution simulator with fault hooks: it computes
what every party would hold, and lets a caller corrupt up to ``t`` parties'
shares before reconstruction to exercise the robust decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.crypto.field import PrimeField
from repro.crypto.shamir import (
    Share,
    reconstruct_secret,
    reconstruct_with_errors,
    share_secret,
)

__all__ = ["CircuitGate", "ArithmeticCircuit", "SMPCEngine"]


@dataclass(frozen=True)
class CircuitGate:
    """One gate of an arithmetic circuit.

    ``op`` is one of ``"input"``, ``"add"``, ``"sub"``, ``"mul"``,
    ``"const_mul"``, ``"const_add"``; ``args`` are wire indices (and, for
    the const ops, the constant as the second entry).
    """

    op: str
    args: Tuple[int, ...]
    constant: Optional[int] = None


class ArithmeticCircuit:
    """A straight-line arithmetic circuit over GF(p).

    Build with :meth:`input_wire`, :meth:`add`, :meth:`mul`, etc.; every
    method returns the new wire's index.  ``outputs`` lists wire indices
    to reveal.
    """

    def __init__(self, field: PrimeField) -> None:
        self.field = field
        self.gates: List[CircuitGate] = []
        self.outputs: List[int] = []
        self.n_inputs = 0

    def input_wire(self) -> int:
        self.gates.append(CircuitGate("input", (self.n_inputs,)))
        self.n_inputs += 1
        return len(self.gates) - 1

    def add(self, a: int, b: int) -> int:
        self._check_wires(a, b)
        self.gates.append(CircuitGate("add", (a, b)))
        return len(self.gates) - 1

    def sub(self, a: int, b: int) -> int:
        self._check_wires(a, b)
        self.gates.append(CircuitGate("sub", (a, b)))
        return len(self.gates) - 1

    def mul(self, a: int, b: int) -> int:
        self._check_wires(a, b)
        self.gates.append(CircuitGate("mul", (a, b)))
        return len(self.gates) - 1

    def const_mul(self, a: int, constant: int) -> int:
        self._check_wires(a)
        self.gates.append(
            CircuitGate("const_mul", (a,), constant=self.field.normalize(constant))
        )
        return len(self.gates) - 1

    def const_add(self, a: int, constant: int) -> int:
        self._check_wires(a)
        self.gates.append(
            CircuitGate("const_add", (a,), constant=self.field.normalize(constant))
        )
        return len(self.gates) - 1

    def mark_output(self, wire: int) -> None:
        self._check_wires(wire)
        self.outputs.append(wire)

    def _check_wires(self, *wires: int) -> None:
        for w in wires:
            if not 0 <= w < len(self.gates):
                raise ValueError(f"wire {w} does not exist")

    def evaluate_plain(self, inputs: Sequence[int]) -> List[int]:
        """Reference (non-secure) evaluation, for testing the engine."""
        if len(inputs) != self.n_inputs:
            raise ValueError("wrong number of inputs")
        values: List[int] = []
        f = self.field
        for gate in self.gates:
            if gate.op == "input":
                values.append(f.normalize(inputs[gate.args[0]]))
            elif gate.op == "add":
                values.append(f.add(values[gate.args[0]], values[gate.args[1]]))
            elif gate.op == "sub":
                values.append(f.sub(values[gate.args[0]], values[gate.args[1]]))
            elif gate.op == "mul":
                values.append(f.mul(values[gate.args[0]], values[gate.args[1]]))
            elif gate.op == "const_mul":
                values.append(f.mul(values[gate.args[0]], gate.constant))
            elif gate.op == "const_add":
                values.append(f.add(values[gate.args[0]], gate.constant))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown gate {gate.op!r}")
        return [values[w] for w in self.outputs]


class SMPCEngine:
    """Simulated BGW execution: tracks every party's share of every wire.

    ``n`` parties, threshold ``t``; multiplication needs ``n >= 2t + 1``.
    The engine holds a full transcript (``wire_shares[wire][party]``),
    which stands in for the parties' local states in a real execution.
    """

    def __init__(
        self,
        field: PrimeField,
        n: int,
        t: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n < 2 * t + 1:
            raise ValueError(
                "BGW multiplication requires n >= 2t + 1 "
                f"(got n={n}, t={t})"
            )
        self.field = field
        self.n = n
        self.t = t
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._recomb = self._recombination_vector()

    def _recombination_vector(self) -> List[int]:
        """Lagrange coefficients mapping values at 1..n to the value at 0
        for a degree-(2t) polynomial (used by degree reduction)."""
        f = self.field
        xs = list(range(1, self.n + 1))
        coeffs = []
        for i, xi in enumerate(xs):
            num, den = 1, 1
            for j, xj in enumerate(xs):
                if i == j:
                    continue
                num = f.mul(num, f.neg(xj))
                den = f.mul(den, f.sub(xi, xj))
            coeffs.append(f.div(num, den))
        return coeffs

    # ------------------------------------------------------------------

    def run(
        self, circuit: ArithmeticCircuit, inputs: Sequence[int]
    ) -> "SMPCTranscript":
        """Execute the circuit on secret inputs; return the transcript."""
        if circuit.field.p != self.field.p:
            raise ValueError("circuit field does not match engine field")
        if len(inputs) != circuit.n_inputs:
            raise ValueError("wrong number of inputs")
        f = self.field
        wire_shares: List[List[int]] = []
        for gate in circuit.gates:
            if gate.op == "input":
                shares = share_secret(
                    f, inputs[gate.args[0]], self.n, self.t, rng=self.rng
                )
                wire_shares.append([s.y for s in shares])
            elif gate.op in ("add", "sub"):
                a = wire_shares[gate.args[0]]
                b = wire_shares[gate.args[1]]
                op = f.add if gate.op == "add" else f.sub
                wire_shares.append([op(x, y) for x, y in zip(a, b)])
            elif gate.op == "const_mul":
                a = wire_shares[gate.args[0]]
                wire_shares.append([f.mul(x, gate.constant) for x in a])
            elif gate.op == "const_add":
                a = wire_shares[gate.args[0]]
                wire_shares.append([f.add(x, gate.constant) for x in a])
            elif gate.op == "mul":
                wire_shares.append(
                    self._multiply(
                        wire_shares[gate.args[0]], wire_shares[gate.args[1]]
                    )
                )
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown gate {gate.op!r}")
        return SMPCTranscript(
            engine=self,
            circuit=circuit,
            wire_shares=wire_shares,
        )

    def _multiply(self, a: List[int], b: List[int]) -> List[int]:
        """BGW multiplication with degree reduction.

        Party ``i`` computes ``d_i = a_i * b_i`` (a point on a degree-2t
        polynomial with the right secret), re-shares ``d_i`` with
        threshold ``t``, and everyone linearly combines the received
        sub-shares with the recombination vector.
        """
        f = self.field
        products = [f.mul(x, y) for x, y in zip(a, b)]
        # sub_shares[i][j] = party j's share of party i's product.
        sub_shares = [
            [s.y for s in share_secret(f, d, self.n, self.t, rng=self.rng)]
            for d in products
        ]
        new_shares = []
        for j in range(self.n):
            total = 0
            for i in range(self.n):
                total = f.add(total, f.mul(self._recomb[i], sub_shares[i][j]))
            new_shares.append(total)
        return new_shares


@dataclass
class SMPCTranscript:
    """Every party's share of every wire after an execution."""

    engine: SMPCEngine
    circuit: ArithmeticCircuit
    wire_shares: List[List[int]]

    def party_view(self, party: int) -> List[int]:
        """The shares a single party holds (one per wire)."""
        return [w[party] for w in self.wire_shares]

    def open_outputs(self) -> List[int]:
        """Reconstruct the output wires from all (honest) shares."""
        f = self.engine.field
        out = []
        for wire in self.circuit.outputs:
            shares = [
                Share(x=i + 1, y=self.wire_shares[wire][i])
                for i in range(self.engine.n)
            ]
            out.append(reconstruct_secret(f, shares[: self.engine.t + 1]))
        return out

    def open_outputs_with_corruptions(
        self, corrupted: Dict[int, int]
    ) -> Optional[List[int]]:
        """Reconstruct outputs after parties in ``corrupted`` lie.

        ``corrupted`` maps party index to the (wrong) share value it
        reports for every output wire.  Uses Berlekamp–Welch; succeeds
        when ``n >= t + 2*|corrupted| + 1``.
        """
        f = self.engine.field
        e = len(corrupted)
        out = []
        for wire in self.circuit.outputs:
            shares = []
            for i in range(self.engine.n):
                y = corrupted.get(i, self.wire_shares[wire][i])
                shares.append(Share(x=i + 1, y=f.normalize(y)))
            value = reconstruct_with_errors(
                f, shares, t=self.engine.t, max_errors=e
            )
            if value is None:
                return None
            out.append(value)
        return out
