"""Cryptographic substrate for cheap-talk mediator implementation.

The ADGH possibility results all "use techniques from secure multiparty
computation"; this package implements those techniques from scratch at
laptop scale:

* :mod:`repro.crypto.field` — prime-field arithmetic and polynomials.
* :mod:`repro.crypto.shamir` — Shamir secret sharing (share/reconstruct,
  error detection, Reed–Solomon style error *correction* for the
  Byzantine case via Berlekamp–Welch).
* :mod:`repro.crypto.smpc` — BGW-style arithmetic circuit evaluation on
  shares (addition, scalar ops, multiplication with degree reduction).
* :mod:`repro.crypto.toys` — toy commitments and signatures used by the
  cryptography/PKI regimes of the feasibility theorems.  **Not secure**;
  they exist to exercise the same protocol code paths.
"""

from repro.crypto.field import PrimeField, Polynomial
from repro.crypto.shamir import (
    Share,
    berlekamp_welch,
    reconstruct_secret,
    reconstruct_with_errors,
    share_secret,
)
from repro.crypto.smpc import ArithmeticCircuit, CircuitGate, SMPCEngine
from repro.crypto.toys import ToyCommitment, ToyPKI, ToySignature

__all__ = [
    "ArithmeticCircuit",
    "CircuitGate",
    "Polynomial",
    "PrimeField",
    "SMPCEngine",
    "Share",
    "ToyCommitment",
    "ToyPKI",
    "ToySignature",
    "berlekamp_welch",
    "reconstruct_secret",
    "reconstruct_with_errors",
    "share_secret",
]
