"""Exact Markov-chain analysis of homogeneous threshold scrip economies.

For ``n`` agents all playing the threshold-``k`` strategy, the scrip
economy of :mod:`repro.econ.scrip` is a finite Markov chain over money
allocations: a state is the vector of holdings, the money supply
``n * initial_scrip`` is conserved, and no holding can exceed
``max(initial_scrip, k)`` (an agent at or above its threshold stops
volunteering, so it can only spend).  That makes the state space small
enough to solve exactly for small grids — the same move as the
stationary-distribution analyses in "Proving the Herman-Protocol
Conjecture" — giving the *analytic* expected per-round utility and
satisfaction rate that cross-validate the Monte Carlo engine (and
reproduce the E17 "crash" as a frozen chain: everyone starting above
threshold is an absorbing state with zero welfare).

Transitions mirror one simulation round exactly: a uniformly random
requester pays 1 scrip to a worker drawn uniformly from the willing
non-requesters; rounds with no affordable request or no volunteer leave
the allocation unchanged (a self-loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["MarkovScripAnalysis", "analytic_threshold_utility"]

_MAX_STATES = 20_000


@dataclass
class MarkovScripAnalysis:
    """Exact stationary quantities of a homogeneous threshold economy."""

    n: int
    threshold: int
    initial_scrip: int
    benefit: float
    cost: float
    states: np.ndarray  # (S, n) holdings of every reachable state
    stationary: np.ndarray  # (S,) stationary probability of each state
    expected_utility: float  # per agent, per round
    satisfaction_rate: float
    request_rate: float
    scrip_distribution: np.ndarray  # P(an agent holds s), s = 0..cap

    @property
    def n_states(self) -> int:
        """Number of allocations reachable from the initial state."""
        return len(self.states)

    @property
    def frozen(self) -> bool:
        """Whether the economy never trades (the E17 crash regime)."""
        return self.satisfaction_rate == 0.0


def _reachable_states(
    n: int, threshold: int, initial_scrip: int
) -> Tuple[np.ndarray, np.ndarray]:
    """BFS the allocation graph from the all-equal initial state.

    Returns the reachable states (row-per-state holdings) and the dense
    transition matrix between them.  A transition moves one scrip from a
    requester ``r`` (prob ``1/n``, needs a scrip) to a worker chosen
    uniformly among willing non-requesters; all residual probability is
    the state's self-loop.
    """
    start = (initial_scrip,) * n
    index: Dict[Tuple[int, ...], int] = {start: 0}
    frontier: List[Tuple[int, ...]] = [start]
    transitions: List[Tuple[int, int, float]] = []  # (from, to, prob)
    while frontier:
        state = frontier.pop()
        i = index[state]
        out = 0.0
        for r in range(n):
            if state[r] < 1:
                continue
            willing = [
                w for w in range(n) if w != r and state[w] < threshold
            ]
            if not willing:
                continue
            p = 1.0 / (n * len(willing))
            for w in willing:
                nxt = list(state)
                nxt[r] -= 1
                nxt[w] += 1
                key = tuple(nxt)
                j = index.get(key)
                if j is None:
                    j = len(index)
                    if j >= _MAX_STATES:
                        raise ValueError(
                            "state space exceeds "
                            f"{_MAX_STATES} allocations; the exact chain "
                            "is meant for small (n, k, money) grids"
                        )
                    index[key] = j
                    frontier.append(key)
                transitions.append((i, j, p))
                out += p
        transitions.append((i, i, 1.0 - out))
    states = np.array(sorted(index, key=index.get), dtype=np.int64)
    matrix = np.zeros((len(index), len(index)))
    for i, j, p in transitions:
        matrix[i, j] += p
    return states, matrix


def _stationary_distribution(matrix: np.ndarray) -> np.ndarray:
    """Stationary distribution of a finite chain started at state 0.

    Solves ``pi P = pi`` directly when the stationary distribution is
    unique; otherwise (several recurrent classes) takes the Cesàro limit
    from state 0 via repeated squaring of the lazy chain
    ``(P + I) / 2``, whose self-loops remove any periodicity without
    changing the stationary distributions.
    """
    size = len(matrix)
    system = matrix.T - np.eye(size)
    system[-1, :] = 1.0
    rhs = np.zeros(size)
    rhs[-1] = 1.0
    try:
        pi = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError:
        pi = None
    if pi is not None and pi.min() > -1e-9:
        residual = np.abs(pi @ matrix - pi).max()
        if residual < 1e-9:
            return np.clip(pi, 0.0, None) / pi.sum()
    lazy = 0.5 * (matrix + np.eye(size))
    for _ in range(60):
        lazy = lazy @ lazy
        lazy /= lazy.sum(axis=1, keepdims=True)  # fight drift
    return lazy[0] / lazy[0].sum()


def analytic_threshold_utility(
    n: int,
    threshold: int,
    benefit: float = 1.0,
    cost: float = 0.2,
    initial_scrip: int = 2,
) -> MarkovScripAnalysis:
    """Exact stationary per-round utility of a threshold-``k`` economy.

    Builds the money-allocation chain reachable from the all-equal
    initial allocation, solves for its stationary distribution, and
    integrates the per-state expected utility of each agent: a benefit
    when the agent is the (paying, serviceable) requester, a cost when
    it is the uniformly chosen worker of another requester.  The result
    matches the undiscounted Monte Carlo engine's long-horizon mean
    per-round utility (see the ``scrip_analytic_vs_mc`` scenario and
    the tolerance tests in ``tests/test_properties_scrip.py``).
    """
    if n < 2:
        raise ValueError("a scrip economy needs at least two agents")
    if threshold < 0 or initial_scrip < 0:
        raise ValueError("threshold and initial scrip must be non-negative")
    if benefit <= cost:
        raise ValueError(
            "service must be worth more than it costs (benefit > cost)"
        )
    states, matrix = _reachable_states(n, threshold, initial_scrip)
    pi = _stationary_distribution(matrix)

    spendable = states >= 1  # (S, n)
    willing = states < threshold  # (S, n)
    # |W_r| for each requester r: willing others, excluding r itself.
    count_excl = willing.sum(axis=1, keepdims=True) - willing
    served = spendable & (count_excl > 0)
    # P(agent i pays the cost | state) = sum over requesters r != i of
    # P(r requests and i is drawn): spendable_r / (n * |W_r|) for
    # willing i.  terms[:, r] is that per-requester factor.
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(served, spendable / np.maximum(count_excl, 1), 0.0)
    cost_events = willing * (terms.sum(axis=1, keepdims=True) - terms) / n
    benefit_events = served / n
    per_agent = pi @ (benefit * benefit_events - cost * cost_events)

    request_rate = float(pi @ spendable.mean(axis=1))
    satisfied_rate = float(pi @ served.mean(axis=1))
    cap = max(initial_scrip, threshold)
    holdings = np.zeros(cap + 1)
    for s, weight in zip(states, pi):
        holdings += weight * np.bincount(s, minlength=cap + 1) / n
    return MarkovScripAnalysis(
        n=n,
        threshold=threshold,
        initial_scrip=initial_scrip,
        benefit=float(benefit),
        cost=float(cost),
        states=states,
        stationary=pi,
        expected_utility=float(per_agent.mean()),
        satisfaction_rate=(
            satisfied_rate / request_rate if request_rate > 0 else 0.0
        ),
        request_rate=request_rate,
        scrip_distribution=holdings,
    )
