"""Economic models from the paper's agenda (Section 5 / Section 2).

* :mod:`repro.econ.scrip` — the Kash–Friedman–Halpern scrip system:
  threshold equilibria, hoarders, altruists, and the batched array
  engine behind the best-response sweeps.
* :mod:`repro.econ.markov` — the same economy as an exact finite Markov
  chain over money allocations (analytic cross-check of Monte Carlo).
* :mod:`repro.econ.p2p` — Gnutella-style file sharing: free riding with
  standard utilities, and the heterogeneous-utility population that
  reproduces the Adar–Huberman measurements.
"""

from repro.econ.markov import MarkovScripAnalysis, analytic_threshold_utility
from repro.econ.scrip import (
    Altruist,
    BestResponseSweep,
    Hoarder,
    ScripAgent,
    ScripBatchResult,
    ScripSimulationResult,
    ScripSystem,
    ThresholdAgent,
    best_response_sweep,
    best_response_threshold,
    find_symmetric_threshold_equilibrium,
    run_batch,
)
from repro.econ.p2p import (
    SharingOutcome,
    SharingPopulation,
    sharing_game_small,
)

__all__ = [
    "Altruist",
    "BestResponseSweep",
    "Hoarder",
    "MarkovScripAnalysis",
    "ScripAgent",
    "ScripBatchResult",
    "ScripSimulationResult",
    "ScripSystem",
    "SharingOutcome",
    "SharingPopulation",
    "ThresholdAgent",
    "analytic_threshold_utility",
    "best_response_sweep",
    "best_response_threshold",
    "find_symmetric_threshold_equilibrium",
    "run_batch",
    "sharing_game_small",
]
