"""Economic models from the paper's agenda (Section 5 / Section 2).

* :mod:`repro.econ.scrip` — the Kash–Friedman–Halpern scrip system:
  threshold equilibria, hoarders, altruists.
* :mod:`repro.econ.p2p` — Gnutella-style file sharing: free riding with
  standard utilities, and the heterogeneous-utility population that
  reproduces the Adar–Huberman measurements.
"""

from repro.econ.scrip import (
    Altruist,
    Hoarder,
    ScripAgent,
    ScripSimulationResult,
    ScripSystem,
    ThresholdAgent,
    best_response_threshold,
    find_symmetric_threshold_equilibrium,
)
from repro.econ.p2p import (
    SharingOutcome,
    SharingPopulation,
    sharing_game_small,
)

__all__ = [
    "Altruist",
    "Hoarder",
    "ScripAgent",
    "ScripSimulationResult",
    "ScripSystem",
    "SharingOutcome",
    "SharingPopulation",
    "ThresholdAgent",
    "best_response_threshold",
    "find_symmetric_threshold_equilibrium",
    "sharing_game_small",
]
