"""Scrip systems (Kash–Friedman–Halpern 2007), as cited in Section 5.

Model
-----
``n`` agents perform work for each other in exchange for scrip.  Each
round one uniformly random agent wants service (worth ``benefit`` to
them); satisfying a request costs the volunteer ``cost``; the price of
service is 1 scrip.  A requester must hold at least 1 scrip to pay;
volunteers are chosen uniformly among agents willing to work.

The strategy the paper highlights is the *threshold* strategy: volunteer
exactly when your scrip holdings are below a threshold ``k``.  The two
"standard irrational behaviours" named in Section 5 are also modelled:

* **hoarders** volunteer at every opportunity but never spend
  (they accumulate scrip, shrinking the effective money supply);
* **altruists** satisfy requests for free (the "posting music on Kazaa"
  analogue), which lets requesters keep their scrip.

The experiments (E11) look for a symmetric threshold equilibrium by
empirical best response, and measure how hoarders/altruists shift the
welfare of threshold agents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ScripAgent",
    "ThresholdAgent",
    "Hoarder",
    "Altruist",
    "ScripSystem",
    "ScripSimulationResult",
    "best_response_threshold",
    "find_symmetric_threshold_equilibrium",
]


class ScripAgent:
    """Base agent: decides whether to volunteer and whether to request."""

    name = "agent"

    def wants_to_volunteer(self, scrip: int) -> bool:
        raise NotImplementedError

    def wants_to_spend(self, scrip: int) -> bool:
        """Whether, when chosen as this round's requester, the agent is
        willing to pay 1 scrip for service."""
        raise NotImplementedError

    @property
    def works_for_free(self) -> bool:
        return False


@dataclass
class ThresholdAgent(ScripAgent):
    """The paper's equilibrium strategy: work iff scrip < threshold."""

    threshold: int
    name: str = "threshold"

    def wants_to_volunteer(self, scrip: int) -> bool:
        return scrip < self.threshold

    def wants_to_spend(self, scrip: int) -> bool:
        return scrip >= 1


@dataclass
class Hoarder(ScripAgent):
    """Volunteers always, never spends — drains money from circulation."""

    name: str = "hoarder"

    def wants_to_volunteer(self, scrip: int) -> bool:
        return True

    def wants_to_spend(self, scrip: int) -> bool:
        return False


@dataclass
class Altruist(ScripAgent):
    """Works for free (requesters it serves pay nothing)."""

    name: str = "altruist"

    def wants_to_volunteer(self, scrip: int) -> bool:
        return True

    def wants_to_spend(self, scrip: int) -> bool:
        return True

    @property
    def works_for_free(self) -> bool:
        return True


@dataclass
class ScripSimulationResult:
    """Aggregates of one simulation run."""

    utilities: np.ndarray  # total realized utility per agent
    rounds: int
    requests_made: int
    requests_satisfied: int
    final_scrip: np.ndarray
    served_for_free: int

    @property
    def satisfaction_rate(self) -> float:
        if self.requests_made == 0:
            return 0.0
        return self.requests_satisfied / self.requests_made

    def mean_utility(self, indices: Optional[Sequence[int]] = None) -> float:
        values = (
            self.utilities
            if indices is None
            else self.utilities[list(indices)]
        )
        return float(values.mean()) if len(values) else 0.0


class ScripSystem:
    """The round-based scrip economy simulator."""

    def __init__(
        self,
        agents: Sequence[ScripAgent],
        benefit: float = 1.0,
        cost: float = 0.2,
        initial_scrip: int = 2,
        discount: float = 1.0,
    ) -> None:
        """``discount`` < 1 makes utility round-discounted, as in the
        Kash–Friedman–Halpern model; it is what makes very high thresholds
        unattractive (work — and pay its cost — now, spend the scrip only
        much later)."""
        if benefit <= cost:
            raise ValueError(
                "service must be worth more than it costs (benefit > cost)"
            )
        if initial_scrip < 0:
            raise ValueError("initial scrip must be non-negative")
        if not 0.0 < discount <= 1.0:
            raise ValueError("discount must lie in (0, 1]")
        self.agents = list(agents)
        self.n = len(self.agents)
        if self.n < 2:
            raise ValueError("a scrip economy needs at least two agents")
        self.benefit = float(benefit)
        self.cost = float(cost)
        self.initial_scrip = int(initial_scrip)
        self.discount = float(discount)

    def _settle(self, scrip: np.ndarray, requester: int, worker: int) -> None:
        """Move the scrip unless the worker serves for free."""
        if not self.agents[worker].works_for_free:
            scrip[requester] -= 1
            scrip[worker] += 1

    def run(self, rounds: int, seed: int = 0) -> ScripSimulationResult:
        """Simulate ``rounds`` service opportunities."""
        rng = np.random.default_rng(seed)
        scrip = np.full(self.n, self.initial_scrip, dtype=np.int64)
        utilities = np.zeros(self.n)
        requests_made = 0
        requests_satisfied = 0
        served_for_free = 0
        weight = 1.0
        for _ in range(rounds):
            requester = int(rng.integers(self.n))
            agent = self.agents[requester]
            if agent.wants_to_spend(int(scrip[requester])):
                requests_made += 1
                volunteers = [
                    j
                    for j in range(self.n)
                    if j != requester
                    and self.agents[j].wants_to_volunteer(int(scrip[j]))
                ]
                if volunteers:
                    worker = int(
                        volunteers[int(rng.integers(len(volunteers)))]
                    )
                    requests_satisfied += 1
                    utilities[requester] += weight * self.benefit
                    utilities[worker] -= weight * self.cost
                    self._settle(scrip, requester, worker)
                    if self.agents[worker].works_for_free:
                        served_for_free += 1
            weight *= self.discount
        return ScripSimulationResult(
            utilities=utilities,
            rounds=rounds,
            requests_made=requests_made,
            requests_satisfied=requests_satisfied,
            final_scrip=scrip,
            served_for_free=served_for_free,
        )


def best_response_threshold(
    base_threshold: int,
    candidate_thresholds: Sequence[int],
    n_agents: int = 20,
    rounds: int = 20_000,
    benefit: float = 1.0,
    cost: float = 0.2,
    discount: float = 1.0,
    seed: int = 0,
) -> Tuple[int, Dict[int, float]]:
    """Empirical best-response threshold for agent 0 when everyone else
    plays ``base_threshold``.

    Returns the utility-maximizing candidate and the utility map.
    """
    utilities: Dict[int, float] = {}
    for candidate in candidate_thresholds:
        agents: List[ScripAgent] = [ThresholdAgent(int(candidate))] + [
            ThresholdAgent(int(base_threshold)) for _ in range(n_agents - 1)
        ]
        system = ScripSystem(
            agents, benefit=benefit, cost=cost, discount=discount
        )
        result = system.run(rounds, seed=seed)
        utilities[int(candidate)] = float(result.utilities[0])
    best = max(utilities, key=lambda k: utilities[k])
    return best, utilities


def find_symmetric_threshold_equilibrium(
    candidate_thresholds: Sequence[int],
    n_agents: int = 20,
    rounds: int = 20_000,
    benefit: float = 1.0,
    cost: float = 0.2,
    discount: float = 1.0,
    seed: int = 0,
    tolerance: float = 0.0,
) -> List[int]:
    """Thresholds k such that k is an (empirical) best response to all-k.

    ``tolerance`` relaxes the comparison: k qualifies when no candidate
    beats it by more than ``tolerance`` (simulation noise allowance).
    """
    equilibria = []
    for k in candidate_thresholds:
        best, utilities = best_response_threshold(
            int(k), candidate_thresholds,
            n_agents=n_agents, rounds=rounds,
            benefit=benefit, cost=cost, discount=discount, seed=seed,
        )
        if utilities[best] - utilities[int(k)] <= tolerance:
            equilibria.append(int(k))
    return equilibria
