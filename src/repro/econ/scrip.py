"""Scrip systems (Kash–Friedman–Halpern 2007), as cited in Section 5.

Model
-----
``n`` agents perform work for each other in exchange for scrip.  Each
round one uniformly random agent wants service (worth ``benefit`` to
them); satisfying a request costs the volunteer ``cost``; the price of
service is 1 scrip.  A requester must hold at least 1 scrip to pay;
volunteers are chosen uniformly among agents willing to work.

The strategy the paper highlights is the *threshold* strategy: volunteer
exactly when your scrip holdings are below a threshold ``k``.  The two
"standard irrational behaviours" named in Section 5 are also modelled:

* **hoarders** volunteer at every opportunity but never spend
  (they accumulate scrip, shrinking the effective money supply);
* **altruists** satisfy requests for free (the "posting music on Kazaa"
  analogue), which lets requesters keep their scrip.

The experiments (E11) look for a symmetric threshold equilibrium by
empirical best response, and measure how hoarders/altruists shift the
welfare of threshold agents.

Engines
-------
Populations built from the three standard agent types compile to arrays
(per-agent thresholds and hoarder/altruist flags) and simulate on a
vectorized engine; :func:`run_batch` runs many economies — e.g. every
(base-threshold, candidate, replication) cell of a best-response sweep —
simultaneously, which is what makes :func:`best_response_sweep` and
:func:`find_symmetric_threshold_equilibrium` one batched pass instead of
``|candidates|²`` separate simulations.  The original per-round Python
loop survives as :meth:`ScripSystem._reference_run`; both engines share
one randomness protocol (see :func:`_draw_randomness`) so they agree
*exactly* under identical seeds, and arbitrary :class:`ScripAgent`
subclasses fall back to the reference loop automatically.  For the exact
stationary analysis of homogeneous threshold populations see
:mod:`repro.econ.markov`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ScripAgent",
    "ThresholdAgent",
    "Hoarder",
    "Altruist",
    "ScripSystem",
    "ScripSimulationResult",
    "ScripBatchResult",
    "BestResponseSweep",
    "run_batch",
    "best_response_sweep",
    "best_response_threshold",
    "find_symmetric_threshold_equilibrium",
]


class ScripAgent:
    """Base agent: decides whether to volunteer and whether to request."""

    name = "agent"

    def wants_to_volunteer(self, scrip: int) -> bool:
        """Whether the agent is willing to work this round."""
        raise NotImplementedError

    def wants_to_spend(self, scrip: int) -> bool:
        """Whether, when chosen as this round's requester, the agent is
        willing to pay 1 scrip for service."""
        raise NotImplementedError

    @property
    def works_for_free(self) -> bool:
        """Whether requesters served by this agent keep their scrip."""
        return False


@dataclass
class ThresholdAgent(ScripAgent):
    """The paper's equilibrium strategy: work iff scrip < threshold."""

    threshold: int
    name: str = "threshold"

    def wants_to_volunteer(self, scrip: int) -> bool:
        """Work exactly while below the threshold."""
        return scrip < self.threshold

    def wants_to_spend(self, scrip: int) -> bool:
        """Pay for service whenever a scrip is available."""
        return scrip >= 1


@dataclass
class Hoarder(ScripAgent):
    """Volunteers always, never spends — drains money from circulation."""

    name: str = "hoarder"

    def wants_to_volunteer(self, scrip: int) -> bool:
        """Always willing to work."""
        return True

    def wants_to_spend(self, scrip: int) -> bool:
        """Never spends the hoard."""
        return False


@dataclass
class Altruist(ScripAgent):
    """Works for free (requesters it serves pay nothing)."""

    name: str = "altruist"

    def wants_to_volunteer(self, scrip: int) -> bool:
        """Always willing to work."""
        return True

    def wants_to_spend(self, scrip: int) -> bool:
        """Always requests service when selected."""
        return True

    @property
    def works_for_free(self) -> bool:
        """Requesters served by an altruist keep their scrip."""
        return True


@dataclass
class ScripSimulationResult:
    """Aggregates of one simulation run."""

    utilities: np.ndarray  # total realized utility per agent
    rounds: int
    requests_made: int
    requests_satisfied: int
    final_scrip: np.ndarray
    served_for_free: int

    @property
    def satisfaction_rate(self) -> float:
        """Fraction of requests that found a volunteer."""
        if self.requests_made == 0:
            return 0.0
        return self.requests_satisfied / self.requests_made

    def mean_utility(self, indices: Optional[Sequence[int]] = None) -> float:
        """Mean realized utility over ``indices`` (default: everyone)."""
        values = (
            self.utilities
            if indices is None
            else self.utilities[list(indices)]
        )
        return float(values.mean()) if len(values) else 0.0


@dataclass
class ScripBatchResult:
    """Aggregates of many economies simulated in one batched pass.

    Axis 0 indexes the economy (one per entry of ``seeds``); per-agent
    arrays have shape ``(n_economies, n_agents)``.
    """

    utilities: np.ndarray
    final_scrip: np.ndarray
    requests_made: np.ndarray
    requests_satisfied: np.ndarray
    served_for_free: np.ndarray
    rounds: int
    seeds: Tuple[int, ...]

    @property
    def n_economies(self) -> int:
        """Number of economies in the batch."""
        return self.utilities.shape[0]

    @property
    def satisfaction_rates(self) -> np.ndarray:
        """Per-economy fraction of requests that found a volunteer."""
        made = self.requests_made
        return np.divide(
            self.requests_satisfied,
            made,
            out=np.zeros(len(made)),
            where=made > 0,
        )

    def result(self, economy: int) -> ScripSimulationResult:
        """Slice one economy out as a :class:`ScripSimulationResult`."""
        return ScripSimulationResult(
            utilities=self.utilities[economy].copy(),
            rounds=self.rounds,
            requests_made=int(self.requests_made[economy]),
            requests_satisfied=int(self.requests_satisfied[economy]),
            final_scrip=self.final_scrip[economy].copy(),
            served_for_free=int(self.served_for_free[economy]),
        )


def _validate_economy(
    benefit: float, cost: float, initial_scrip: int, discount: float
) -> None:
    """Shared parameter validation for both engines."""
    if benefit <= cost:
        raise ValueError(
            "service must be worth more than it costs (benefit > cost)"
        )
    if initial_scrip < 0:
        raise ValueError("initial scrip must be non-negative")
    if not 0.0 < discount <= 1.0:
        raise ValueError("discount must lie in (0, 1]")


def _compile_populations(
    populations: Sequence[Sequence[ScripAgent]],
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Compile agent populations to engine arrays, or ``None``.

    Returns ``(thresholds, never_spends, spends_broke, works_free)``,
    each of shape ``(n_economies, n_agents)``, for populations built
    entirely from the three standard agent types.  Any other
    :class:`ScripAgent` subclass makes the population non-compilable
    (``None``), in which case callers fall back to the reference loop —
    exact type checks keep subclasses that override behaviour honest.
    """
    n_econ = len(populations)
    n = len(populations[0])
    thresholds = np.empty((n_econ, n))
    never_spends = np.zeros((n_econ, n), dtype=bool)
    spends_broke = np.zeros((n_econ, n), dtype=bool)
    works_free = np.zeros((n_econ, n), dtype=bool)
    for b, agents in enumerate(populations):
        for j, agent in enumerate(agents):
            kind = type(agent)
            if kind is ThresholdAgent:
                thresholds[b, j] = float(agent.threshold)
            elif kind is Hoarder:
                thresholds[b, j] = np.inf
                never_spends[b, j] = True
            elif kind is Altruist:
                thresholds[b, j] = np.inf
                spends_broke[b, j] = True
                works_free[b, j] = True
            else:
                return None
    return thresholds, never_spends, spends_broke, works_free


def _draw_randomness(
    n: int, rounds: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The shared randomness protocol of both engines.

    Per economy: one generator seeded with ``seed`` draws the round's
    requesters up front (``rounds`` uniform integers), then a float32
    selection key per (round, agent).  Each round's worker is the
    willing non-requester with the highest key — uniform over the
    willing set — so both engines consume randomness identically and
    agree exactly under the same seed.
    """
    rng = np.random.default_rng(seed)
    requesters = rng.integers(n, size=rounds)
    keys = rng.random((rounds, n), dtype=np.float32)
    return requesters, keys


def _simulate_batch(
    compiled: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    rounds: int,
    seeds: Sequence[int],
    benefit: float,
    cost: float,
    initial_scrip,
    discount: float,
) -> ScripBatchResult:
    """The vectorized engine: all economies advance one round per step.

    Scrip state lives in one ``(B, n)`` array; each round is a handful
    of broadcast operations (willingness mask, keyed argmax worker
    selection, masked settlement), with requester keys pre-poisoned so
    no per-round exclusion pass is needed.  Utility accumulation is
    deferred to a single interleaved ``bincount`` pass that reproduces
    the reference loop's float operation order exactly.
    """
    thresholds, never_spends, spends_broke, works_free = compiled
    n_econ, n = thresholds.shape
    req = np.empty((rounds, n_econ), dtype=np.int64)
    keys = np.empty((rounds, n_econ, n), dtype=np.float32)
    for b, seed in enumerate(seeds):
        requesters_b, keys_b = _draw_randomness(n, rounds, int(seed))
        req[:, b] = requesters_b
        keys[:, b, :] = keys_b

    base = np.arange(n_econ) * n
    reqf = req + base  # flat (economy, requester) index per round
    if rounds:
        keys.reshape(rounds, n_econ * n)[
            np.arange(rounds)[:, None], reqf
        ] = -1.0

    scrip = np.empty((n_econ, n))
    scrip[...] = np.asarray(initial_scrip, dtype=float).reshape(-1, 1)
    sf = scrip.ravel()
    neverf = never_spends.ravel()
    brokef = spends_broke.ravel()
    freef = works_free.ravel()
    any_special_spend = bool(never_spends.any() or spends_broke.any())
    any_free = bool(works_free.any())

    act_buf = np.empty((rounds, n_econ), dtype=bool)
    spend_buf = np.empty((rounds, n_econ), dtype=bool)
    wf_buf = np.empty((rounds, n_econ), dtype=np.int64)
    NEG = np.float32(-1.0)
    ZERO = np.float32(0.0)
    lt, where, add = np.less, np.where, np.add
    ge, land = np.greater_equal, np.logical_and
    for kt, rf, ab, sb, wb in zip(keys, reqf, act_buf, spend_buf, wf_buf):
        keyed = where(lt(scrip, thresholds), kt, NEG)
        wfl = add(keyed.argmax(axis=1), base, out=wb)
        ge(sf[rf], 1.0, out=sb)
        if any_special_spend:
            sb |= brokef[rf]
            sb &= ~neverf[rf]
        land(sb, ge(keyed.ravel()[wfl], ZERO), out=ab)
        if any_free:
            pay = ab & ~freef[wfl]
            sf[rf] -= pay
            sf[wfl] += pay
        else:
            sf[rf] -= ab
            sf[wfl] += ab

    weights = discount ** np.arange(rounds)
    # One bincount over (requester, worker) events interleaved in round
    # order reproduces the reference loop's per-agent float summation
    # order exactly (inactive rounds contribute an exact +0.0).
    gains = (weights[:, None] * benefit) * act_buf
    losses = (weights[:, None] * -cost) * act_buf
    events = np.stack([reqf, wf_buf], axis=1).ravel()
    amounts = np.stack([gains, losses], axis=1).ravel()
    utilities = np.bincount(
        events, weights=amounts, minlength=n_econ * n
    ).reshape(n_econ, n)

    free_served = (
        (freef[wf_buf] & act_buf).sum(axis=0)
        if any_free
        else np.zeros(n_econ, dtype=np.int64)
    )
    return ScripBatchResult(
        utilities=utilities,
        final_scrip=scrip.astype(np.int64),
        requests_made=spend_buf.sum(axis=0),
        requests_satisfied=act_buf.sum(axis=0),
        served_for_free=free_served,
        rounds=rounds,
        seeds=tuple(int(s) for s in seeds),
    )


def _simulate_single(
    compiled: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    rounds: int,
    seed: int,
    benefit: float,
    cost: float,
    initial_scrip: int,
    discount: float,
) -> ScripSimulationResult:
    """One-economy fast path: scalar state access, array worker selection.

    Applies exactly the same per-round formulas as
    :func:`_simulate_batch` (same draws, same keyed argmax, same float
    operations in the same order), but indexes the single economy with
    Python scalars instead of per-round gather/scatter arrays — roughly
    twice the throughput at batch size 1.
    """
    thresholds, never_spends, spends_broke, works_free = compiled
    n = thresholds.shape[1]
    thr = thresholds[0]
    never = never_spends[0]
    broke = spends_broke[0]
    free = works_free[0]
    requesters, keys = _draw_randomness(n, rounds, seed)
    if rounds:
        keys[np.arange(rounds), requesters] = -1.0
    weights = discount ** np.arange(rounds)
    scrip = np.full(n, float(initial_scrip))
    utilities = np.zeros(n)
    requests_made = 0
    requests_satisfied = 0
    served_for_free = 0
    lt, where = np.less, np.where
    NEG = np.float32(-1.0)
    for t in range(rounds):
        r = requesters[t]
        if never[r] or not (scrip[r] >= 1.0 or broke[r]):
            continue
        requests_made += 1
        keyed = where(lt(scrip, thr), keys[t], NEG)
        w = keyed.argmax()
        if keyed[w] < 0.0:
            continue
        requests_satisfied += 1
        utilities[r] += weights[t] * benefit
        utilities[w] += weights[t] * -cost
        if free[w]:
            served_for_free += 1
        else:
            scrip[r] -= 1.0
            scrip[w] += 1.0
    return ScripSimulationResult(
        utilities=utilities,
        rounds=rounds,
        requests_made=requests_made,
        requests_satisfied=requests_satisfied,
        final_scrip=scrip.astype(np.int64),
        served_for_free=served_for_free,
    )


def run_batch(
    populations: Sequence[Sequence[ScripAgent]],
    rounds: int,
    seeds: Sequence[int],
    benefit: float = 1.0,
    cost: float = 0.2,
    initial_scrip=2,
    discount: float = 1.0,
) -> ScripBatchResult:
    """Simulate many scrip economies simultaneously on the array engine.

    ``populations[b]`` and ``seeds[b]`` define economy ``b``; all
    economies share ``rounds`` and the pricing parameters, while
    ``initial_scrip`` may be a scalar or one value per economy.  Column
    ``b`` of the result is exactly ``ScripSystem(populations[b]).run(
    rounds, seeds[b])`` — batching changes wall-clock, never outcomes.
    Populations must consist of the three standard agent types (other
    :class:`ScripAgent` subclasses require the per-economy loop engine).
    """
    if len(populations) != len(seeds):
        raise ValueError("need exactly one seed per population")
    if not populations:
        raise ValueError("need at least one population")
    n = len(populations[0])
    if n < 2:
        raise ValueError("a scrip economy needs at least two agents")
    if any(len(agents) != n for agents in populations):
        raise ValueError("all batched populations must share one size")
    initial = np.broadcast_to(
        np.asarray(initial_scrip, dtype=int), (len(populations),)
    )
    _validate_economy(benefit, cost, int(initial.min()), discount)
    compiled = _compile_populations(populations)
    if compiled is None:
        raise TypeError(
            "run_batch requires Threshold/Hoarder/Altruist agents; "
            "custom ScripAgent subclasses run via ScripSystem.run"
        )
    return _simulate_batch(
        compiled, rounds, seeds, benefit, cost, initial, discount
    )


class ScripSystem:
    """The round-based scrip economy simulator."""

    def __init__(
        self,
        agents: Sequence[ScripAgent],
        benefit: float = 1.0,
        cost: float = 0.2,
        initial_scrip: int = 2,
        discount: float = 1.0,
    ) -> None:
        """``discount`` < 1 makes utility round-discounted, as in the
        Kash–Friedman–Halpern model; it is what makes very high thresholds
        unattractive (work — and pay its cost — now, spend the scrip only
        much later)."""
        _validate_economy(benefit, cost, initial_scrip, discount)
        self.agents = list(agents)
        self.n = len(self.agents)
        if self.n < 2:
            raise ValueError("a scrip economy needs at least two agents")
        self.benefit = float(benefit)
        self.cost = float(cost)
        self.initial_scrip = int(initial_scrip)
        self.discount = float(discount)
        self._compiled = _compile_populations([self.agents])

    def run(self, rounds: int, seed: int = 0) -> ScripSimulationResult:
        """Simulate ``rounds`` service opportunities.

        Standard populations run on the vectorized engine; populations
        containing custom :class:`ScripAgent` subclasses fall back to
        the (identical-output) reference loop.
        """
        if self._compiled is None:
            return self._reference_run(rounds, seed)
        return _simulate_single(
            self._compiled,
            rounds,
            seed,
            self.benefit,
            self.cost,
            self.initial_scrip,
            self.discount,
        )

    def run_batch(
        self, rounds: int, seeds: Sequence[int]
    ) -> ScripBatchResult:
        """Replicate this economy under many seeds in one batched pass."""
        return run_batch(
            [self.agents] * len(seeds),
            rounds,
            seeds,
            benefit=self.benefit,
            cost=self.cost,
            initial_scrip=self.initial_scrip,
            discount=self.discount,
        )

    def _settle(self, scrip: np.ndarray, requester: int, worker: int) -> None:
        """Move the scrip unless the worker serves for free."""
        if not self.agents[worker].works_for_free:
            scrip[requester] -= 1
            scrip[worker] += 1

    def _reference_run(self, rounds: int, seed: int = 0) -> ScripSimulationResult:
        """The per-round loop engine (oracle for the vectorized path).

        Consumes randomness through the same protocol as the array
        engine (:func:`_draw_randomness`), so for standard populations
        the two agree exactly; it also handles arbitrary
        :class:`ScripAgent` subclasses via method dispatch.
        """
        requesters, keys = _draw_randomness(self.n, rounds, seed)
        weights = self.discount ** np.arange(rounds)
        scrip = np.full(self.n, self.initial_scrip, dtype=np.int64)
        utilities = np.zeros(self.n)
        requests_made = 0
        requests_satisfied = 0
        served_for_free = 0
        for t in range(rounds):
            requester = int(requesters[t])
            agent = self.agents[requester]
            if not agent.wants_to_spend(int(scrip[requester])):
                continue
            requests_made += 1
            best_key = np.float32(-1.0)
            worker = -1
            round_keys = keys[t]
            for j in range(self.n):
                if j == requester:
                    continue
                if self.agents[j].wants_to_volunteer(int(scrip[j])):
                    key = round_keys[j]
                    if key > best_key or worker < 0:
                        best_key = key
                        worker = j
            if worker >= 0:
                requests_satisfied += 1
                utilities[requester] += weights[t] * self.benefit
                utilities[worker] += weights[t] * -self.cost
                self._settle(scrip, requester, worker)
                if self.agents[worker].works_for_free:
                    served_for_free += 1
        return ScripSimulationResult(
            utilities=utilities,
            rounds=rounds,
            requests_made=requests_made,
            requests_satisfied=requests_satisfied,
            final_scrip=scrip,
            served_for_free=served_for_free,
        )


def _sweep_seed(
    base_seed: int,
    base_threshold: int,
    candidate: int,
    replication: int,
    common_random_numbers: bool,
) -> int:
    """Per-cell seed for a best-response sweep.

    Derived with the experiment runner's sha256 scheme so each
    (base, candidate, replication) cell gets an independent stream;
    under common random numbers the candidate is dropped from the
    derivation, giving every candidate the same stream.
    """
    from repro.experiments.runner import case_seed

    params: Dict[str, int] = {
        "base_threshold": int(base_threshold),
        "replication": int(replication),
    }
    if not common_random_numbers:
        params["candidate"] = int(candidate)
    return case_seed(base_seed, "scrip_best_response", params)


@dataclass
class BestResponseSweep:
    """The full utility tensor of a batched best-response sweep.

    ``utilities[i, j, r]`` is the deviant's (agent 0's) realized utility
    when everyone else plays ``bases[i]``, the deviant plays
    ``candidates[j]``, and the cell runs under replication ``r``'s seed.
    """

    bases: Tuple[int, ...]
    candidates: Tuple[int, ...]
    utilities: np.ndarray
    seeds: np.ndarray

    @property
    def mean_utilities(self) -> np.ndarray:
        """Per-(base, candidate) deviant utility, averaged over replications."""
        return self.utilities.mean(axis=2)

    @property
    def std_utilities(self) -> np.ndarray:
        """Per-(base, candidate) standard deviation across replications."""
        return self.utilities.std(axis=2)

    def best_response(self, base_threshold: int) -> int:
        """The utility-maximizing candidate against all-``base_threshold``."""
        i = self.bases.index(int(base_threshold))
        return self.candidates[int(np.argmax(self.mean_utilities[i]))]

    def utility_map(self, base_threshold: int) -> Dict[int, float]:
        """Candidate → mean deviant utility against ``base_threshold``."""
        i = self.bases.index(int(base_threshold))
        means = self.mean_utilities[i]
        return {c: float(means[j]) for j, c in enumerate(self.candidates)}

    def equilibria(self, tolerance: float = 0.0) -> List[int]:
        """Bases (also candidates) no candidate beats by > ``tolerance``."""
        means = self.mean_utilities
        out = []
        for i, k in enumerate(self.bases):
            if k not in self.candidates:
                continue
            j = self.candidates.index(k)
            if means[i].max() - means[i, j] <= tolerance:
                out.append(k)
        return out


def best_response_sweep(
    base_thresholds: Sequence[int],
    candidate_thresholds: Sequence[int],
    n_agents: int = 20,
    rounds: int = 20_000,
    benefit: float = 1.0,
    cost: float = 0.2,
    discount: float = 1.0,
    seed: int = 0,
    replications: int = 1,
    common_random_numbers: bool = False,
) -> BestResponseSweep:
    """Every (base, candidate, replication) cell in one batched pass.

    For each base threshold, agent 0 deviates to each candidate while
    the other ``n_agents - 1`` agents play the base; all
    ``len(bases) × len(candidates) × replications`` economies simulate
    simultaneously on the array engine.  Cell seeds come from
    :func:`_sweep_seed`; ``common_random_numbers=True`` gives all
    candidates (within one base and replication) the same stream, a
    variance-reduction trade-off — utility *differences* between
    candidates are estimated with far less noise because they face
    identical request sequences, at the price of correlated (not
    independent) utility levels across candidates.
    """
    bases = [int(b) for b in base_thresholds]
    candidates = [int(c) for c in candidate_thresholds]
    if replications < 1:
        raise ValueError("need at least one replication")
    populations = []
    seeds = []
    for base in bases:
        others = [ThresholdAgent(base) for _ in range(n_agents - 1)]
        for candidate in candidates:
            for rep in range(replications):
                populations.append([ThresholdAgent(candidate)] + others)
                seeds.append(
                    _sweep_seed(seed, base, candidate, rep, common_random_numbers)
                )
    batch = run_batch(
        populations,
        rounds,
        seeds,
        benefit=benefit,
        cost=cost,
        discount=discount,
    )
    shape = (len(bases), len(candidates), replications)
    return BestResponseSweep(
        bases=tuple(bases),
        candidates=tuple(candidates),
        utilities=batch.utilities[:, 0].reshape(shape),
        seeds=np.asarray(seeds).reshape(shape),
    )


def best_response_threshold(
    base_threshold: int,
    candidate_thresholds: Sequence[int],
    n_agents: int = 20,
    rounds: int = 20_000,
    benefit: float = 1.0,
    cost: float = 0.2,
    discount: float = 1.0,
    seed: int = 0,
    replications: int = 1,
    common_random_numbers: bool = False,
) -> Tuple[int, Dict[int, float]]:
    """Empirical best-response threshold for agent 0 when everyone else
    plays ``base_threshold``.

    Candidates are simulated in one batched pass, each cell under its
    own sha256-derived seed (``replications`` > 1 averages several
    seeds per candidate); set ``common_random_numbers=True`` to instead
    evaluate all candidates against identical random streams — see
    :func:`best_response_sweep` for the variance trade-off.  Returns the
    utility-maximizing candidate and the (mean) utility map.
    """
    sweep = best_response_sweep(
        [base_threshold],
        candidate_thresholds,
        n_agents=n_agents,
        rounds=rounds,
        benefit=benefit,
        cost=cost,
        discount=discount,
        seed=seed,
        replications=replications,
        common_random_numbers=common_random_numbers,
    )
    return sweep.best_response(base_threshold), sweep.utility_map(base_threshold)


def find_symmetric_threshold_equilibrium(
    candidate_thresholds: Sequence[int],
    n_agents: int = 20,
    rounds: int = 20_000,
    benefit: float = 1.0,
    cost: float = 0.2,
    discount: float = 1.0,
    seed: int = 0,
    tolerance: float = 0.0,
    replications: int = 1,
) -> List[int]:
    """Thresholds k such that k is an (empirical) best response to all-k.

    One batched sweep over every (base, candidate, replication) cell.
    ``tolerance`` relaxes the comparison: k qualifies when no candidate
    beats it by more than ``tolerance`` (simulation noise allowance).
    """
    sweep = best_response_sweep(
        candidate_thresholds,
        candidate_thresholds,
        n_agents=n_agents,
        rounds=rounds,
        benefit=benefit,
        cost=cost,
        discount=discount,
        seed=seed,
        replications=replications,
    )
    return sweep.equilibria(tolerance)
