"""Gnutella-style file sharing and free riding (Section 2's example).

Two layers:

* :func:`sharing_game_small` — the file-sharing game with *standard*
  utilities as a small :class:`NormalFormGame`: whether you can get a
  file depends only on whether others share, and sharing has a cost, so
  "share nothing" strictly dominates and universal free riding is the
  unique Nash equilibrium.  This is the paper's "no rational agent should
  share files".

* :class:`SharingPopulation` — the heterogeneous-utility population that
  explains the observed behaviour: each user ``i`` has a sharing cost
  ``c_i`` and a "kick" ``theta_i`` from being a provider ("perhaps
  sharing hosts get a big kick out of being the ones that provide
  everyone else with the music").  Since availability does not depend on
  one's own action, sharing is dominant for ``theta_i > c_i`` and
  not sharing is dominant otherwise; the equilibrium is immediate.  The
  population parameters are calibrated (see defaults) so the equilibrium
  reproduces the two Adar–Huberman statistics the paper quotes: almost
  70% of users share no files, and the top 1% of sharing hosts serve
  nearly 50% of responses.

This substitutes synthetic data for the (unavailable) year-2000 Gnutella
crawl; the substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.games.normal_form import NormalFormGame

__all__ = ["sharing_game_small", "SharingPopulation", "SharingOutcome"]

SHARE = 1
FREE_RIDE = 0


def sharing_game_small(
    n_players: int = 4,
    availability_benefit: float = 1.0,
    sharing_cost: float = 0.3,
) -> NormalFormGame:
    """File sharing with standard utilities: free riding dominates.

    Player ``i``'s utility is ``availability_benefit`` times the fraction
    of *other* players who share, minus ``sharing_cost`` if ``i`` shares.
    Because the benefit ignores one's own action, not sharing strictly
    dominates; the unique Nash equilibrium is nobody sharing.
    """
    if n_players < 2:
        raise ValueError("need at least two users")

    def payoff_fn(profile: Tuple[int, ...]):
        """Per-player utilities of one pure sharing profile."""
        out = []
        for i, action in enumerate(profile):
            others = [a for j, a in enumerate(profile) if j != i]
            availability = sum(others) / len(others)
            utility = availability_benefit * availability
            if action == SHARE:
                utility -= sharing_cost
            out.append(utility)
        return out

    return NormalFormGame.from_payoff_function(
        n_players,
        [2] * n_players,
        payoff_fn,
        action_labels=[["free_ride", "share"]] * n_players,
        name=f"file sharing (n={n_players})",
    )


@dataclass
class SharingOutcome:
    """Equilibrium statistics of a sharing population."""

    n_users: int
    sharers: np.ndarray  # boolean mask
    responses: np.ndarray  # per-user responses served at equilibrium
    fraction_free_riders: float
    top1pct_response_share: float

    def summary(self) -> str:
        """One-line rendering of the Adar-Huberman-style statistics."""
        return (
            f"{self.n_users} users: {self.fraction_free_riders:.1%} share "
            f"nothing; top 1% of hosts serve "
            f"{self.top1pct_response_share:.1%} of responses"
        )


class SharingPopulation:
    """A heterogeneous population whose equilibrium matches Adar–Huberman.

    Parameters
    ----------
    n_users:
        Population size.
    kick_scale:
        Scale of the exponential "kick" distribution θ_i.
    cost_quantile:
        Sharing cost, expressed as the quantile of θ it cuts at: with
        ``cost_quantile = 0.7`` exactly the top 30% of kicks exceed the
        cost, reproducing "almost 70 percent of users share no files".
    pareto_alpha:
        Tail exponent of the shared-library-size (hence response-load)
        distribution among sharers.  Together with ``library_cap``
        (maximum library size; Pareto draws are truncated there) the
        default puts roughly half the total response load on the top 1%
        of all hosts, reproducing "nearly 50 percent of responses are
        from the top 1 percent of sharing hosts".
    """

    def __init__(
        self,
        n_users: int = 10_000,
        kick_scale: float = 1.0,
        cost_quantile: float = 0.7,
        pareto_alpha: float = 1.1,
        library_cap: float = 1_000.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 < cost_quantile < 1.0:
            raise ValueError("cost_quantile must lie strictly inside (0, 1)")
        if pareto_alpha <= 0:
            raise ValueError("pareto_alpha must be positive")
        if library_cap <= 1:
            raise ValueError("library_cap must exceed 1")
        self.n_users = int(n_users)
        self.kick_scale = float(kick_scale)
        self.cost_quantile = float(cost_quantile)
        self.pareto_alpha = float(pareto_alpha)
        self.library_cap = float(library_cap)
        self.seed = int(seed)

    def equilibrium(self) -> SharingOutcome:
        """Play the dominant strategies and tally response load.

        Sharing is dominant iff θ_i exceeds the cost; response load per
        sharer is proportional to their (Pareto-distributed) library
        size; non-sharers serve nothing.
        """
        rng = np.random.default_rng(self.seed)
        kicks = rng.exponential(self.kick_scale, size=self.n_users)
        cost = -self.kick_scale * np.log(1.0 - self.cost_quantile)
        sharers = kicks > cost
        library = np.zeros(self.n_users)
        n_sharers = int(sharers.sum())
        if n_sharers:
            draws = rng.pareto(self.pareto_alpha, size=n_sharers) + 1.0
            # Real hosts have bounded libraries; truncating the Pareto tail
            # keeps one lucky draw from absorbing the whole response load.
            library[sharers] = np.minimum(draws, self.library_cap)
        total = library.sum()
        responses = library / total if total > 0 else library
        top1 = max(1, int(np.ceil(self.n_users * 0.01)))
        top_share = float(np.sort(responses)[::-1][:top1].sum())
        return SharingOutcome(
            n_users=self.n_users,
            sharers=sharers,
            responses=responses,
            fraction_free_riders=float(1.0 - n_sharers / self.n_users),
            top1pct_response_share=top_share,
        )

    def is_equilibrium_strict(self) -> bool:
        """Sanity check: each user's dominant action is strict (no θ_i is
        exactly at the cost), so the profile is the unique equilibrium."""
        rng = np.random.default_rng(self.seed)
        kicks = rng.exponential(self.kick_scale, size=self.n_users)
        cost = -self.kick_scale * np.log(1.0 - self.cost_quantile)
        return bool(np.all(np.abs(kicks - cost) > 0))
