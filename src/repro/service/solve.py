"""Synchronous game solving for the HTTP ``/v1/solve`` endpoint.

Small normal-form games round-trip as JSON
(:meth:`repro.games.normal_form.NormalFormGame.to_json_obj`) and are
solved inline by the existing vectorized solvers — pure-equilibrium
enumeration, the zero-sum LP, and two-player fictitious play.  Requests
either carry an explicit payoff tensor or name one of the paper's
classic games; responses are flat JSON with mixed strategies as plain
lists.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import numpy as np

from repro.games import classics
from repro.games.normal_form import NormalFormGame
from repro.solvers import fictitious_play, pure_equilibria, zero_sum_equilibrium

__all__ = ["CLASSIC_GAMES", "game_from_request", "solve_request"]

#: Named zero-argument game factories a request may refer to by name.
CLASSIC_GAMES: Dict[str, Callable[[], NormalFormGame]] = {
    "prisoners_dilemma": classics.prisoners_dilemma,
    "matching_pennies": classics.matching_pennies,
    "roshambo": classics.roshambo,
    "stag_hunt": classics.stag_hunt,
    "chicken": classics.chicken,
    "battle_of_the_sexes": classics.battle_of_the_sexes,
}

#: Parameterized classics taking one ``n_players`` argument.
SIZED_CLASSIC_GAMES: Dict[str, Callable[[int], NormalFormGame]] = {
    "coordination_01_game": classics.coordination_01_game,
    "bargaining_game": classics.bargaining_game,
}

_MAX_PROFILES = 1_000_000
_MAX_CLASSIC_PLAYERS = 16


def game_from_request(body: Dict[str, Any]) -> NormalFormGame:
    """Materialize the game a solve request describes.

    ``{"game": {...}}`` is an explicit :meth:`NormalFormGame.to_json_obj`
    payload; ``{"classic": "matching_pennies"}`` names a factory from
    :data:`CLASSIC_GAMES` (sized classics additionally take
    ``"n_players"``).  Profile count is capped — the endpoint is for
    *small* games; sweeps belong in jobs.
    """
    if ("game" in body) == ("classic" in body):
        raise ValueError("request needs exactly one of 'game' or 'classic'")
    if "game" in body:
        game = NormalFormGame.from_json_obj(body["game"])
    else:
        name = body["classic"]
        if name in CLASSIC_GAMES:
            game = CLASSIC_GAMES[name]()
        elif name in SIZED_CLASSIC_GAMES:
            n_players = int(body.get("n_players", 2))
            # Checked BEFORE the factory runs: the payoff tensor is
            # exponential in n_players, so a large request must be
            # rejected without ever materializing it.
            if not 2 <= n_players <= _MAX_CLASSIC_PLAYERS:
                raise ValueError(
                    f"n_players must be in [2, {_MAX_CLASSIC_PLAYERS}]"
                )
            game = SIZED_CLASSIC_GAMES[name](n_players)
        else:
            known = sorted(CLASSIC_GAMES) + sorted(SIZED_CLASSIC_GAMES)
            raise ValueError(
                f"unknown classic {name!r}; known: {', '.join(known)}"
            )
    profiles = 1
    for m in game.num_actions:
        profiles *= m
    if profiles > _MAX_PROFILES:
        raise ValueError(
            f"game has {profiles} pure profiles; /solve caps at "
            f"{_MAX_PROFILES} — submit a sweep instead"
        )
    return game


def _solve_pure(game: NormalFormGame, body: Dict[str, Any]) -> Dict[str, Any]:
    """All pure Nash equilibria (vectorized enumeration)."""
    equilibria = pure_equilibria(game)
    return {
        "equilibria": [list(profile) for profile in equilibria],
        "count": len(equilibria),
    }


def _solve_zerosum(game: NormalFormGame, body: Dict[str, Any]) -> Dict[str, Any]:
    """Minimax strategies and value of a 2-player zero-sum game (LP)."""
    profile, value = zero_sum_equilibrium(game)
    return {
        "value": value,
        "strategies": [vec.tolist() for vec in profile],
    }


def _solve_fictitious_play(
    game: NormalFormGame, body: Dict[str, Any]
) -> Dict[str, Any]:
    """Empirical mixture after ``iterations`` of fictitious play."""
    iterations = int(body.get("iterations", 1000))
    if not 1 <= iterations <= 1_000_000:
        raise ValueError("iterations must be in [1, 1000000]")
    tie_break = body.get("tie_break", "first")
    rng = np.random.default_rng(int(body.get("seed", 0)))
    result = fictitious_play(
        game, iterations=iterations, rng=rng, tie_break=tie_break
    )
    return {
        "empirical": [vec.tolist() for vec in result.empirical],
        "iterations": result.iterations,
        "regret": result.regret,
        "last_actions": list(result.last_actions),
    }


_METHODS = {
    "pure": _solve_pure,
    "zerosum": _solve_zerosum,
    "fictitious_play": _solve_fictitious_play,
}


def solve_request(body: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one ``/v1/solve`` body to a solver; returns the response.

    The response echoes the method and the game's identity (name, shape)
    next to the method-specific solution fields.
    """
    method = body.get("method", "pure")
    if method not in _METHODS:
        raise ValueError(
            f"unknown method {method!r}; known: {', '.join(sorted(_METHODS))}"
        )
    game = game_from_request(body)
    solution = _METHODS[method](game, body)
    return {
        "method": method,
        "game": {
            "name": game.name,
            "n_players": game.n_players,
            "num_actions": list(game.num_actions),
        },
        **solution,
    }
