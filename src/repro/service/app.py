"""Stdlib HTTP JSON API over the job manager and result store.

A ``ThreadingHTTPServer`` (one thread per connection, no dependencies
beyond the standard library) exposing:

====== =========================== ==========================================
Method Path                        Meaning
====== =========================== ==========================================
GET    ``/v1/health``              liveness + store/job-manager counters
GET    ``/v1/scenarios``           the scenario registry listing
POST   ``/v1/sweeps``              submit a sweep; returns the job id
GET    ``/v1/jobs``                all jobs, oldest first
GET    ``/v1/jobs/<id>``           one job's status/progress payload
GET    ``/v1/jobs/<id>/results``   finished job's results (409 until done)
GET    ``/v1/results/<key>``       one cached blob, verbatim on-disk bytes
GET    ``/v1/store/stats``         store counters (hits/misses/disk bytes)
POST   ``/v1/solve``               synchronous small-game solving
POST   ``/v1/workers``             register a cluster worker
POST   ``/v1/lease``               lease one work unit to a worker
POST   ``/v1/complete``            post a unit's result rows (quorum vote)
GET    ``/v1/cluster``             cluster scheduler counters + workers
====== =========================== ==========================================

Sweep submission replies immediately (HTTP 202) with the job id; heavy
work happens on the manager's worker threads and process pool.  The
``/v1/results/<key>`` fetch serves the store's file bytes unmodified, so
a warm client read is byte-identical to what the cold computation wrote.
The cluster endpoints forward their JSON bodies verbatim into the
attached :class:`~repro.cluster.coordinator.ClusterCoordinator` (404
when the server runs without one).

Lifecycle: the server owns its :class:`JobManager` — ``server_close()``
shuts the manager (and its persistent process pool) down, and the
blocking ``serve`` entry point converts SIGTERM into the same clean
path, so a stopped server never leaks worker processes.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.experiments.results import format_table
from repro.service.jobs import JobManager, SweepRequest, TooManyJobsError
from repro.service.solve import solve_request
from repro.service.store import ResultStore

__all__ = [
    "ApiError",
    "ManagedHTTPServer",
    "make_server",
    "start_server",
    "serve_forever",
]

_MAX_BODY_BYTES = 8 * 1024 * 1024


class ApiError(Exception):
    """An HTTP-visible request failure: status code plus message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound (via ``make_server``) to one JobManager."""

    manager: JobManager = None  # type: ignore[assignment]
    quiet: bool = True
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging unless ``quiet`` is off."""
        if not self.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Any) -> None:
        """Write one JSON response with correct framing headers."""
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self._send_bytes(status, body, "application/json")

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        """Write raw response bytes (used verbatim for store blobs)."""
        self._drain_request_body()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _request_body_length(self) -> int:
        """Declared request body length (chunked encoding forces close)."""
        if self.headers.get("Transfer-Encoding"):
            self.close_connection = True
            return 0
        try:
            return int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True
            return 0

    def _drain_request_body(self) -> None:
        """Consume any unread request body before responding.

        This connection speaks keep-alive HTTP/1.1: if a request errors
        before its body was read (unknown route, malformed fields), the
        unread bytes would otherwise be parsed as the *next* request
        line, desyncing every later exchange on the socket.  Oversized
        bodies aren't worth reading — close the connection instead.
        """
        length = self._request_body_length()
        remaining = length - self._body_consumed
        if remaining <= 0:
            return
        if length > _MAX_BODY_BYTES:
            self.close_connection = True
            return
        self.rfile.read(remaining)
        self._body_consumed = length

    def _read_json_body(self) -> Dict[str, Any]:
        """Parse the request body as a JSON object (ApiError on garbage)."""
        length = self._request_body_length()
        if length > _MAX_BODY_BYTES:
            raise ApiError(413, "request body too large")
        raw = self.rfile.read(length) if length else b""
        self._body_consumed = length
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise ApiError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise ApiError(400, "JSON body must be an object")
        return body

    def _dispatch(self, method: str) -> None:
        """Route one request; uniform JSON error envelope on failure."""
        self._body_consumed = 0
        try:
            handler, args = self._route(method)
            handler(*args)
        except ApiError as exc:
            self._send_json(exc.status, {"error": exc.message})
        except TooManyJobsError as exc:
            self._send_json(503, {"error": str(exc)})
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            status = 404 if isinstance(exc, KeyError) else 400
            self._send_json(status, {"error": str(message)})
        except Exception as exc:  # pragma: no cover - defensive 500
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route(self, method: str) -> Tuple[Any, tuple]:
        """Resolve (handler, args) for the request path."""
        path = self.path.split("?", 1)[0].rstrip("/")
        parts = [p for p in path.split("/") if p]
        if method == "GET":
            if parts == ["v1", "health"]:
                return self._get_health, ()
            if parts == ["v1", "scenarios"]:
                return self._get_scenarios, ()
            if parts == ["v1", "jobs"]:
                return self._get_jobs, ()
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                return self._get_job, (parts[2],)
            if (
                len(parts) == 4
                and parts[:2] == ["v1", "jobs"]
                and parts[3] == "results"
            ):
                return self._get_job_results, (parts[2],)
            if len(parts) == 3 and parts[:2] == ["v1", "results"]:
                return self._get_result_blob, (parts[2],)
            if parts == ["v1", "store", "stats"]:
                return self._get_store_stats, ()
            if parts == ["v1", "cluster"]:
                return self._get_cluster, ()
        if method == "POST":
            if parts == ["v1", "sweeps"]:
                return self._post_sweep, ()
            if parts == ["v1", "solve"]:
                return self._post_solve, ()
            if parts == ["v1", "workers"]:
                return self._post_register_worker, ()
            if parts == ["v1", "lease"]:
                return self._post_lease, ()
            if parts == ["v1", "complete"]:
                return self._post_complete, ()
        raise ApiError(404, f"no route for {method} {self.path}")

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Serve one GET request."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        """Serve one POST request."""
        self._dispatch("POST")

    # -- endpoints -----------------------------------------------------

    def _get_health(self) -> None:
        """Liveness plus store, manager, and cluster counters."""
        store = self.manager.store
        coordinator = self.manager.coordinator
        self._send_json(
            200,
            {
                "status": "ok",
                "store": None if store is None else store.stats(),
                "manager": self.manager.stats(),
                "cluster": None
                if coordinator is None
                else coordinator.stats(),
            },
        )

    def _get_store_stats(self) -> None:
        """The result store's counters (hits/misses, blob count, bytes)."""
        store = self.manager.store
        if store is None:
            raise ApiError(404, "server is running without a result store")
        self._send_json(200, store.stats())

    def _coordinator(self):
        """The attached cluster coordinator (404 when absent)."""
        coordinator = self.manager.coordinator
        if coordinator is None:
            raise ApiError(
                404, "server is running without a cluster coordinator"
            )
        return coordinator

    def _get_cluster(self) -> None:
        """Cluster scheduler counters plus the per-worker registry."""
        coordinator = self._coordinator()
        self._send_json(
            200,
            {"stats": coordinator.stats(), "workers": coordinator.workers()},
        )

    def _post_register_worker(self) -> None:
        """Register a cluster worker; returns its assigned id."""
        body = self._read_json_body()
        name = body.get("name")
        self._send_json(200, self._coordinator().register_worker(name))

    def _post_lease(self) -> None:
        """Lease the next eligible work unit to the requesting worker."""
        body = self._read_json_body()
        worker_id = body.get("worker_id")
        if not worker_id:
            raise ApiError(400, "lease request needs a worker_id")
        self._send_json(200, self._coordinator().lease(worker_id))

    def _post_complete(self) -> None:
        """Record a worker's result rows for a unit as a quorum vote."""
        body = self._read_json_body()
        worker_id = body.get("worker_id")
        unit_id = body.get("unit_id")
        rows = body.get("rows")
        if not worker_id or not unit_id or not isinstance(rows, list):
            raise ApiError(
                400, "complete request needs worker_id, unit_id, and rows"
            )
        self._send_json(
            200, self._coordinator().complete(worker_id, unit_id, rows)
        )

    def _get_scenarios(self) -> None:
        """The scenario registry listing."""
        self._send_json(200, {"scenarios": self.manager.scenario_listing()})

    def _get_jobs(self) -> None:
        """Status payloads for every job, oldest first."""
        self._send_json(
            200, {"jobs": [job.to_json_obj() for job in self.manager.jobs()]}
        )

    def _get_job(self, job_id: str) -> None:
        """One job's status payload."""
        self._send_json(200, self.manager.get(job_id).to_json_obj())

    def _get_job_results(self, job_id: str) -> None:
        """A finished job's results (409 while running, 500-ish on error)."""
        job = self.manager.get(job_id)
        if job.status in ("queued", "running"):
            raise ApiError(409, f"job {job_id} is {job.status}; poll until done")
        if job.status == "error" or job.results is None:
            raise ApiError(502, f"job {job_id} failed: {job.error}")
        # ``cached`` is transport metadata, not part of the result rows
        # (rows must serialize byte-identically warm or cold), so it
        # rides alongside as a parallel array.
        self._send_json(
            200,
            {
                "job": job.to_json_obj(),
                "results": job.results.to_json_obj(),
                "cached": [r.cached for r in job.results],
            },
        )

    def _get_result_blob(self, key: str) -> None:
        """One cached case, served as its verbatim on-disk bytes."""
        store = self.manager.store
        if store is None:
            raise ApiError(404, "server is running without a result store")
        try:
            data = store.get_bytes(key)
        except ValueError as exc:
            raise ApiError(400, str(exc)) from None
        if data is None:
            raise ApiError(404, f"no cached result under key {key}")
        self._send_bytes(200, data, "application/json")

    def _post_sweep(self) -> None:
        """Submit (or single-flight join) a sweep; 202 with the job id."""
        body = self._read_json_body()
        request = SweepRequest.from_json_obj(body)
        job = self.manager.submit(request)
        self._send_json(
            202,
            {
                "job_id": job.job_id,
                "status": job.status,
                "submissions": job.submissions,
            },
        )

    def _post_solve(self) -> None:
        """Synchronously solve one small normal-form game."""
        self._send_json(200, solve_request(self._read_json_body()))


class ManagedHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server that owns its :class:`JobManager`'s lifecycle.

    ``server_close()`` also shuts the manager down — including the
    persistent ``ProcessPoolExecutor`` — so every stop path (SIGTERM via
    ``serve``, tests tearing a server down, embedding callers) releases
    the worker processes without needing to know about the manager.
    """

    daemon_threads = True
    manager: Optional[JobManager] = None

    def server_close(self) -> None:
        """Close the listening socket, then the job manager and its pool."""
        super().server_close()
        if self.manager is not None:
            self.manager.shutdown()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    manager: Optional[JobManager] = None,
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = None,
    coordinator: Optional[Any] = None,
    quiet: bool = True,
) -> ManagedHTTPServer:
    """Build (but don't start) the HTTP server.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` — which is what the tests and the
    in-process quickstart use.  A fresh :class:`JobManager` is created
    from ``store``/``max_workers``/``coordinator`` unless one is passed
    in; attaching a
    :class:`~repro.cluster.coordinator.ClusterCoordinator` enables the
    ``/v1/workers``/``/v1/lease``/``/v1/complete`` endpoints and
    ``executor="cluster"`` sweeps.
    """
    if manager is None:
        manager = JobManager(
            store=store, max_workers=max_workers, coordinator=coordinator
        )

    class BoundHandler(_Handler):
        """The handler class closed over this server's manager."""

    BoundHandler.manager = manager
    BoundHandler.quiet = quiet
    server = ManagedHTTPServer((host, port), BoundHandler)
    server.manager = manager
    return server


def start_server(
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> Tuple[ThreadingHTTPServer, threading.Thread]:
    """Start the server on a background thread; returns (server, thread).

    The embedding entry point: examples and tests run the whole service
    in-process and talk to ``http://host:port`` like any remote client.
    Shut down with ``server.shutdown()`` then ``server.server_close()``.
    """
    server = make_server(host=host, port=port, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _sigterm_to_interrupt(signum, frame) -> None:
    """SIGTERM handler: unwind ``serve_forever`` through its clean path.

    Raising inside the handler (which runs on the main thread, *under*
    the serving loop's frame) lets the ``finally`` block close the
    socket and the job manager; calling ``server.shutdown()`` here
    instead would deadlock — it waits for the very loop this handler
    interrupted.
    """
    raise KeyboardInterrupt


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8642,
    cache_dir: Optional[str] = None,
    max_workers: Optional[int] = None,
    quiet: bool = False,
    store: Optional[ResultStore] = None,
    coordinator: Optional[Any] = None,
) -> None:
    """Blocking entry point behind ``python -m repro.service serve``.

    Installs a SIGTERM handler (when running on the main thread) so
    ``kill <pid>`` and container stops drain through the same clean
    shutdown as Ctrl-C: socket closed, job manager and process pool
    stopped, no leaked workers.  ``store``/``coordinator`` let callers
    (the ``python -m repro.cluster coordinator`` CLI) pass pre-built
    components; otherwise ``cache_dir`` builds the store.
    """
    if store is None and cache_dir is not None:
        store = ResultStore(cache_dir)
    server = make_server(
        host=host,
        port=port,
        store=store,
        max_workers=max_workers,
        coordinator=coordinator,
        quiet=quiet,
    )
    actual_host, actual_port = server.server_address[:2]
    rows = [
        ["url", f"http://{actual_host}:{actual_port}"],
        ["cache_dir", cache_dir or "<none: recompute every case>"],
        ["max_workers", max_workers or 1],
    ]
    if coordinator is not None:
        stats = coordinator.stats()
        rows.append(["cluster", f"redundancy={stats['redundancy']}"])
    print(format_table("repro.service", ["setting", "value"], rows))
    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _sigterm_to_interrupt)
    except ValueError:
        pass  # not on the main thread; rely on the embedder to stop us
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
        server.shutdown()
        server.server_close()  # also shuts the manager and its pool down
