"""HTTP JSON API over the job manager and result store.

The route handlers live in :class:`ServiceAPI`, a transport-agnostic
core: one method per endpoint, each returning an :class:`ApiResponse`
value (status, body bytes or a blob file reference, content type,
ETag).  The transport is :mod:`repro.service.aserver`, the asyncio
event-loop server that multiplexes thousands of keep-alive connections
on one core.

====== ============================ ==========================================
Method Path                         Meaning
====== ============================ ==========================================
GET    ``/v1/health``               liveness + store/job-manager counters
GET    ``/v1/scenarios``            the scenario registry listing
POST   ``/v1/sweeps``               submit a sweep; returns the job id
GET    ``/v1/jobs``                 all jobs, oldest first
GET    ``/v1/jobs/<id>``            one job's status/progress payload
GET    ``/v1/jobs/<id>/results``    finished job's results (409 until done)
GET    ``/v1/results/<key>``        one cached blob (ETag = content address)
POST   ``/v1/results:batch``        N cached blobs, newline-delimited JSON
GET    ``/v1/store/stats``          store counters (hits/misses/disk bytes)
POST   ``/v1/solve``                synchronous small-game solving
POST   ``/v1/workers``              register a cluster worker
POST   ``/v1/lease``                lease one work unit to a worker
POST   ``/v1/complete``             post a unit's result rows (quorum vote)
GET    ``/v1/cluster``              cluster scheduler counters + workers
POST   ``/v1/raft/rpc``             one replica-to-replica consensus message
GET    ``/v1/raft/status``          this replica's consensus-level status
GET    ``/v1/metrics``              this process's metrics (Prometheus text)
GET    ``/v1/trace/<trace_id>``     retained spans of one trace, as JSON
POST   ``/v1/trace``                span ingest (workers/clients push here)
GET    ``/v1/events``               recent structured log events
====== ============================ ==========================================

``HEAD`` is supported on every GET route (same headers, no body).
Because results are content-addressed, ``/v1/results/<key>`` carries a
perfect ``ETag`` — the key itself — and honours ``If-None-Match`` with
a body-less 304, so warm clients pay zero body bytes per revalidation.

Sweep submission replies immediately (HTTP 202) with the job id; heavy
work happens on the manager's worker threads and process pool.  The
``/v1/results/<key>`` fetch serves the store's canonical bytes, so a
warm client read is byte-identical to what the cold computation wrote.
The cluster endpoints (``/v1/workers``, ``/v1/lease``,
``/v1/complete``) forward their JSON bodies verbatim into the attached
coordinator — a single-process
:class:`~repro.cluster.coordinator.ClusterCoordinator` or one
:class:`~repro.cluster.replica.Replica` of the replicated control
plane (404 when the server runs without either).

With a replica attached, writes sent to a follower answer **421
Misdirected Request** with the best-known leader URL in the body
(``{"error": "not the leader", "leader": ...}``);
:class:`~repro.service.client.ServiceClient` follows the hint
transparently, so callers never see the redirect.  The ``/v1/raft/*``
routes carry the consensus traffic itself: peers POST one message per
RPC and the reply message rides back in the response body.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from urllib.parse import parse_qsl

from repro.cluster.errors import NotLeaderError
from repro.obs.logs import events_since, log_event, recent_events
from repro.obs.metrics import default_registry, render_prometheus
from repro.obs.trace import current_context, default_recorder
from repro.service.jobs import JobManager, SweepRequest, TooManyJobsError
from repro.service.solve import solve_request
from repro.service.store import ResultStore

__all__ = [
    "ApiError",
    "ApiResponse",
    "ServiceAPI",
    "build_manager",
    "etag_matches",
]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_BATCH_KEYS = 10_000
_MAX_TRACE_BODY_BYTES = 512 * 1024
_MAX_TRACE_SPANS = 2048
# Blobs at or above this size are handed to the transport as a file
# reference (``ApiResponse.blob_path``) for sendfile/streamed serving;
# smaller ones ride in memory through the store's LRU.
_SENDFILE_MIN_BYTES = 64 * 1024


class ApiError(Exception):
    """An HTTP-visible request failure: status code plus message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def etag_matches(header: Optional[str], etag: str) -> bool:
    """Does an ``If-None-Match`` header value match a strong ``etag``?

    Accepts ``*``, a single tag, or a comma-separated list; weak
    validators (``W/"..."``) compare by opaque tag, which is correct
    here because a content address can never collide weakly.
    """
    if not header:
        return False
    header = header.strip()
    if header == "*":
        return True
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


def _parse_query(raw_path: str) -> Dict[str, str]:
    """The request's query parameters (last value wins per key)."""
    if "?" not in raw_path:
        return {}
    return dict(parse_qsl(raw_path.split("?", 1)[1]))


@dataclass
class ApiResponse:
    """One endpoint's transport-agnostic result.

    Exactly one of ``body`` or ``blob_path`` is set (``body`` may be
    empty for 304s).  ``chunks`` optionally carries a pre-split body
    for transports that stream (the NDJSON batch endpoint); when set,
    ``body`` is their concatenation for transports that don't.
    """

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    etag: Optional[str] = None
    blob_path: Optional[str] = None
    blob_size: int = 0
    chunks: Optional[List[bytes]] = field(default=None, repr=False)

    @property
    def content_length(self) -> int:
        """Declared body length (the blob size for file responses)."""
        if self.blob_path is not None:
            return self.blob_size
        return len(self.body)


class ServiceAPI:
    """The route table and handlers, independent of any HTTP transport.

    A transport parses the request line, headers, and body off its
    connection and calls :meth:`handle`; everything after that —
    routing, validation, the JSON error envelope, ETag revalidation —
    happens here, so the threaded and asyncio servers cannot drift
    apart behaviourally.
    """

    def __init__(
        self,
        manager: JobManager,
        registry=None,
        recorder=None,
        watchdog=None,
    ) -> None:
        self.manager = manager
        self.registry = registry if registry is not None else default_registry()
        self.recorder = recorder if recorder is not None else default_recorder()
        self.watchdog = watchdog
        self._trace_rejected = self.registry.counter(
            "repro_trace_ingest_rejected_total",
            "Span-ingest requests rejected for exceeding size bounds.",
        )

    # -- dispatch ------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        if_none_match: Optional[str] = None,
    ) -> ApiResponse:
        """Serve one request; failures become the JSON error envelope."""
        try:
            handler, args = self._route(method, path)
            return handler(
                *args,
                body=body,
                if_none_match=if_none_match,
                query=_parse_query(path),
            )
        except ApiError as exc:
            return self._json(exc.status, {"error": exc.message})
        except NotLeaderError as exc:
            # A write reached a follower replica: 421 plus the leader
            # hint, which the client follows transparently.
            log_event(
                "redirect.421",
                "service",
                path=path,
                leader=exc.leader_url,
            )
            return self._json(
                421, {"error": "not the leader", "leader": exc.leader_url}
            )
        except TooManyJobsError as exc:
            return self._json(503, {"error": str(exc)})
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            status = 404 if isinstance(exc, KeyError) else 400
            return self._json(status, {"error": str(message)})
        except Exception as exc:  # pragma: no cover - defensive 500
            return self._json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route(self, method: str, raw_path: str) -> Tuple[Any, tuple]:
        """Resolve (handler, args) for the request path."""
        path = raw_path.split("?", 1)[0].rstrip("/")
        parts = [p for p in path.split("/") if p]
        if method == "HEAD":
            method = "GET"  # identical routing; transports drop the body
        if method == "GET":
            if parts == ["v1", "health"]:
                return self._get_health, ()
            if parts == ["v1", "scenarios"]:
                return self._get_scenarios, ()
            if parts == ["v1", "jobs"]:
                return self._get_jobs, ()
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                return self._get_job, (parts[2],)
            if (
                len(parts) == 4
                and parts[:2] == ["v1", "jobs"]
                and parts[3] == "results"
            ):
                return self._get_job_results, (parts[2],)
            if len(parts) == 3 and parts[:2] == ["v1", "results"]:
                return self._get_result_blob, (parts[2],)
            if parts == ["v1", "store", "stats"]:
                return self._get_store_stats, ()
            if parts == ["v1", "cluster"]:
                return self._get_cluster, ()
            if parts == ["v1", "raft", "status"]:
                return self._get_raft_status, ()
            if parts == ["v1", "metrics"]:
                return self._get_metrics, ()
            if len(parts) == 3 and parts[:2] == ["v1", "trace"]:
                return self._get_trace, (parts[2],)
            if parts == ["v1", "events"]:
                return self._get_events, ()
            if parts == ["v1", "watch", "status"]:
                return self._get_watch_status, ()
            if parts == ["v1", "watch", "query"]:
                return self._get_watch_query, ()
            if parts == ["v1", "watch", "dash"]:
                return self._get_watch_dash, ()
        if method == "POST":
            if parts == ["v1", "sweeps"]:
                return self._post_sweep, ()
            if parts == ["v1", "results:batch"]:
                return self._post_results_batch, ()
            if parts == ["v1", "solve"]:
                return self._post_solve, ()
            if parts == ["v1", "workers"]:
                return self._post_register_worker, ()
            if parts == ["v1", "lease"]:
                return self._post_lease, ()
            if parts == ["v1", "complete"]:
                return self._post_complete, ()
            if parts == ["v1", "raft", "rpc"]:
                return self._post_raft_rpc, ()
            if parts == ["v1", "trace"]:
                return self._post_trace, ()
        raise ApiError(404, f"no route for {method} {raw_path}")

    # -- response/body helpers -----------------------------------------

    @staticmethod
    def _json(status: int, payload: Any) -> ApiResponse:
        """One JSON response (human-readable rendering, both servers)."""
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        return ApiResponse(status, body)

    @staticmethod
    def _parse_json_body(body: bytes) -> Dict[str, Any]:
        """Parse a request body as a JSON object (ApiError on garbage)."""
        if not body:
            return {}
        try:
            obj = json.loads(body)
        except ValueError as exc:
            raise ApiError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(obj, dict):
            raise ApiError(400, "JSON body must be an object")
        return obj

    def _store(self) -> ResultStore:
        """The attached result store (404 when absent)."""
        store = self.manager.store
        if store is None:
            raise ApiError(404, "server is running without a result store")
        return store

    def _coordinator(self):
        """The attached cluster coordinator (404 when absent)."""
        coordinator = self.manager.coordinator
        if coordinator is None:
            raise ApiError(
                404, "server is running without a cluster coordinator"
            )
        return coordinator

    # -- endpoints -----------------------------------------------------

    def _get_health(self, **_ignored) -> ApiResponse:
        """Liveness plus store, manager, and cluster counters."""
        store = self.manager.store
        coordinator = self.manager.coordinator
        return self._json(
            200,
            {
                "status": "ok",
                "store": None if store is None else store.stats(),
                "manager": self.manager.stats(),
                "cluster": None
                if coordinator is None
                else coordinator.stats(),
            },
        )

    def _get_store_stats(self, **_ignored) -> ApiResponse:
        """The result store's counters (hits/misses, blob count, bytes)."""
        return self._json(200, self._store().stats())

    def _get_cluster(self, **_ignored) -> ApiResponse:
        """Cluster scheduler counters plus the per-worker registry."""
        coordinator = self._coordinator()
        return self._json(
            200,
            {"stats": coordinator.stats(), "workers": coordinator.workers()},
        )

    def _replica(self):
        """The attached *replicated* coordinator (404 otherwise)."""
        coordinator = self._coordinator()
        if not hasattr(coordinator, "handle_rpc"):
            raise ApiError(
                404, "server is running without a replicated coordinator"
            )
        return coordinator

    def _get_raft_status(self, **_ignored) -> ApiResponse:
        """This replica's consensus-level status (role/term/log/digest)."""
        return self._json(200, self._replica().raft_status())

    def _get_metrics(self, **_ignored) -> ApiResponse:
        """This process's metrics, Prometheus text exposition format."""
        body = render_prometheus(self.registry).encode("utf-8")
        return ApiResponse(
            200, body, content_type="text/plain; version=0.0.4; charset=utf-8"
        )

    def _get_trace(self, trace_id: str, **_ignored) -> ApiResponse:
        """Retained spans of one trace, ordered by start time."""
        return self._json(
            200,
            {"trace_id": trace_id, "spans": self.recorder.export(trace_id)},
        )

    def _post_trace(self, body=b"", **_ignored) -> ApiResponse:
        """Ingest spans pushed by workers/clients (deduplicated).

        Bodies past ``_MAX_TRACE_BODY_BYTES`` or span lists past
        ``_MAX_TRACE_SPANS`` are rejected with 413 (and counted) before
        any JSON parsing touches them — the recorder ring is bounded,
        so an oversized push could only evict useful spans.
        """
        if len(body) > _MAX_TRACE_BODY_BYTES:
            self._trace_rejected.inc()
            raise ApiError(
                413,
                f"trace body {len(body)} bytes exceeds "
                f"{_MAX_TRACE_BODY_BYTES}",
            )
        parsed = self._parse_json_body(body)
        spans = parsed.get("spans")
        if not isinstance(spans, list):
            raise ApiError(400, "trace push needs spans: [obj, ...]")
        if len(spans) > _MAX_TRACE_SPANS:
            self._trace_rejected.inc()
            raise ApiError(
                413, f"trace push of {len(spans)} spans exceeds "
                f"{_MAX_TRACE_SPANS}",
            )
        return self._json(200, {"ingested": self.recorder.ingest(spans)})

    def _get_events(self, query=None, **_ignored) -> ApiResponse:
        """Recent structured log events retained by this process.

        With ``?since=<seq>`` this is a cursor read: only events newer
        than the sequence number return, along with ``next_since`` (the
        cursor for the next poll) and ``dropped`` (events lost to ring
        wrap since the cursor) — so followers neither re-read nor
        silently miss events.
        """
        query = query or {}
        limit = int(query.get("limit", 200))
        if limit <= 0 or limit > 2000:
            raise ApiError(400, "limit must be in 1..2000")
        if "since" in query:
            try:
                since = int(query["since"])
            except ValueError:
                raise ApiError(400, "since must be an integer") from None
            events, next_since, dropped = events_since(since, limit)
            return self._json(
                200,
                {
                    "events": events,
                    "next_since": next_since,
                    "dropped": dropped,
                },
            )
        return self._json(200, {"events": recent_events(limit=limit)})

    def _watchdog(self):
        """The serving watchdog: attached here or on the coordinator.

        A replica/coordinator embeds its watchdog after construction
        (``attach_watchdog``), so the lookup is dynamic rather than
        captured at ``ServiceAPI.__init__`` time.
        """
        watchdog = self.watchdog
        if watchdog is None:
            watchdog = getattr(self.manager.coordinator, "watchdog", None)
        if watchdog is None:
            raise ApiError(404, "server is running without a watchdog")
        return watchdog

    def _get_watch_status(self, **_ignored) -> ApiResponse:
        """The watchdog's endpoint health, alert states, and TSDB stats."""
        return self._json(200, self._watchdog().status())

    def _get_watch_query(self, query=None, **_ignored) -> ApiResponse:
        """Range-query the watchdog TSDB (see ``query_from_params``)."""
        return self._json(200, self._watchdog().query_from_params(query or {}))

    def _get_watch_dash(self, **_ignored) -> ApiResponse:
        """The self-contained HTML dashboard."""
        from repro.obs.dash import render_dash

        body = render_dash(self._watchdog()).encode("utf-8")
        return ApiResponse(
            200, body, content_type="text/html; charset=utf-8"
        )

    def _post_raft_rpc(self, body=b"", **_ignored) -> ApiResponse:
        """One peer consensus message; the reply message rides back."""
        message = self._parse_json_body(body)
        return self._json(200, self._replica().handle_rpc(message))

    def _post_register_worker(self, body=b"", **_ignored) -> ApiResponse:
        """Register a cluster worker; returns its assigned id.

        An explicit ``worker_id`` in the body makes registration
        idempotent — a worker re-registering after failing over to a
        new leader keeps its identity and strike history.
        """
        parsed = self._parse_json_body(body)
        return self._json(
            200,
            self._coordinator().register_worker(
                parsed.get("name"), worker_id=parsed.get("worker_id")
            ),
        )

    def _post_lease(self, body=b"", **_ignored) -> ApiResponse:
        """Lease the next eligible work unit to the requesting worker."""
        parsed = self._parse_json_body(body)
        worker_id = parsed.get("worker_id")
        if not worker_id:
            raise ApiError(400, "lease request needs a worker_id")
        return self._json(200, self._coordinator().lease(worker_id))

    def _post_complete(self, body=b"", **_ignored) -> ApiResponse:
        """Record a worker's result rows for a unit as a quorum vote."""
        parsed = self._parse_json_body(body)
        worker_id = parsed.get("worker_id")
        unit_id = parsed.get("unit_id")
        rows = parsed.get("rows")
        if not worker_id or not unit_id or not isinstance(rows, list):
            raise ApiError(
                400, "complete request needs worker_id, unit_id, and rows"
            )
        return self._json(
            200, self._coordinator().complete(worker_id, unit_id, rows)
        )

    def _get_scenarios(self, **_ignored) -> ApiResponse:
        """The scenario registry listing."""
        return self._json(
            200, {"scenarios": self.manager.scenario_listing()}
        )

    def _get_jobs(self, **_ignored) -> ApiResponse:
        """Status payloads for every job, oldest first."""
        return self._json(
            200, {"jobs": [job.to_json_obj() for job in self.manager.jobs()]}
        )

    def _get_job(self, job_id: str, **_ignored) -> ApiResponse:
        """One job's status payload."""
        return self._json(200, self.manager.get(job_id).to_json_obj())

    def _get_job_results(self, job_id: str, **_ignored) -> ApiResponse:
        """A finished job's results (409 while running, 502 on error)."""
        job = self.manager.get(job_id)
        if job.status in ("queued", "running"):
            raise ApiError(
                409, f"job {job_id} is {job.status}; poll until done"
            )
        if job.status == "error" or job.results is None:
            raise ApiError(502, f"job {job_id} failed: {job.error}")
        # ``cached`` is transport metadata, not part of the result rows
        # (rows must serialize byte-identically warm or cold), so it
        # rides alongside as a parallel array.
        return self._json(
            200,
            {
                "job": job.to_json_obj(),
                "results": job.results.to_json_obj(),
                "cached": [r.cached for r in job.results],
            },
        )

    def _get_result_blob(
        self, key: str, if_none_match: Optional[str] = None, **_ignored
    ) -> ApiResponse:
        """One cached case: canonical store bytes, content-address ETag.

        The content address *is* the representation's identity, so the
        ETag is simply the quoted key and an ``If-None-Match`` hit is a
        body-less 304 — the cheapest possible warm read.  Blobs past
        ``_SENDFILE_MIN_BYTES`` are returned as a file reference so the
        async transport can ``sendfile`` them without copying through
        Python.
        """
        store = self._store()
        try:
            path = store.path_for(key)
        except ValueError as exc:
            raise ApiError(400, str(exc)) from None
        etag = f'"{key}"'
        size: Optional[int]
        try:
            size = os.stat(path).st_size
        except OSError:
            size = None
        if size is None:
            # Rare: memory-only entry (file raced away); serve the LRU.
            data = store.get_bytes_cached(key)
            if data is None:
                raise ApiError(404, f"no cached result under key {key}")
            if etag_matches(if_none_match, etag):
                return ApiResponse(304, b"", etag=etag)
            return ApiResponse(200, data, etag=etag)
        if etag_matches(if_none_match, etag):
            return ApiResponse(304, b"", etag=etag)
        if size >= _SENDFILE_MIN_BYTES:
            return ApiResponse(
                200, b"", etag=etag, blob_path=path, blob_size=size
            )
        data = store.get_bytes_cached(key)
        if data is None:
            raise ApiError(404, f"no cached result under key {key}")
        return ApiResponse(200, data, etag=etag)

    def _post_results_batch(self, body=b"", **_ignored) -> ApiResponse:
        """N cached blobs in one round trip, as newline-delimited JSON.

        Request: ``{"keys": ["<sha256>", ...]}``.  Response: one JSON
        object per line, in request order —
        ``{"key": ..., "found": true, "result": <blob>}`` or
        ``{"key": ..., "found": false}`` — so a client can stream-parse
        results as they arrive instead of buffering one giant array.
        """
        parsed = self._parse_json_body(body)
        keys = parsed.get("keys")
        if not isinstance(keys, list) or not all(
            isinstance(k, str) for k in keys
        ):
            raise ApiError(400, "batch request needs keys: [str, ...]")
        if len(keys) > _MAX_BATCH_KEYS:
            raise ApiError(
                413, f"at most {_MAX_BATCH_KEYS} keys per batch request"
            )
        store = self._store()
        chunks: List[bytes] = []
        for key in keys:
            try:
                data = store.get_bytes_cached(key)
            except ValueError:
                data = None  # malformed key: reported as not found
            key_json = json.dumps(key).encode("utf-8")
            if data is None:
                chunks.append(b'{"key":%s,"found":false}\n' % key_json)
            else:
                chunks.append(
                    b'{"key":%s,"found":true,"result":%s}\n'
                    % (key_json, data.strip())
                )
        return ApiResponse(
            200,
            b"".join(chunks),
            content_type="application/x-ndjson",
            chunks=chunks,
        )

    def _post_sweep(self, body=b"", **_ignored) -> ApiResponse:
        """Submit (or single-flight join) a sweep; 202 with the job id."""
        request = SweepRequest.from_json_obj(self._parse_json_body(body))
        if request.executor == "cluster":
            # Fail fast on a follower replica (421 + leader hint) so the
            # job slot is never burned on a doomed submission.  A server
            # with no coordinator at all still accepts the job — it
            # errors out with a clear message when it runs.
            require_leader = getattr(
                self.manager.coordinator, "require_leader", None
            )
            if require_leader is not None:
                require_leader()
        ctx = current_context()
        job = self.manager.submit(
            request, trace_id=None if ctx is None else ctx.trace_id
        )
        return self._json(
            202,
            {
                "job_id": job.job_id,
                "status": job.status,
                "submissions": job.submissions,
            },
        )

    def _post_solve(self, body=b"", **_ignored) -> ApiResponse:
        """Synchronously solve one small normal-form game."""
        return self._json(200, solve_request(self._parse_json_body(body)))


def build_manager(
    manager: Optional[JobManager] = None,
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = None,
    coordinator: Optional[Any] = None,
) -> JobManager:
    """The manager both transports build their server around.

    Returns ``manager`` unchanged when given one; otherwise constructs
    a fresh :class:`JobManager` from the parts.
    """
    if manager is not None:
        return manager
    return JobManager(
        store=store, max_workers=max_workers, coordinator=coordinator
    )
